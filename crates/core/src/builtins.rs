//! The built-in Mayans: Maya's base semantic actions.
//!
//! These are ordinary (unspecialized) Mayans imported first into the base
//! environment; user Mayans on the same productions win by specificity or
//! lexical tie-breaking (paper §4.4: "the built-in Mayans are imported
//! first").

use crate::base::BaseProds;
use crate::driver::{expr_as_type, CoreExpand};
use crate::literal::parse_literal;
use maya_ast::{
    BinOp, Block, CatchClause, ClassDecl, CtorDecl, Decl, Expr, ExprKind, FieldDecl, ForInit,
    Formal, Ident, ImportDecl, IncDecOp, InterfaceDecl, LocalDeclarator, MayanDecl, MethodDecl,
    MethodName, Modifier, Modifiers, Node, NodeKind, ProductionDecl, Stmt, StmtKind, TemplateLit,
    TypeName, TypeNameKind, UnOp, UseTarget,
};
use maya_dispatch::{Bindings, DispatchError, EnvBuilder, ExpandCtx, Mayan, Param};
use maya_grammar::{Action, BuiltinAction, Grammar, ProdId};
use maya_lexer::{Span, TokenTree};
use std::rc::Rc;

fn err<T>(msg: impl Into<String>, span: Span) -> Result<T, DispatchError> {
    Err(DispatchError::new(msg, span))
}

fn ident_of(n: &Node, what: &str) -> Result<Ident, DispatchError> {
    n.as_ident()
        .ok_or_else(|| DispatchError::new(format!("internal: expected identifier in {what}"), Span::DUMMY))
}

fn expr_of(n: &Node, what: &str) -> Result<Expr, DispatchError> {
    n.clone()
        .into_expr()
        .ok_or_else(|| DispatchError::new(format!("internal: expected expression in {what}"), Span::DUMMY))
}

fn type_of(n: &Node, what: &str) -> Result<TypeName, DispatchError> {
    n.as_type()
        .cloned()
        .ok_or_else(|| DispatchError::new(format!("internal: expected type name in {what}"), Span::DUMMY))
}

fn name_of(n: &Node, what: &str) -> Result<Vec<Ident>, DispatchError> {
    match n {
        Node::Name(parts) => Ok(parts.clone()),
        _ => err(format!("internal: expected qualified name in {what}"), Span::DUMMY),
    }
}

fn block_of(n: &Node, what: &str) -> Result<Block, DispatchError> {
    n.clone()
        .into_block()
        .ok_or_else(|| DispatchError::new(format!("internal: expected block in {what}"), Span::DUMMY))
}

fn list_of(n: &Node, what: &str) -> Result<Vec<Node>, DispatchError> {
    match n {
        Node::List(items) => Ok(items.clone()),
        Node::Args(args) => Ok(args.iter().cloned().map(Node::Expr).collect()),
        _ => err(format!("internal: expected list in {what}"), Span::DUMMY),
    }
}

fn tree_of(n: &Node, what: &str) -> Result<maya_lexer::DelimTree, DispatchError> {
    match n {
        Node::Tree(TokenTree::Delim(d)) => Ok(d.clone()),
        _ => err(format!("internal: expected delimiter tree in {what}"), Span::DUMMY),
    }
}

fn modifiers_of(n: &Node) -> Modifiers {
    match n {
        Node::Modifiers(m) => *m,
        Node::List(items) => {
            let mut all = Modifiers::none();
            for i in items {
                if let Node::Modifiers(m) = i {
                    for modifier in m.iter() {
                        all.add(modifier);
                    }
                }
            }
            all
        }
        _ => Modifiers::none(),
    }
}

fn local_decl_of(n: &Node, what: &str) -> Result<LocalDeclarator, DispatchError> {
    match n {
        Node::LocalDecl(d) => Ok(d.clone()),
        _ => err(format!("internal: expected declarator in {what}"), Span::DUMMY),
    }
}

fn stmts_of_list(items: Vec<Node>, span: Span) -> Result<Block, DispatchError> {
    let mut stmts = Vec::with_capacity(items.len());
    for i in items {
        match i.into_stmt() {
            Some(s) => stmts.push(s),
            None => return err("internal: non-statement in block", span),
        }
    }
    Ok(Block::new(span, stmts))
}

fn types_of_list(n: &Node) -> Result<Vec<TypeName>, DispatchError> {
    let items = list_of(n, "type list")?;
    items
        .iter()
        .map(|i| type_of(i, "type list"))
        .collect()
}

type Body = fn(&Bindings, Span, &mut CoreExpand) -> Result<Node, DispatchError>;

/// The built-in semantic action for a named base production.
#[allow(clippy::too_many_lines)]
fn body_for(name: &'static str) -> Body {
    match name {
        "identifier" | "unbound_local" => |b, _s, _cx| {
            Ok(Node::Ident(ident_of(&b.args[0], "identifier")?))
        },
        "qname_single" => |b, _s, _cx| {
            Ok(Node::Name(vec![ident_of(&b.args[0], "name")?]))
        },
        "qname_dot" => |b, _s, _cx| {
            let mut parts = name_of(&b.args[0], "name")?;
            parts.push(ident_of(&b.args[2], "name")?);
            Ok(Node::Name(parts))
        },
        "type_qname" => |b, s, _cx| {
            let parts = name_of(&b.args[0], "type")?;
            Ok(Node::Type(TypeName::new(s, TypeNameKind::Named(parts))))
        },
        "type_prim" => |b, _s, _cx| Ok(b.args[0].clone()),
        "type_void" => |b, _s, _cx| {
            let _ = b;
            Ok(Node::Type(TypeName::void()))
        },
        "type_array" => |b, s, _cx| {
            let base = type_of(&b.args[0], "array type")?;
            let tree = tree_of(&b.args[1], "array type")?;
            if !tree.is_empty() {
                return err("array type brackets must be empty", tree.span());
            }
            let _ = s;
            Ok(Node::Type(base.array_of()))
        },
        "prim_boolean" => prim(maya_ast::PrimKind::Boolean),
        "prim_byte" => prim(maya_ast::PrimKind::Byte),
        "prim_short" => prim(maya_ast::PrimKind::Short),
        "prim_char" => prim(maya_ast::PrimKind::Char),
        "prim_int" => prim(maya_ast::PrimKind::Int),
        "prim_long" => prim(maya_ast::PrimKind::Long),
        "prim_float" => prim(maya_ast::PrimKind::Float),
        "prim_double" => prim(maya_ast::PrimKind::Double),
        "lit_int" | "lit_long" | "lit_float" | "lit_double" | "lit_char" | "lit_string"
        | "lit_true" | "lit_false" | "lit_null" => |b, s, _cx| {
            let tok = b.args[0]
                .as_token()
                .ok_or_else(|| DispatchError::new("internal: literal token", s))?;
            match parse_literal(tok) {
                Some(l) => Ok(Node::Expr(Expr::new(s, ExprKind::Literal(l)))),
                None => err(format!("malformed literal {}", tok.text), s),
            }
        },
        "expr_name" => |b, s, _cx| {
            let id = ident_of(&b.args[0], "name expression")?;
            Ok(Node::Expr(Expr::new(s, ExprKind::Name(id))))
        },
        "expr_this" => |_b, s, _cx| Ok(Node::Expr(Expr::new(s, ExprKind::This))),
        "field_access" => |b, s, _cx| {
            let target = expr_of(&b.args[0], "field access")?;
            let name = ident_of(&b.args[2], "field access")?;
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::FieldAccess(Box::new(target), name),
            )))
        },
        "mn_simple" => |b, _s, _cx| {
            Ok(Node::MethodName(MethodName::simple(ident_of(
                &b.args[0],
                "method name",
            )?)))
        },
        "mn_recv" => |b, _s, _cx| {
            Ok(Node::MethodName(MethodName::with_receiver(
                expr_of(&b.args[0], "method name")?,
                ident_of(&b.args[2], "method name")?,
            )))
        },
        "mn_super" => |b, _s, _cx| {
            Ok(Node::MethodName(MethodName::super_call(ident_of(
                &b.args[2],
                "method name",
            )?)))
        },
        "call" => |b, s, _cx| {
            let mn = match &b.args[0] {
                Node::MethodName(m) => m.clone(),
                other => {
                    return err(
                        format!("internal: call on {:?}", other.node_kind()),
                        s,
                    )
                }
            };
            let args = match &b.args[1] {
                Node::Args(a) => a.clone(),
                other => {
                    let items = list_of(other, "call arguments")?;
                    items
                        .into_iter()
                        .map(|n| {
                            n.into_expr().ok_or_else(|| {
                                DispatchError::new("internal: non-expression argument", s)
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            Ok(Node::Expr(Expr::new(s, ExprKind::Call(mn, args))))
        },
        "args" => |b, s, _cx| {
            let items = list_of(&b.args[0], "arguments")?;
            let exprs = items
                .into_iter()
                .map(|n| {
                    n.into_expr().ok_or_else(|| {
                        DispatchError::new("internal: non-expression argument", s)
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Node::Args(exprs))
        },
        "array_access" => |b, s, cx| {
            let base = expr_of(&b.args[0], "array access")?;
            // Inside templates the index arrives pre-parsed (the recipe
            // statically checked the tree's contents).
            if let Node::Expr(index) = &b.args[1] {
                if let ExprKind::NewArray {
                    elem,
                    mut dims,
                    extra_dims: 0,
                } = base.kind.clone()
                {
                    dims.push(index.clone());
                    return Ok(Node::Expr(Expr::new(
                        s,
                        ExprKind::NewArray {
                            elem,
                            dims,
                            extra_dims: 0,
                        },
                    )));
                }
                return Ok(Node::Expr(Expr::new(
                    s,
                    ExprKind::ArrayAccess(Box::new(base), Box::new(index.clone())),
                )));
            }
            let tree = tree_of(&b.args[1], "array access")?;
            if tree.is_empty() {
                // `Expr[]`: array-type dims (`Vector[] v;`), or an extra
                // dimension on `new T[n][]`.
                if let ExprKind::NewArray {
                    elem,
                    dims,
                    extra_dims,
                } = base.kind
                {
                    return Ok(Node::Expr(Expr::new(
                        s,
                        ExprKind::NewArray {
                            elem,
                            dims,
                            extra_dims: extra_dims + 1,
                        },
                    )));
                }
                return Ok(Node::Expr(Expr::new(
                    s,
                    ExprKind::TypeDims(Box::new(base)),
                )));
            }
            let index = cx.parse_tree(&tree, NodeKind::Expression)?;
            let index = expr_of(&index, "array index")?;
            // `new int[2][3]` arrives as an "access" on a NewArray: fold the
            // extra sized dimension in.
            if let ExprKind::NewArray {
                elem,
                mut dims,
                extra_dims: 0,
            } = base.kind.clone()
            {
                dims.push(index);
                return Ok(Node::Expr(Expr::new(
                    s,
                    ExprKind::NewArray {
                        elem,
                        dims,
                        extra_dims: 0,
                    },
                )));
            }
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::ArrayAccess(Box::new(base), Box::new(index)),
            )))
        },
        "new_object" => |b, s, _cx| {
            let ty = match &b.args[1] {
                Node::Name(parts) => TypeName::new(s, TypeNameKind::Named(parts.clone())),
                other => type_of(other, "new")?,
            };
            let args = match &b.args[2] {
                Node::Args(a) => a.clone(),
                other => list_of(other, "constructor arguments")?
                    .into_iter()
                    .filter_map(Node::into_expr)
                    .collect(),
            };
            Ok(Node::Expr(Expr::new(s, ExprKind::New(ty, args))))
        },
        "new_array" | "new_array_prim" => |b, s, _cx| {
            let ty = match &b.args[1] {
                Node::Name(parts) => TypeName::new(s, TypeNameKind::Named(parts.clone())),
                other => type_of(other, "new array")?,
            };
            let dim = expr_of(&b.args[2], "array dimension")?;
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::NewArray {
                    elem: ty,
                    dims: vec![dim],
                    extra_dims: 0,
                },
            )))
        },
        "template" => |b, s, _cx| {
            let parts = name_of(&b.args[1], "template goal")?;
            if parts.len() != 1 {
                return err("template goal must be a node-type name", s);
            }
            let Some(goal) = NodeKind::from_symbol(parts[0].sym) else {
                return err(
                    format!(
                        "unknown node type {} (anonymous classes are not supported)",
                        parts[0].sym
                    ),
                    s,
                );
            };
            let body = tree_of(&b.args[2], "template body")?;
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::Template(TemplateLit::new(s, goal, body)),
            )))
        },
        "paren" => |b, s, cx| {
            if let Node::Expr(inner) = &b.args[0] {
                return Ok(Node::Expr(Expr::new(s, inner.kind.clone())));
            }
            let tree = tree_of(&b.args[0], "parenthesized expression")?;
            if tree.is_empty() {
                return err("empty parentheses", s);
            }
            let inner = cx.parse_tree(&tree, NodeKind::Expression)?;
            let inner = expr_of(&inner, "parenthesized expression")?;
            Ok(Node::Expr(Expr::new(s, inner.kind)))
        },
        "cast" => |b, s, cx| {
            let ty = match &b.args[0] {
                Node::Type(t) => t.clone(),
                other => {
                    let tree = tree_of(other, "cast")?;
                    let parsed = cx.parse_tree(&tree, NodeKind::TypeName)?;
                    type_of(&parsed, "cast target")?
                }
            };
            let operand = expr_of(&b.args[1], "cast operand")?;
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::Cast(ty, Box::new(operand)),
            )))
        },
        "binary_add" => binop(BinOp::Add),
        "binary_sub" => binop(BinOp::Sub),
        "binary_mul" => binop(BinOp::Mul),
        "binary_div" => binop(BinOp::Div),
        "binary_rem" => binop(BinOp::Rem),
        "binary_shl" => binop(BinOp::Shl),
        "binary_shr" => binop(BinOp::Shr),
        "binary_ushr" => binop(BinOp::Ushr),
        "binary_lt" => binop(BinOp::Lt),
        "binary_gt" => binop(BinOp::Gt),
        "binary_le" => binop(BinOp::Le),
        "binary_ge" => binop(BinOp::Ge),
        "binary_eq" => binop(BinOp::Eq),
        "binary_ne" => binop(BinOp::Ne),
        "binary_bitand" => binop(BinOp::BitAnd),
        "binary_bitxor" => binop(BinOp::BitXor),
        "binary_bitor" => binop(BinOp::BitOr),
        "binary_andand" => binop(BinOp::And),
        "binary_oror" => binop(BinOp::Or),
        "assign" => assign_op(None),
        "assign_add" => assign_op(Some(BinOp::Add)),
        "assign_sub" => assign_op(Some(BinOp::Sub)),
        "assign_mul" => assign_op(Some(BinOp::Mul)),
        "assign_div" => assign_op(Some(BinOp::Div)),
        "assign_rem" => assign_op(Some(BinOp::Rem)),
        "assign_bitand" => assign_op(Some(BinOp::BitAnd)),
        "assign_bitor" => assign_op(Some(BinOp::BitOr)),
        "assign_bitxor" => assign_op(Some(BinOp::BitXor)),
        "assign_shl" => assign_op(Some(BinOp::Shl)),
        "assign_shr" => assign_op(Some(BinOp::Shr)),
        "assign_ushr" => assign_op(Some(BinOp::Ushr)),
        "cond" => |b, s, _cx| {
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::Cond(
                    Box::new(expr_of(&b.args[0], "condition")?),
                    Box::new(expr_of(&b.args[2], "then branch")?),
                    Box::new(expr_of(&b.args[4], "else branch")?),
                ),
            )))
        },
        "instanceof" => |b, s, _cx| {
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::Instanceof(
                    Box::new(expr_of(&b.args[0], "instanceof")?),
                    type_of(&b.args[2], "instanceof")?,
                ),
            )))
        },
        "unary_neg" => unop(UnOp::Neg),
        "unary_plus" => unop(UnOp::Plus),
        "unary_not" => unop(UnOp::Not),
        "unary_bitnot" => unop(UnOp::BitNot),
        "preinc" => incdec(IncDecOp::Inc, true),
        "predec" => incdec(IncDecOp::Dec, true),
        "postinc" => |b, s, _cx| {
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::IncDec(IncDecOp::Inc, false, Box::new(expr_of(&b.args[0], "++")?)),
            )))
        },
        "postdec" => |b, s, _cx| {
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::IncDec(IncDecOp::Dec, false, Box::new(expr_of(&b.args[0], "--")?)),
            )))
        },
        "block_stmts" => |b, s, _cx| {
            let items = list_of(&b.args[0], "block")?;
            Ok(Node::Block(stmts_of_list(items, s)?))
        },
        "stmt_block" => |b, s, _cx| {
            let block = block_of(&b.args[0], "block statement")?;
            Ok(Node::Stmt(Stmt::new(s, StmtKind::Block(block))))
        },
        "stmt_expr" => |b, s, _cx| {
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::Expr(expr_of(&b.args[0], "expression statement")?),
            )))
        },
        "stmt_decl" => |b, s, _cx| {
            let ty = expr_as_type(&expr_of(&b.args[0], "declaration type")?)?;
            let ld = local_decl_of(&b.args[1], "declaration")?;
            let mut full_ty = ty.clone();
            for _ in 0..ld.dims {
                full_ty = full_ty.array_of();
            }
            _cx.declare_parse_binding(ld.name.sym, &full_ty);
            Ok(Node::Stmt(Stmt::new(s, StmtKind::Decl(ty, vec![ld]))))
        },
        "stmt_decl_prim" => |b, s, _cx| {
            let ty = type_of(&b.args[0], "declaration type")?;
            let ld = local_decl_of(&b.args[1], "declaration")?;
            let mut full_ty = ty.clone();
            for _ in 0..ld.dims {
                full_ty = full_ty.array_of();
            }
            _cx.declare_parse_binding(ld.name.sym, &full_ty);
            Ok(Node::Stmt(Stmt::new(s, StmtKind::Decl(ty, vec![ld]))))
        },
        "stmt_decl_prim_arr" => |b, s, _cx| {
            let ty = type_of(&b.args[0], "declaration type")?;
            let tree = tree_of(&b.args[1], "declaration")?;
            if !tree.is_empty() {
                return err("array type brackets must be empty", tree.span());
            }
            let ld = local_decl_of(&b.args[2], "declaration")?;
            _cx.declare_parse_binding(ld.name.sym, &ty.clone().array_of());
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::Decl(ty.array_of(), vec![ld]),
            )))
        },
        "local_decl" => |b, _s, _cx| {
            Ok(Node::LocalDecl(LocalDeclarator::plain(ident_of(
                &b.args[0],
                "declarator",
            )?)))
        },
        "local_decl_init" => |b, _s, _cx| {
            Ok(Node::LocalDecl(LocalDeclarator {
                name: ident_of(&b.args[0], "declarator")?,
                dims: 0,
                init: Some(expr_of(&b.args[2], "initializer")?),
            }))
        },
        "local_decl_arr" => |b, _s, _cx| {
            Ok(Node::LocalDecl(LocalDeclarator {
                name: ident_of(&b.args[0], "declarator")?,
                dims: 1,
                init: None,
            }))
        },
        "local_decl_arr_init" => |b, _s, _cx| {
            Ok(Node::LocalDecl(LocalDeclarator {
                name: ident_of(&b.args[0], "declarator")?,
                dims: 1,
                init: Some(expr_of(&b.args[3], "initializer")?),
            }))
        },
        "stmt_if" => |b, s, _cx| {
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::If(
                    expr_of(&b.args[1], "if condition")?,
                    Box::new(stmt_of(&b.args[2], "if body")?),
                    None,
                ),
            )))
        },
        "stmt_if_else" => |b, s, _cx| {
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::If(
                    expr_of(&b.args[1], "if condition")?,
                    Box::new(stmt_of(&b.args[2], "if body")?),
                    Some(Box::new(stmt_of(&b.args[4], "else body")?)),
                ),
            )))
        },
        "stmt_while" => |b, s, _cx| {
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::While(
                    expr_of(&b.args[1], "while condition")?,
                    Box::new(stmt_of(&b.args[2], "while body")?),
                ),
            )))
        },
        "stmt_do" => |b, s, _cx| {
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::Do(
                    Box::new(stmt_of(&b.args[1], "do body")?),
                    expr_of(&b.args[3], "do condition")?,
                ),
            )))
        },
        "stmt_for" => |b, s, _cx| {
            let control = list_of(&b.args[1], "for control")?;
            if control.len() != 3 {
                return err("internal: malformed for control", s);
            }
            let init = match &control[0] {
                Node::Unit => ForInit::None,
                Node::Expr(e) => ForInit::Exprs(vec![e.clone()]),
                Node::List(parts) if parts.len() == 2 => {
                    let ty = match &parts[0] {
                        Node::Type(t) => t.clone(),
                        Node::Expr(e) => expr_as_type(e)?,
                        _ => return err("internal: for-init type", s),
                    };
                    ForInit::Decl(ty, vec![local_decl_of(&parts[1], "for init")?])
                }
                _ => return err("internal: for-init shape", s),
            };
            let conds = list_of(&control[1], "for condition")?;
            if conds.len() > 1 {
                return err("for statement accepts at most one condition", s);
            }
            let cond = conds
                .into_iter()
                .next()
                .and_then(Node::into_expr);
            let update = list_of(&control[2], "for update")?
                .into_iter()
                .filter_map(Node::into_expr)
                .collect();
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::For {
                    init,
                    cond,
                    update,
                    body: Box::new(stmt_of(&b.args[2], "for body")?),
                },
            )))
        },
        "for_control" => |b, _s, _cx| {
            Ok(Node::List(vec![
                b.args[0].clone(),
                b.args[2].clone(),
                b.args[4].clone(),
            ]))
        },
        "for_init_empty" => |_b, _s, _cx| Ok(Node::Unit),
        "for_init_expr" => |b, _s, _cx| Ok(b.args[0].clone()),
        "for_init_decl" | "for_init_prim" => |b, _s, _cx| {
            let ty = match &b.args[0] {
                Node::Type(t) => Some(t.clone()),
                Node::Expr(e) => expr_as_type(e).ok(),
                _ => None,
            };
            if let (Some(ty), Ok(ld)) = (ty, local_decl_of(&b.args[1], "for init")) {
                _cx.declare_parse_binding(ld.name.sym, &ty);
            }
            Ok(Node::List(vec![b.args[0].clone(), b.args[1].clone()]))
        },
        "stmt_return_void" => |_b, s, _cx| Ok(Node::Stmt(Stmt::new(s, StmtKind::Return(None)))),
        "stmt_return" => |b, s, _cx| {
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::Return(Some(expr_of(&b.args[1], "return value")?)),
            )))
        },
        "stmt_break" => |_b, s, _cx| Ok(Node::Stmt(Stmt::new(s, StmtKind::Break))),
        "stmt_continue" => |_b, s, _cx| Ok(Node::Stmt(Stmt::new(s, StmtKind::Continue))),
        "stmt_throw" => |b, s, _cx| {
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::Throw(expr_of(&b.args[1], "throw")?),
            )))
        },
        "stmt_empty" => |_b, s, _cx| Ok(Node::Stmt(Stmt::new(s, StmtKind::Empty))),
        "stmt_try" | "stmt_try_finally" => |b, s, _cx| {
            let body = block_of(&b.args[1], "try body")?;
            let catches = list_of(&b.args[2], "catch clauses")?
                .into_iter()
                .map(|c| match c {
                    Node::List(parts) if parts.len() == 2 => {
                        let param = match &parts[0] {
                            Node::Formal(f) => f.clone(),
                            _ => {
                                return Err(DispatchError::new(
                                    "internal: catch formal",
                                    s,
                                ))
                            }
                        };
                        Ok(CatchClause {
                            param,
                            body: block_of(&parts[1], "catch body")?,
                        })
                    }
                    _ => Err(DispatchError::new("internal: catch clause", s)),
                })
                .collect::<Result<Vec<_>, _>>()?;
            let finally = if b.args.len() > 4 {
                Some(block_of(&b.args[4], "finally body")?)
            } else {
                None
            };
            Ok(Node::Stmt(Stmt::new(
                s,
                StmtKind::Try {
                    body,
                    catches,
                    finally,
                },
            )))
        },
        "catch_clause" => |b, _s, _cx| {
            Ok(Node::List(vec![b.args[1].clone(), b.args[2].clone()]))
        },
        "use_head" => |b, _s, _cx| Ok(b.args[1].clone()),
        "stmt_use" => |b, s, _cx| {
            let target = match &b.args[0] {
                Node::Name(parts) => UseTarget::Named(parts.clone()),
                _ => return err("internal: use target", s),
            };
            let body = block_of(&b.args[1], "use body")?;
            Ok(Node::Stmt(Stmt::new(s, StmtKind::Use(target, body))))
        },
        "formal" => |b, s, _cx| {
            let mods = modifiers_of(&b.args[0]);
            let ty = type_of(&b.args[1], "formal")?;
            let name = ident_of(&b.args[2], "formal")?;
            let mut f = Formal::new(ty, name);
            f.span = s;
            f.is_final = mods.has(Modifier::Final);
            Ok(Node::Formal(f))
        },
        "formal_list" => |b, s, _cx| {
            let items = list_of(&b.args[0], "formals")?;
            let formals = items
                .into_iter()
                .map(|n| match n {
                    Node::Formal(f) => Ok(f),
                    _ => Err(DispatchError::new("internal: formal", s)),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Node::Formals(formals))
        },
        "modifiers" => |b, _s, _cx| Ok(Node::Modifiers(modifiers_of(&b.args[0]))),
        "modifier_public" => modifier(Modifier::Public),
        "modifier_private" => modifier(Modifier::Private),
        "modifier_protected" => modifier(Modifier::Protected),
        "modifier_static" => modifier(Modifier::Static),
        "modifier_final" => modifier(Modifier::Final),
        "modifier_abstract" => modifier(Modifier::Abstract),
        "modifier_native" => modifier(Modifier::Native),
        "modifier_synchronized" => modifier(Modifier::Synchronized),
        "modifier_transient" => modifier(Modifier::Transient),
        "modifier_volatile" => modifier(Modifier::Volatile),
        "throws_none" => |_b, _s, _cx| Ok(Node::List(vec![])),
        "throws_some" => |b, _s, _cx| Ok(b.args[1].clone()),
        "method_decl" | "method_decl_abs" => |b, s, _cx| {
            let modifiers = modifiers_of(&b.args[0]);
            let ret = type_of(&b.args[1], "method return type")?;
            let name = ident_of(&b.args[2], "method name")?;
            let formals = formals_of(&b.args[3], s)?;
            let throws = types_of_list(&b.args[4])?;
            let body = match &b.args[5] {
                Node::Lazy(l) => Some(l.clone()),
                Node::Token(_) => None, // the trailing `;`
                Node::Block(bl) => Some(maya_ast::LazyNode::forced(
                    NodeKind::BlockStmts,
                    Node::Block(bl.clone()),
                )),
                _ => None,
            };
            Ok(Node::Decl(Decl::Method(MethodDecl {
                span: s,
                modifiers,
                ret,
                name,
                formals,
                throws,
                body,
            })))
        },
        "ctor_decl" => |b, s, _cx| {
            let modifiers = modifiers_of(&b.args[0]);
            let name = ident_of(&b.args[1], "constructor name")?;
            let formals = formals_of(&b.args[2], s)?;
            let throws = types_of_list(&b.args[3])?;
            let body = match &b.args[4] {
                Node::Lazy(l) => l.clone(),
                Node::Block(bl) => maya_ast::LazyNode::forced(
                    NodeKind::BlockStmts,
                    Node::Block(bl.clone()),
                ),
                _ => return err("internal: constructor body", s),
            };
            Ok(Node::Decl(Decl::Ctor(CtorDecl {
                span: s,
                modifiers,
                name,
                formals,
                throws,
                body,
            })))
        },
        "field_decl" => |b, s, _cx| {
            let modifiers = modifiers_of(&b.args[0]);
            let mut ty = type_of(&b.args[1], "field type")?;
            let ld = local_decl_of(&b.args[2], "field")?;
            for _ in 0..ld.dims {
                ty = ty.array_of();
            }
            Ok(Node::Decl(Decl::Field(FieldDecl {
                span: s,
                modifiers,
                ty,
                name: ld.name,
                init: ld.init,
            })))
        },
        "extends_none" => |_b, _s, _cx| Ok(Node::Unit),
        "extends_some" => |b, _s, _cx| Ok(b.args[1].clone()),
        "impls_none" => |_b, _s, _cx| Ok(Node::List(vec![])),
        "impls_some" | "impls_extends" => |b, _s, _cx| Ok(b.args[1].clone()),
        "class_decl" => |b, s, _cx| {
            let modifiers = modifiers_of(&b.args[0]);
            let name = ident_of(&b.args[2], "class name")?;
            let superclass = match &b.args[3] {
                Node::Unit => None,
                n => Some(type_of(n, "superclass")?),
            };
            let interfaces = types_of_list(&b.args[4])?;
            let body_tree = tree_of(&b.args[5], "class body")?;
            _cx.record_decl_env(&body_tree);
            Ok(Node::Decl(Decl::Class(ClassDecl {
                span: s,
                modifiers,
                name,
                superclass,
                interfaces,
                body_tree: Some(body_tree),
                members: vec![],
            })))
        },
        "iface_decl" => |b, s, _cx| {
            let modifiers = modifiers_of(&b.args[0]);
            let name = ident_of(&b.args[2], "interface name")?;
            let extends = types_of_list(&b.args[3])?;
            let body_tree = tree_of(&b.args[4], "interface body")?;
            _cx.record_decl_env(&body_tree);
            Ok(Node::Decl(Decl::Interface(InterfaceDecl {
                span: s,
                modifiers,
                name,
                extends,
                body_tree: Some(body_tree),
                members: vec![],
            })))
        },
        "prod_decl" => |b, s, _cx| {
            let modifiers = modifiers_of(&b.args[0]);
            let parts = name_of(&b.args[1], "production LHS")?;
            let lhs = *parts.last().ok_or_else(|| {
                DispatchError::new("internal: production LHS", s)
            })?;
            let pattern = tree_of(&b.args[3], "production pattern")?;
            Ok(Node::Decl(Decl::Production(ProductionDecl {
                span: s,
                modifiers,
                lhs,
                pattern,
            })))
        },
        "mayan_decl" => |b, s, _cx| {
            let modifiers = modifiers_of(&b.args[0]);
            let parts = name_of(&b.args[1], "Mayan LHS")?;
            let lhs = *parts
                .last()
                .ok_or_else(|| DispatchError::new("internal: Mayan LHS", s))?;
            let name = ident_of(&b.args[3], "Mayan name")?;
            let params = tree_of(&b.args[4], "Mayan parameters")?;
            let body = tree_of(&b.args[5], "Mayan body")?;
            Ok(Node::Decl(Decl::Mayan(MayanDecl {
                span: s,
                modifiers,
                lhs,
                name,
                params,
                body,
            })))
        },
        "use_decl" => |b, s, _cx| {
            let target = match &b.args[0] {
                Node::Name(parts) => UseTarget::Named(parts.clone()),
                _ => return err("internal: use target", s),
            };
            let decls = decls_of(&b.args[1], s)?;
            Ok(Node::Decl(Decl::Use(target, decls)))
        },
        "class_body" => |b, s, _cx| {
            Ok(Node::Decls(decls_of(&b.args[0], s)?))
        },
        "package_none" => |_b, _s, _cx| Ok(Node::Unit),
        "package_some" => |b, _s, _cx| Ok(b.args[1].clone()),
        "import_plain" => |b, s, _cx| {
            Ok(Node::Decl(Decl::Import(ImportDecl {
                span: s,
                path: name_of(&b.args[1], "import")?,
                wildcard: false,
            })))
        },
        "import_star" => |b, s, _cx| {
            Ok(Node::Decl(Decl::Import(ImportDecl {
                span: s,
                path: name_of(&b.args[1], "import")?,
                wildcard: true,
            })))
        },
        "comp_unit" => |b, _s, _cx| {
            Ok(Node::List(vec![
                b.args[0].clone(),
                b.args[1].clone(),
                b.args[2].clone(),
            ]))
        },
        other => panic!("no built-in Mayan body for base production {other}"),
    }
}

fn stmt_of(n: &Node, what: &str) -> Result<Stmt, DispatchError> {
    n.clone()
        .into_stmt()
        .ok_or_else(|| DispatchError::new(format!("internal: expected statement in {what}"), Span::DUMMY))
}

fn formals_of(n: &Node, s: Span) -> Result<Vec<Formal>, DispatchError> {
    match n {
        Node::Formals(f) => Ok(f.clone()),
        Node::List(items) => items
            .iter()
            .map(|i| match i {
                Node::Formal(f) => Ok(f.clone()),
                _ => Err(DispatchError::new("internal: formal", s)),
            })
            .collect(),
        _ => err("internal: formal list", s),
    }
}

fn decls_of(n: &Node, s: Span) -> Result<Vec<Decl>, DispatchError> {
    match n {
        Node::Decls(d) => Ok(d.clone()),
        Node::List(items) => items
            .iter()
            .map(|i| match i {
                Node::Decl(d) => Ok(d.clone()),
                _ => Err(DispatchError::new("internal: declaration", s)),
            })
            .collect(),
        _ => err("internal: declaration list", s),
    }
}

fn prim(p: maya_ast::PrimKind) -> Body {
    // One function per prim kind, selected by a static table so `Body` can
    // stay a plain fn pointer.
    macro_rules! prim_body {
        ($($k:ident),*) => {
            match p {
                $(maya_ast::PrimKind::$k => |_b, _s, _cx: &mut CoreExpand| {
                    Ok(Node::Type(TypeName::prim(maya_ast::PrimKind::$k)))
                }),*
            }
        };
    }
    prim_body!(Boolean, Byte, Short, Char, Int, Long, Float, Double)
}

fn binop(op: BinOp) -> Body {
    macro_rules! bin_body {
        ($($k:ident),*) => {
            match op {
                $(BinOp::$k => |b: &Bindings, s, _cx: &mut CoreExpand| {
                    Ok(Node::Expr(Expr::new(
                        s,
                        ExprKind::Binary(
                            BinOp::$k,
                            Box::new(expr_of(&b.args[0], "operand")?),
                            Box::new(expr_of(&b.args[2], "operand")?),
                        ),
                    )))
                }),*
            }
        };
    }
    bin_body!(
        Add, Sub, Mul, Div, Rem, Shl, Shr, Ushr, Lt, Gt, Le, Ge, Eq, Ne, BitAnd, BitXor, BitOr,
        And, Or
    )
}

fn assign_op(op: Option<BinOp>) -> Body {
    macro_rules! asg_body {
        ($($k:ident),*) => {
            match op {
                None => (|b: &Bindings, s, _cx: &mut CoreExpand| {
                    Ok(Node::Expr(Expr::new(
                        s,
                        ExprKind::Assign(
                            None,
                            Box::new(expr_of(&b.args[0], "assignment target")?),
                            Box::new(expr_of(&b.args[2], "assignment value")?),
                        ),
                    )))
                }) as Body,
                $(Some(BinOp::$k) => |b: &Bindings, s, _cx: &mut CoreExpand| {
                    Ok(Node::Expr(Expr::new(
                        s,
                        ExprKind::Assign(
                            Some(BinOp::$k),
                            Box::new(expr_of(&b.args[0], "assignment target")?),
                            Box::new(expr_of(&b.args[2], "assignment value")?),
                        ),
                    )))
                },)*
                Some(_) => unreachable!("non-compound assignment operator"),
            }
        };
    }
    asg_body!(Add, Sub, Mul, Div, Rem, BitAnd, BitOr, BitXor, Shl, Shr, Ushr)
}

fn unop(op: UnOp) -> Body {
    macro_rules! un_body {
        ($($k:ident),*) => {
            match op {
                $(UnOp::$k => |b: &Bindings, s, _cx: &mut CoreExpand| {
                    Ok(Node::Expr(Expr::new(
                        s,
                        ExprKind::Unary(UnOp::$k, Box::new(expr_of(&b.args[1], "operand")?)),
                    )))
                }),*
            }
        };
    }
    un_body!(Neg, Plus, Not, BitNot)
}

fn incdec(op: IncDecOp, prefix: bool) -> Body {
    match (op, prefix) {
        (IncDecOp::Inc, true) => |b, s, _cx| {
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::IncDec(IncDecOp::Inc, true, Box::new(expr_of(&b.args[1], "++")?)),
            )))
        },
        (IncDecOp::Dec, true) => |b, s, _cx| {
            Ok(Node::Expr(Expr::new(
                s,
                ExprKind::IncDec(IncDecOp::Dec, true, Box::new(expr_of(&b.args[1], "--")?)),
            )))
        },
        _ => unreachable!("postfix handled separately"),
    }
}

fn modifier(m: Modifier) -> Body {
    macro_rules! mod_body {
        ($($k:ident),*) => {
            match m {
                $(Modifier::$k => |_b, _s, _cx: &mut CoreExpand| {
                    Ok(Node::Modifiers(Modifiers::just(Modifier::$k)))
                }),*
            }
        };
    }
    mod_body!(
        Public, Private, Protected, Static, Final, Abstract, Native, Synchronized, Transient,
        Volatile
    )
}

/// Derives maximally permissive parameters for a built-in Mayan: built-ins
/// must apply to *anything* the grammar produced (semantic values do not
/// always carry the nonterminal's node kind — an empty `ExtendsClause` is a
/// unit value), so every position is `Top`.
pub fn params_for(grammar: &Grammar, prod: ProdId) -> Vec<Param> {
    grammar
        .production(prod)
        .rhs
        .iter()
        .map(|_| Param::plain(NodeKind::Top))
        .collect()
}

/// Imports every built-in Mayan and registers destructors/produced kinds.
pub fn install(grammar: &Grammar, prods: &BaseProds, env: &mut EnvBuilder) {
    for (name, id) in prods.all() {
        let body = body_for(name);
        let params = params_for(grammar, *id);
        let mayan = Mayan::new(
            &format!("builtin:{name}"),
            *id,
            params,
            Rc::new(move |b: &Bindings, ctx: &mut dyn ExpandCtx| {
                let span = Span::DUMMY;
                let cx = ctx
                    .as_any()
                    .downcast_mut::<CoreExpand>()
                    .expect("built-in Mayans run under the core compiler");
                let span = if cx.span.is_dummy() { span } else { cx.span };
                body(b, span, cx)
            }),
        );
        env.import(mayan);
    }
    register_destructors(grammar, prods, env);
}

fn register_destructors(grammar: &Grammar, prods: &BaseProds, env: &mut EnvBuilder) {
    use NodeKind::*;
    let unit = || Node::Unit;

    env.register_destructor(
        prods.id("identifier"),
        Identifier,
        Rc::new(|n: &Node| {
            n.as_ident().map(|i| {
                vec![Node::Token(maya_lexer::Token::new(
                    maya_lexer::TokenKind::Ident,
                    i.sym,
                    i.span,
                ))]
            })
        }),
    );
    env.register_destructor(
        prods.id("expr_name"),
        NameExpr,
        Rc::new(|n: &Node| match n {
            Node::Expr(Expr {
                kind: ExprKind::Name(i),
                ..
            }) => Some(vec![Node::Ident(*i)]),
            _ => None,
        }),
    );
    env.register_destructor(
        prods.id("field_access"),
        FieldAccessExpr,
        Rc::new(move |n: &Node| match n {
            Node::Expr(Expr {
                kind: ExprKind::FieldAccess(t, i),
                ..
            }) => Some(vec![Node::Expr((**t).clone()), unit(), Node::Ident(*i)]),
            _ => None,
        }),
    );
    env.register_destructor(
        prods.id("mn_simple"),
        MethodName,
        Rc::new(|n: &Node| match n {
            Node::MethodName(m) if m.receiver.is_none() && !m.super_recv => {
                Some(vec![Node::Ident(m.name)])
            }
            _ => None,
        }),
    );
    env.register_destructor(
        prods.id("mn_recv"),
        MethodName,
        Rc::new(|n: &Node| match n {
            Node::MethodName(m) => m.receiver.as_ref().map(|r| {
                vec![
                    Node::Expr((**r).clone()),
                    Node::Unit,
                    Node::Ident(m.name),
                ]
            }),
            _ => None,
        }),
    );
    env.register_destructor(
        prods.id("mn_super"),
        MethodName,
        Rc::new(|n: &Node| match n {
            Node::MethodName(m) if m.super_recv => {
                Some(vec![Node::Unit, Node::Unit, Node::Ident(m.name)])
            }
            _ => None,
        }),
    );
    env.register_destructor(
        prods.id("call"),
        CallExpr,
        Rc::new(|n: &Node| match n {
            Node::Expr(Expr {
                kind: ExprKind::Call(mn, args),
                ..
            }) => Some(vec![
                Node::MethodName(mn.clone()),
                Node::Args(args.clone()),
            ]),
            _ => None,
        }),
    );
    env.register_destructor(
        prods.id("args"),
        ArgumentList,
        Rc::new(|n: &Node| match n {
            Node::Args(a) => Some(vec![Node::List(
                a.iter().cloned().map(Node::Expr).collect(),
            )]),
            _ => None,
        }),
    );
    env.register_destructor(
        prods.id("new_object"),
        NewExpr,
        Rc::new(|n: &Node| match n {
            Node::Expr(Expr {
                kind: ExprKind::New(ty, args),
                ..
            }) => Some(vec![
                Node::Unit,
                Node::Type(ty.clone()),
                Node::Args(args.clone()),
            ]),
            _ => None,
        }),
    );
    env.register_destructor(
        prods.id("instanceof"),
        InstanceofExpr,
        Rc::new(|n: &Node| match n {
            Node::Expr(Expr {
                kind: ExprKind::Instanceof(e, ty),
                ..
            }) => Some(vec![
                Node::Expr((**e).clone()),
                Node::Unit,
                Node::Type(ty.clone()),
            ]),
            _ => None,
        }),
    );
    // Binary operators: one destructor per op-specific production.
    let bin_table: &[(&str, BinOp)] = &[
        ("binary_add", BinOp::Add),
        ("binary_sub", BinOp::Sub),
        ("binary_mul", BinOp::Mul),
        ("binary_div", BinOp::Div),
        ("binary_rem", BinOp::Rem),
        ("binary_lt", BinOp::Lt),
        ("binary_gt", BinOp::Gt),
        ("binary_eq", BinOp::Eq),
        ("binary_ne", BinOp::Ne),
        ("binary_andand", BinOp::And),
        ("binary_oror", BinOp::Or),
    ];
    for (name, op) in bin_table {
        let op = *op;
        env.register_destructor(
            prods.id(name),
            BinaryExpr,
            Rc::new(move |n: &Node| match n {
                Node::Expr(Expr {
                    kind: ExprKind::Binary(o, l, r),
                    ..
                }) if *o == op => Some(vec![
                    Node::Expr((**l).clone()),
                    Node::Unit,
                    Node::Expr((**r).clone()),
                ]),
                _ => None,
            }),
        );
    }

    // Generic list-helper destructors, so deep patterns (e.g. `.elements()`
    // with an empty argument list) can match through `list(...)` symbols.
    for (i, p) in grammar.productions().iter().enumerate() {
        let id = ProdId(i as u32);
        match p.action {
            Action::Builtin(BuiltinAction::EmptyList) => {
                env.register_destructor(
                    id,
                    ListNode,
                    Rc::new(|n: &Node| match n {
                        Node::List(v) if v.is_empty() => Some(vec![]),
                        Node::Args(a) if a.is_empty() => Some(vec![]),
                        _ => None,
                    }),
                );
            }
            Action::Builtin(BuiltinAction::ListSingle) => {
                env.register_destructor(
                    id,
                    ListNode,
                    Rc::new(|n: &Node| match n {
                        Node::List(v) if v.len() == 1 => Some(vec![v[0].clone()]),
                        Node::Args(a) if a.len() == 1 => {
                            Some(vec![Node::Expr(a[0].clone())])
                        }
                        _ => None,
                    }),
                );
            }
            Action::Builtin(BuiltinAction::ListAppend { with_sep }) => {
                env.register_destructor(
                    id,
                    ListNode,
                    Rc::new(move |n: &Node| {
                        let items: Vec<Node> = match n {
                            Node::List(v) => v.clone(),
                            Node::Args(a) => {
                                a.iter().cloned().map(Node::Expr).collect()
                            }
                            _ => return None,
                        };
                        if items.len() < 2 {
                            return None;
                        }
                        let (last, front) = items.split_last()?;
                        let mut out =
                            vec![Node::List(front.to_vec())];
                        if with_sep {
                            out.push(Node::Unit);
                        }
                        out.push(last.clone());
                        Some(out)
                    }),
                );
            }
            Action::Builtin(BuiltinAction::PassThrough(0)) if p.rhs.len() == 1 => {
                env.register_destructor(id, ListNode, Rc::new(|n: &Node| Some(vec![n.clone()])));
            }
            _ => {}
        }
    }
}
