//! Panic sandboxing for metaprogram execution.
//!
//! Mayan bodies and template instantiation run arbitrary (meta)program
//! logic; a bug there must surface as a *located diagnostic naming the
//! Mayan*, not abort the whole compiler. [`catch`] wraps such calls in
//! `catch_unwind` and suppresses the default panic hook's stderr banner
//! while a sandbox is active (the panic becomes a diagnostic; the banner
//! would be noise duplicated on every caught panic).

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Nesting depth of active sandboxes on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if DEPTH.with(|d| d.get()) == 0 {
                prev(info);
            }
        }));
    });
}

/// Extracts a printable message from a panic payload.
pub(crate) fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_owned()
    }
}

/// Runs `f`, converting a panic into `Err(message)`.
///
/// The closure is asserted unwind-safe: callers only observe shared
/// compiler state through `RefCell`s whose borrows are released by
/// unwinding, and a caught panic always becomes a fatal diagnostic, so a
/// half-updated expansion result is never used.
pub(crate) fn catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_hook();
    DEPTH.with(|d| d.set(d.get() + 1));
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    DEPTH.with(|d| d.set(d.get() - 1));
    r.map_err(|p| payload_message(p.as_ref()))
}
