//! `maya-core`: the mayac compiler (paper Figures 1 and 4).
//!
//! This crate ties every substrate together into the pipeline the paper
//! describes: the **file reader** reads class declarations from source
//! files; the **class shaper** parses class bodies and computes member
//! types; the **class compiler** parses (lazily) and checks member
//! initializers and method bodies. The parser is invoked in all three
//! stages, dispatching to Mayans on every node-type reduction, with lazy
//! parsing and lazy type checking interleaved on demand.
//!
//! The public API is [`Compiler`]: register extensions (native
//! [`maya_dispatch::MetaProgram`]s or source `syntax` declarations), add
//! sources, compile, and run the result on the interpreter.

mod base;
mod bridge;
mod builtins;
mod compiler;
mod diag;
mod driver;
mod error;
pub mod faults;
mod fingerprint;
pub mod json;
mod recover;
mod sandbox;
mod extension;
mod literal;
pub mod metagrammar;
mod session;
pub mod service;
mod source_mayan;
pub mod store;

pub use base::{Base, BaseProds};

/// Re-export for debugging tools and benches.
pub fn describe_prod_pub(g: &maya_grammar::Grammar, p: maya_grammar::ProdId) -> String {
    crate::driver::describe_prod(g, p)
}
pub use compiler::{lex_files, CompileOptions, Compiler, CompilerInner, DepEdge, ForceCache};
pub use session::{
    clear_lex_share, lex_share_enabled, set_lex_share_enabled, ErrorFormat, Outcome, RequestOpts,
    Session, SessionStats,
};
pub use driver::{expr_as_type, CoreExpand, CoreInstHost, Cx, EnvPair, ExpandSnapshot, ForceHost, LazyEnvPayload};
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use error::CompileError;
pub use extension::TreeValue;
pub use literal::parse_literal;

/// Runs `f`, converting a panic into an `Err` with the panic message.
///
/// This is the driver-boundary safety net: `mayac` wraps whole phases in
/// it so a compiler bug surfaces as an internal-compiler-error diagnostic
/// instead of a process abort. The default panic hook is suppressed while
/// inside (the message is captured instead).
pub fn catch_ice<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    sandbox::catch(f)
}

/// Maximally permissive parameters for a production (used by extensions
/// that override built-in semantic actions and fall through with
/// `nextRewrite`).
pub fn builtin_params(g: &maya_grammar::Grammar, p: maya_grammar::ProdId) -> Vec<maya_dispatch::Param> {
    crate::builtins::params_for(g, p)
}
