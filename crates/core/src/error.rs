//! The unified compile error.

use maya_lexer::Span;
use std::fmt;

/// Any error the compiler reports: lexical, syntactic, grammatical,
/// dispatch, static-semantic, or runtime (when driving the interpreter).
#[derive(Clone, Debug)]
pub struct CompileError {
    pub message: String,
    pub span: Span,
}

/// Sentinel message for errors whose diagnostics were already reported into
/// an active [`crate::Diagnostics`] sink; the sink ignores it on re-report,
/// so recovery sites can both report in place and still propagate failure.
pub(crate) const ALREADY_REPORTED: &str = "<already-reported>";

impl CompileError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, span: Span) -> CompileError {
        CompileError {
            message: message.into(),
            span,
        }
    }

    /// An error that was already reported into the diagnostics sink and
    /// only propagates failure.
    pub(crate) fn reported(span: Span) -> CompileError {
        CompileError::new(ALREADY_REPORTED, span)
    }

    /// True for [`CompileError::reported`] sentinels.
    pub(crate) fn is_reported_sentinel(&self) -> bool {
        self.message == ALREADY_REPORTED
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<maya_lexer::LexError> for CompileError {
    fn from(e: maya_lexer::LexError) -> CompileError {
        CompileError::new(e.message, e.span)
    }
}

impl From<maya_parser::ParseError> for CompileError {
    fn from(e: maya_parser::ParseError) -> CompileError {
        CompileError::new(e.message, e.span)
    }
}

impl From<maya_types::TypeError> for CompileError {
    fn from(e: maya_types::TypeError) -> CompileError {
        CompileError::new(e.message, e.span)
    }
}

impl From<maya_dispatch::DispatchError> for CompileError {
    fn from(e: maya_dispatch::DispatchError) -> CompileError {
        CompileError::new(e.message, e.span)
    }
}

impl From<maya_template::TemplateError> for CompileError {
    fn from(e: maya_template::TemplateError) -> CompileError {
        CompileError::new(e.message, e.span)
    }
}

impl From<maya_grammar::GrammarError> for CompileError {
    fn from(e: maya_grammar::GrammarError) -> CompileError {
        let span = e.span();
        CompileError::new(e.to_string(), span)
    }
}

impl From<maya_interp::RuntimeError> for CompileError {
    fn from(e: maya_interp::RuntimeError) -> CompileError {
        CompileError::new(e.message, e.span)
    }
}
