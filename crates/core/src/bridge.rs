//! The `maya.tree` bridge: the compile-time reflection API interpreted
//! metaprogram bodies use (paper §3.2), and the template-expression
//! evaluator.
//!
//! `maya.tree.*` classes wrap AST nodes as [`TreeValue`] natives. Static
//! helpers mirror the paper's API: `StrictTypeName.make`, `DeclStmt.make`,
//! `Reference.makeExpr`, `Environment.makeId`, plus `nextRewrite()` inside
//! Mayan bodies. All of them read the compiler's *expand stack* — the
//! Mayan expansion currently in progress.

use crate::compiler::CompilerInner;
use crate::driver::{type_to_strict, CoreInstHost, Cx};
use crate::extension::TreeValue;
use maya_ast::{Expr, ExprKind, LocalDeclarator, Node, NodeKind, Stmt, StmtKind, TemplateLit};
use maya_interp::{native_as, Control, Eval, Frame, Interp, Value};
use maya_lexer::{sym, Span, Symbol};
use maya_template::{SlotKinds, SlotSource, Template};
use maya_types::{ClassInfo, MethodInfo, ResolveCtx, Scope, Type};
use std::cell::RefCell;
use std::rc::Rc;

/// The `maya.tree` class names installed by the bridge.
pub const TREE_CLASSES: &[&str] = &[
    "maya.tree.Node",
    "maya.tree.Expression",
    "maya.tree.Statement",
    "maya.tree.BlockStmts",
    "maya.tree.TypeName",
    "maya.tree.StrictTypeName",
    "maya.tree.Declaration",
    "maya.tree.Identifier",
    "maya.tree.MethodName",
    "maya.tree.Formal",
    "maya.tree.VarDeclaration",
    "maya.tree.DeclStmt",
    "maya.tree.Reference",
    "maya.Environment",
];

fn err(msg: impl Into<String>) -> Control {
    Control::error(msg, Span::DUMMY)
}

fn node_of(v: &Value) -> Result<Node, Control> {
    native_as::<TreeValue>(v)
        .map(|t| t.node.clone())
        .ok_or_else(|| err("expected a maya.tree value"))
}

pub(crate) fn tree_value(node: Node) -> Value {
    Value::native(TreeValue { node })
}

/// Installs the `maya.tree` classes, their natives, and the template
/// evaluator (idempotent per class table).
pub fn install(cx: &Rc<CompilerInner>) {
    let ct = &cx.classes;
    if ct.by_fqcn_str("maya.tree.Node").is_none() {
        let object = ct.by_fqcn_str("java.lang.Object");
        for fqcn in TREE_CLASSES {
            let mut info = ClassInfo::new(fqcn, false);
            info.superclass = match *fqcn {
                "maya.tree.Node" => object,
                "maya.tree.StrictTypeName" => ct.by_fqcn_str("maya.tree.TypeName").or(object),
                "maya.tree.DeclStmt" => ct.by_fqcn_str("maya.tree.Statement").or(object),
                "maya.tree.VarDeclaration" => ct.by_fqcn_str("maya.tree.Formal").or(object),
                _ => ct.by_fqcn_str("maya.tree.Node").or(object),
            };
            let _ = ct.declare(info);
        }
        let string = Type::Class(ct.by_fqcn_str("java.lang.String").expect("runtime"));
        let tc = |n: &str| Type::Class(ct.by_fqcn_str(n).expect("tree class"));
        let node_t = tc("maya.tree.Node");
        let type_t = tc("maya.tree.TypeName");
        let strict_t = tc("maya.tree.StrictTypeName");
        let stmt_t = tc("maya.tree.Statement");
        let expr_t = tc("maya.tree.Expression");
        let ident_t = tc("maya.tree.Identifier");
        let formal_t = tc("maya.tree.Formal");

        let stat = |name: &str, params: Vec<Type>, ret: Type, key: &str| {
            let mut m = MethodInfo::native(name, params, ret, key);
            m.modifiers.add(maya_ast::Modifier::Static);
            m
        };
        let strict = ct.by_fqcn_str("maya.tree.StrictTypeName").unwrap();
        ct.add_method(
            strict,
            stat("make", vec![node_t.clone()], strict_t, "tree.strict.make"),
        );
        let declstmt = ct.by_fqcn_str("maya.tree.DeclStmt").unwrap();
        ct.add_method(
            declstmt,
            stat("make", vec![formal_t.clone()], stmt_t, "tree.declstmt.make"),
        );
        let reference = ct.by_fqcn_str("maya.tree.Reference").unwrap();
        ct.add_method(
            reference,
            stat(
                "makeExpr",
                vec![node_t.clone()],
                expr_t.clone(),
                "tree.ref.make",
            ),
        );
        let environment = ct.by_fqcn_str("maya.Environment").unwrap();
        ct.add_method(
            environment,
            stat(
                "makeId",
                vec![string.clone()],
                ident_t.clone(),
                "tree.makeid",
            ),
        );
        let formal = ct.by_fqcn_str("maya.tree.Formal").unwrap();
        ct.add_method(
            formal,
            MethodInfo::native("getType", vec![], type_t.clone(), "tree.formal.getType"),
        );
        ct.add_method(
            formal,
            MethodInfo::native("getName", vec![], string.clone(), "tree.getName"),
        );
        ct.add_method(
            formal,
            MethodInfo::native("getLocation", vec![], formal_t, "tree.identity"),
        );
        let identifier = ct.by_fqcn_str("maya.tree.Identifier").unwrap();
        ct.add_method(
            identifier,
            MethodInfo::native("getName", vec![], string, "tree.getName"),
        );
        let expression = ct.by_fqcn_str("maya.tree.Expression").unwrap();
        ct.add_method(
            expression,
            MethodInfo::native("getStaticType", vec![], type_t, "tree.expr.staticType"),
        );
    }

    register_natives(cx);
    install_template_hook(cx);
}

fn top_snapshot(cx: &CompilerInner) -> Result<crate::driver::ExpandSnapshot, Control> {
    cx.expand_stack
        .borrow()
        .last()
        .cloned()
        .ok_or_else(|| err("this API is only available while a Mayan is expanding"))
}

fn register_natives(cx: &Rc<CompilerInner>) {
    let interp = cx.interp.clone();
    let w = Rc::downgrade(cx);

    {
        let w = w.clone();
        interp.register_native(
            "tree.strict.make",
            Rc::new(move |_i: &Interp, _recv, args: Vec<Value>| -> Eval {
                let cx = w.upgrade().ok_or_else(|| err("compiler dropped"))?;
                let snap = top_snapshot(&cx)?;
                let node = node_of(&args[0])?;
                let tn = match node {
                    Node::Type(t) => t,
                    other => {
                        return Err(err(format!(
                            "StrictTypeName.make expects a type name, got {:?}",
                            other.node_kind()
                        )))
                    }
                };
                let ty = cx
                    .classes
                    .resolve_type_name(&tn, &snap.c.ctx)
                    .map_err(|e| err(e.message))?;
                let strict =
                    type_to_strict(&cx.classes, &ty).map_err(|e| err(e.message))?;
                Ok(tree_value(Node::Type(strict)))
            }),
        );
    }
    interp.register_native(
        "tree.declstmt.make",
        Rc::new(move |_i, _recv, args| {
            let node = node_of(&args[0])?;
            let Node::Formal(f) = node else {
                return Err(err("DeclStmt.make expects a Formal"));
            };
            Ok(tree_value(Node::Stmt(Stmt::synth(StmtKind::Decl(
                f.ty.clone(),
                vec![LocalDeclarator::plain(f.name)],
            )))))
        }),
    );
    interp.register_native(
        "tree.ref.make",
        Rc::new(move |_i, _recv, args| {
            let node = node_of(&args[0])?;
            let name = match &node {
                Node::Formal(f) => f.name.sym,
                Node::Ident(i) => i.sym,
                other => {
                    return Err(err(format!(
                        "Reference.makeExpr expects a formal or identifier, got {:?}",
                        other.node_kind()
                    )))
                }
            };
            Ok(tree_value(Node::Expr(Expr::synth(ExprKind::VarRef(name)))))
        }),
    );
    {
        let w = w.clone();
        interp.register_native(
            "tree.makeid",
            Rc::new(move |_i, _recv, args| {
                let cx = w.upgrade().ok_or_else(|| err("compiler dropped"))?;
                let base = match &args[0] {
                    Value::Str(s) => s.to_string(),
                    other => {
                        return Err(err(format!("makeId expects a String, got {other:?}")))
                    }
                };
                Ok(tree_value(Node::Ident(maya_ast::Ident::synth(
                    cx.fresh(&base),
                ))))
            }),
        );
    }
    interp.register_native(
        "tree.formal.getType",
        Rc::new(move |_i, recv, _args| {
            let Node::Formal(f) = node_of(&recv)? else {
                return Err(err("getType on a non-formal"));
            };
            Ok(tree_value(Node::Type(f.ty.clone())))
        }),
    );
    interp.register_native(
        "tree.getName",
        Rc::new(move |_i, recv, _args| {
            let name = match node_of(&recv)? {
                Node::Formal(f) => f.name.sym,
                Node::Ident(i) => i.sym,
                other => return Err(err(format!("getName on {:?}", other.node_kind()))),
            };
            Ok(Value::str(name.as_str()))
        }),
    );
    interp.register_native("tree.identity", Rc::new(move |_i, recv, _args| Ok(recv)));
    {
        let w = w.clone();
        interp.register_native(
            "tree.expr.staticType",
            Rc::new(move |_i, recv, _args| {
                let cx = w.upgrade().ok_or_else(|| err("compiler dropped"))?;
                let snap = top_snapshot(&cx)?;
                let Node::Expr(e) = node_of(&recv)? else {
                    return Err(err("getStaticType on a non-expression"));
                };
                let ty = snap.c.static_type(&e).map_err(|e| err(e.message))?;
                let strict =
                    type_to_strict(&cx.classes, &ty).map_err(|e| err(e.message))?;
                Ok(tree_value(Node::Type(strict)))
            }),
        );
    }
    {
        let w = w.clone();
        interp.register_native(
            "tree.nextRewrite",
            Rc::new(move |_i, _recv, _args| {
                let cx = w.upgrade().ok_or_else(|| err("compiler dropped"))?;
                let snap = top_snapshot(&cx)?;
                let node = snap.next_rewrite().map_err(|e| err(e.message))?;
                Ok(tree_value(node))
            }),
        );
    }
}

/// A compiled template plus the evaluation plan for its slots.
struct CompiledTemplate {
    template: Template,
    /// How to obtain each slot value in the metaprogram frame.
    evals: Vec<SlotEval>,
}

enum SlotEval {
    Named(Symbol),
    Expr(Expr),
}

/// Maps an AST node about to be spliced to the grammar symbol it stands
/// for (top categories keep the parse general).
pub fn kind_for_splice(node: &Node) -> NodeKind {
    match node {
        Node::Lazy(l) if l.goal == NodeKind::BlockStmts => NodeKind::Statement,
        Node::Lazy(l) => {
            if l.goal.is_subkind_of(NodeKind::Expression) {
                NodeKind::Expression
            } else {
                NodeKind::Statement
            }
        }
        Node::Block(_) | Node::Stmt(_) => NodeKind::Statement,
        Node::Expr(_) => NodeKind::Expression,
        Node::Type(_) => NodeKind::TypeName,
        Node::Ident(_) => NodeKind::Identifier,
        Node::Formal(_) => NodeKind::Formal,
        Node::MethodName(_) => NodeKind::MethodName,
        Node::Name(_) => NodeKind::QualifiedName,
        other => other.node_kind(),
    }
}

fn install_template_hook(cx: &Rc<CompilerInner>) {
    let w = Rc::downgrade(cx);
    cx.interp.set_template_hook(Rc::new(
        move |interp: &Interp, tlit: &TemplateLit, frame: &mut Frame| -> Eval {
            let cx = w.upgrade().ok_or_else(|| err("compiler dropped"))?;
            let snap = top_snapshot(&cx)?;
            // Definition context: the extension class the body belongs to.
            let def_ctx = frame
                .class
                .and_then(|c| cx.class_meta.borrow().get(&c).map(|m| m.ctx.clone()))
                .unwrap_or_default();
            let def_cx = Cx {
                cx: cx.clone(),
                pair: snap.c.pair.clone(),
                ctx: def_ctx,
                class: frame.class,
                scope: Rc::new(RefCell::new(Scope::new())),
            };

            // Compile once per template literal.
            let compiled: Rc<CompiledTemplate> = {
                let cached = tlit.compiled.borrow().clone();
                match cached.and_then(|c| c.downcast::<CompiledTemplate>().ok()) {
                    Some(c) => c,
                    None => {
                        let c =
                            Rc::new(compile_template_lit(&cx, &def_cx, interp, frame, tlit)?);
                        *tlit.compiled.borrow_mut() = Some(c.clone() as Rc<dyn std::any::Any>);
                        c
                    }
                }
            };

            // Evaluate the slots in the metaprogram frame.
            let mut values = Vec::with_capacity(compiled.evals.len());
            for ev in &compiled.evals {
                let v = match ev {
                    SlotEval::Named(name) => frame
                        .get_local(*name)
                        .ok_or_else(|| err(format!("unbound template slot ${name}")))?,
                    SlotEval::Expr(e) => interp.eval(e, frame)?,
                };
                values.push(node_of(&v)?);
            }
            let mut host = CoreInstHost { c: snap.c.clone() };
            let node = compiled
                .template
                .instantiate(values, &mut host)
                .map_err(|e| err(e.message))?;
            Ok(tree_value(node))
        },
    ));
}

fn compile_template_lit(
    cx: &Rc<CompilerInner>,
    def_cx: &Cx,
    interp: &Interp,
    frame: &mut Frame,
    tlit: &TemplateLit,
) -> Result<CompiledTemplate, Control> {
    // Slot kinds come from the tree values in scope ("determined by its
    // static type", §4.2 — the dynamic kind of the value mirrors it).
    struct Kinds<'a> {
        interp: &'a Interp,
        frame: &'a mut Frame,
        def_cx: &'a Cx,
        evals: Vec<SlotEval>,
    }
    impl SlotKinds for Kinds<'_> {
        fn named(&mut self, name: Symbol) -> Option<NodeKind> {
            let v = self.frame.get_local(name)?;
            let node = node_of(&v).ok()?;
            self.evals.push(SlotEval::Named(name));
            Some(kind_for_splice(&node))
        }

        fn expr(&mut self, tokens: &[maya_lexer::TokenTree]) -> Option<NodeKind> {
            let goal = self
                .def_cx
                .pair
                .grammar
                .nt_for_kind(NodeKind::Expression)?;
            let parsed = self.def_cx.parse_trees(tokens, goal).ok()?;
            let expr = parsed.into_expr()?;
            let v = self.interp.eval(&expr, self.frame).ok()?;
            let node = node_of(&v).ok()?;
            self.evals.push(SlotEval::Expr(expr));
            Some(kind_for_splice(&node))
        }
    }

    let mut kinds = Kinds {
        interp,
        frame,
        def_cx,
        evals: Vec::new(),
    };
    let classes = cx.classes.clone();
    let rctx = def_cx.ctx.clone();
    let resolver = move |dotted: &str| -> Option<Symbol> {
        if dotted.contains('.') {
            classes.by_fqcn_str(dotted).map(|c| classes.fqcn(c))
        } else {
            classes
                .resolve_simple(sym(dotted), &rctx)
                .map(|c| classes.fqcn(c))
        }
    };
    let template = Template::compile(
        &def_cx.pair.grammar,
        &cx.base.hygiene,
        &resolver,
        tlit.goal,
        &tlit.body,
        &mut kinds,
    )
    .map_err(|e| Control::error(e.message, e.span))?;
    debug_assert_eq!(template.slots.len(), kinds.evals.len());
    for (slot, ev) in template.slots.iter().zip(&kinds.evals) {
        match (&slot.source, ev) {
            (SlotSource::Named(a), SlotEval::Named(b)) if a == b => {}
            (SlotSource::Expr(_), SlotEval::Expr(_)) => {}
            _ => return Err(err("internal: template slot plan mismatch")),
        }
    }
    Ok(CompiledTemplate {
        template,
        evals: kinds.evals,
    })
}

/// Widens a resolution context with the packages extension bodies expect.
pub fn ext_resolve_ctx(base: &ResolveCtx) -> ResolveCtx {
    let mut ctx = base.clone();
    ctx.wildcard_imports.push(sym("maya.tree"));
    ctx.wildcard_imports.push(sym("maya"));
    ctx.wildcard_imports.push(sym("java.util"));
    ctx
}

#[allow(dead_code)]
fn _scope_is_used(_s: &Scope) {}
