//! The incremental compile session behind `mayad` and `mayac --watch`.
//!
//! Maya compilation is stateful by design — every syntax import composes a
//! new grammar, new LALR tables, and a new dispatch environment — which
//! makes cold starts expensive and warm state valuable. A [`Session`]
//! keeps that state alive across compile requests:
//!
//! * the **process-global interner** and the **thread-local LALR table
//!   memo** (`maya_grammar::cache`) survive because the session keeps its
//!   compiler on one thread;
//! * each source file's **token trees** are cached and reused when the
//!   file did not change;
//! * a **dependency graph** rebuilt from [`crate::compiler::DepEdge`]
//!   records, per `use` directive, which file imported a metaprogram
//!   declared in which other file, so an **invalidation pass** can
//!   recompile exactly the downstream cone of a change;
//! * when *nothing* changed, the previous outcome is returned verbatim
//!   and no compiler is even constructed.
//!
//! Change detection is two-level: a raw byte hash first, and for files
//! whose bytes changed, a token-stream hash that *includes spans*. A
//! formatting-neutral edit (for example retyping a comment with the same
//! length) therefore hashes equal and reuses everything — and because
//! spans participate in the hash, reuse can never alter diagnostics.
//!
//! Correctness bar: a warm [`Session::compile`] must be **byte-identical**
//! to a cold `mayac` run — stdout (expanded code and interpreter output),
//! stderr (human or JSON diagnostics), and exit status. The session
//! guarantees this by re-running every semantic phase on every request
//! (parse, dispatch, check, run are cheap next to the front end and the
//! table builds) and reusing only results that are pure functions of
//! unchanged inputs: token trees, LALR tables, interned strings, and — in
//! the nothing-changed case — the entire previous outcome.

use crate::compiler::lex_files;
use crate::fingerprint::{hash128, hash64, token_stream_hash};
use crate::diag::Diagnostics;
use crate::{CompileOptions, Compiler};
use maya_lexer::{FileId, LexError, SendTree, SourceMap, Span};
use maya_telemetry::{add as count_by, Counter};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::{Arc, OnceLock, RwLock};

/// How diagnostics are rendered into [`Outcome::stderr`].
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub enum ErrorFormat {
    /// Per-line text, each line prefixed `mayac: ` (the CLI default).
    #[default]
    Human,
    /// One `maya-diagnostics/1` JSON document.
    Json,
}

/// Per-request options (the per-invocation subset of the `mayac` command
/// line). Two requests with equal options and unchanged files are
/// answered from cache.
#[derive(Clone, PartialEq, Debug)]
pub struct RequestOpts {
    /// Metaprogram names imported for every unit (`-use NAME`).
    pub uses: Vec<String>,
    /// Class whose `main` is run (`--main`, default `Main`).
    pub main_class: String,
    /// Run `main` after a successful compile. `mayac` always does; a
    /// server client may want check-only requests.
    pub run: bool,
    /// Render every compiled method body after expansion (`--expand`).
    pub expand: bool,
    /// Disassemble compiled bytecode after the run (`--dump-bytecode`).
    /// `Some("")` dumps every method; `Some(name)` filters by method name
    /// or `Class.method`.
    pub dump_bytecode: Option<String>,
    /// Diagnostic rendering for [`Outcome::stderr`].
    pub error_format: ErrorFormat,
    /// Stop reporting after this many errors (`--max-errors`).
    pub max_errors: usize,
    /// Exit nonzero on any warning (`--deny-warnings`).
    pub deny_warnings: bool,
    /// Per-request Mayan expansion fuel quota. `None` uses the session's
    /// configured fuel; `Some(f)` caps this request at `min(f, session
    /// fuel)` — a client can only lower its own budget, never raise it
    /// past the server's. Participates in the full-reuse key (a request
    /// that ran out of fuel must not be answered from a cached success).
    pub fuel: Option<u64>,
}

impl Default for RequestOpts {
    fn default() -> RequestOpts {
        RequestOpts {
            uses: Vec::new(),
            main_class: "Main".to_owned(),
            run: true,
            expand: false,
            dump_bytecode: None,
            error_format: ErrorFormat::Human,
            max_errors: 20,
            deny_warnings: false,
            fuel: None,
        }
    }
}

/// The result of one compile request: exactly what a cold `mayac` run
/// would have produced, plus incremental accounting.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Process stdout: expanded bodies (`--expand`) then program output.
    pub stdout: String,
    /// Process stderr: rendered diagnostics (telemetry excluded).
    pub stderr: String,
    /// Whether `mayac` would have exited 0.
    pub success: bool,
    /// The request was answered entirely from the previous outcome.
    pub full_reuse: bool,
    /// Files whose token stream differed from the previous request.
    pub files_changed: usize,
    /// Files whose cached token trees were reused (front end skipped).
    pub files_reused: usize,
    /// Files whose front end re-ran (changed files plus their
    /// invalidation cone).
    pub files_recompiled: usize,
    /// Syntax imports answered by an already-seen grammar snapshot.
    pub grammar_reuses: usize,
}

/// Cumulative per-session counters (mirrored into telemetry as
/// `server_requests` / `incr_*`).
#[derive(Clone, Copy, Default, Debug)]
pub struct SessionStats {
    pub requests: u64,
    pub full_reuses: u64,
    pub files_changed: u64,
    pub files_reused: u64,
    pub files_recompiled: u64,
    pub grammar_reuses: u64,
}

/// One lexed file: the front-end result plus its (span-inclusive) token
/// stream hash, computed once and carried together so a share hit skips
/// both the lex *and* the hash.
struct LexEntry {
    token_hash: u128,
    result: Result<Vec<SendTree>, LexError>,
}

/// Per-file incremental state.
struct SessionFile {
    name: String,
    /// `false` when the last request could not read the file (the read
    /// error is part of the cached behavior).
    ok: bool,
    /// Hash of the raw bytes (or of the read-error message).
    raw_hash: u64,
    /// Hash of the token stream *including spans*; equal hashes make
    /// byte-different contents behaviorally identical.
    token_hash: u128,
    /// Cached front-end result for `ok` files. `Arc` (not `Rc`) so the
    /// same trees can sit in the process-global lex share below.
    lexed: Option<Arc<LexEntry>>,
}

// ---- the process-global lex share -------------------------------------------
//
// Lexing is a pure function of (file content, positional `FileId`): token
// trees embed spans whose `file` field is the registration index, and the
// file *name* never reaches the lexer. A compile-service worker pool can
// therefore share lexed trees across threads — client A's worker lexes
// `main.maya`, client B's worker reuses the trees — as long as the key
// carries both the 128-bit content hash and the `FileId` the spans were
// minted under. Opt-in per thread (like the grammar crate's shared table
// memo) so single-session paths and tests keep thread-local behavior.

/// Share entries kept before the map is cleared wholesale; bounds memory
/// under adversarial many-distinct-files traffic.
const LEX_SHARE_CAP: usize = 512;

thread_local! {
    static LEX_SHARE_ON: Cell<bool> = const { Cell::new(false) };
}

fn lex_share() -> &'static RwLock<HashMap<(u128, u32), Arc<LexEntry>>> {
    static SHARE: OnceLock<RwLock<HashMap<(u128, u32), Arc<LexEntry>>>> = OnceLock::new();
    SHARE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Opts this thread into (or out of) the process-global lexed-tree share.
/// Off by default; compile-service workers turn it on.
pub fn set_lex_share_enabled(on: bool) {
    LEX_SHARE_ON.with(|s| s.set(on));
}

/// Whether this thread participates in the global lex share.
pub fn lex_share_enabled() -> bool {
    LEX_SHARE_ON.with(|s| s.get())
}

/// Drops every entry in the global lex share (test isolation).
pub fn clear_lex_share() {
    lex_share().write().expect("lex share poisoned").clear();
}

/// An incremental compile session. See the module docs.
///
/// A session owns no threads and is deliberately single-threaded
/// (`Compiler` is `!Send`); `mayad` keeps one session on its main thread
/// and feeds it requests from a queue.
pub struct Session {
    /// Template for per-request [`CompileOptions`]; `uses` is replaced by
    /// the request's.
    base_options: CompileOptions,
    /// Registers native metaprograms on each fresh compiler (the binaries
    /// pass `macrolib::install` + `multijava::install`).
    installer: Option<Rc<dyn Fn(&Compiler)>>,
    files: Vec<SessionFile>,
    /// Reverse dependency edges from the last compile: metaprogram-
    /// declaring file name → names of files that imported from it.
    rdeps: BTreeMap<String, BTreeSet<String>>,
    /// Grammar content hashes produced by imports in earlier requests.
    seen_grammars: HashSet<u128>,
    /// The previous outcome, valid while nothing changes.
    cached: Option<(RequestOpts, Outcome)>,
    stats: SessionStats,
}

impl Session {
    /// Creates a session. `installer` runs once per fresh compiler, before
    /// any source is added.
    pub fn new(mut base_options: CompileOptions, installer: Option<Rc<dyn Fn(&Compiler)>>) -> Session {
        // Every compiler this session spawns shares one force cache, so
        // unchanged method bodies parse once per session, not once per
        // request.
        if base_options.force_cache.is_none() {
            base_options.force_cache = Some(Rc::new(crate::compiler::ForceCache::new()));
        }
        Session {
            base_options,
            installer,
            files: Vec::new(),
            rdeps: BTreeMap::new(),
            seen_grammars: HashSet::new(),
            cached: None,
            stats: SessionStats::default(),
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Drops all per-file state (cached token trees, dependency edges,
    /// seen grammars, the memoized outcome) while keeping the session's
    /// interner, force cache, and options. The next request behaves like
    /// the first one on a fresh session.
    ///
    /// Used after a request is abandoned mid-flight (e.g. a panic caught
    /// outside the compile sandbox may leave change-detection state half
    /// updated) and by differential harnesses that want a cold-equivalent
    /// request without paying for a new interner.
    pub fn reset(&mut self) {
        self.files.clear();
        self.rdeps.clear();
        self.seen_grammars.clear();
        self.cached = None;
    }

    /// Compiles `paths` (reading them from disk), reusing session state.
    ///
    /// A panic anywhere in the pipeline is converted into the same
    /// internal-compiler-error outcome `mayac` would print, and the
    /// outcome cache is dropped so the next request recomputes.
    pub fn compile(&mut self, paths: &[String], opts: &RequestOpts) -> Outcome {
        let inputs: Vec<(String, Result<String, String>)> = paths
            .iter()
            .map(|p| {
                (
                    p.clone(),
                    std::fs::read_to_string(p).map_err(|e| e.to_string()),
                )
            })
            .collect();
        self.compile_inputs(&inputs, opts)
    }

    /// [`Session::compile`] over in-memory sources (tests, fuzzing).
    pub fn compile_sources(&mut self, sources: &[(String, String)], opts: &RequestOpts) -> Outcome {
        let inputs: Vec<(String, Result<String, String>)> = sources
            .iter()
            .map(|(n, t)| (n.clone(), Ok(t.clone())))
            .collect();
        self.compile_inputs(&inputs, opts)
    }

    fn compile_inputs(
        &mut self,
        inputs: &[(String, Result<String, String>)],
        opts: &RequestOpts,
    ) -> Outcome {
        maya_telemetry::count(Counter::ServerRequests);
        self.stats.requests += 1;
        let n_files = inputs.len();
        let _request = maya_telemetry::span_with("request", || {
            vec![("files", n_files.to_string())]
        });
        let req_start = std::time::Instant::now();
        let outcome = self.compile_inputs_inner(inputs, opts);
        maya_telemetry::record_hist("request_ns", req_start.elapsed().as_nanos() as u64);
        outcome
    }

    fn compile_inputs_inner(
        &mut self,
        inputs: &[(String, Result<String, String>)],
        opts: &RequestOpts,
    ) -> Outcome {

        // ---- change detection ------------------------------------------------
        // The file *structure* (names, order, readability) is part of the
        // session identity: when it shifts, FileIds shift, so every cached
        // span would lie. Drop everything and start cold.
        let structure_same = self.files.len() == inputs.len()
            && self
                .files
                .iter()
                .zip(inputs)
                .all(|(f, (name, text))| f.name == *name && f.ok == text.is_ok());
        if !structure_same {
            self.files.clear();
            self.rdeps.clear();
            self.cached = None;
        }

        // Raw-byte pass: which files even need re-lexing?
        let mut relex: Vec<usize> = Vec::new();
        if self.files.is_empty() {
            for (name, text) in inputs {
                let (raw, ok) = match text {
                    Ok(t) => (hash64(t.as_bytes()), true),
                    Err(e) => (hash64(e.as_bytes()), false),
                };
                self.files.push(SessionFile {
                    name: name.clone(),
                    ok,
                    raw_hash: raw,
                    token_hash: 0,
                    lexed: None,
                });
            }
            relex = (0..inputs.len()).filter(|&i| self.files[i].ok).collect();
        } else {
            for (i, (_, text)) in inputs.iter().enumerate() {
                let raw = match text {
                    Ok(t) => hash64(t.as_bytes()),
                    Err(e) => hash64(e.as_bytes()),
                };
                if self.files[i].raw_hash != raw {
                    self.files[i].raw_hash = raw;
                    if self.files[i].ok {
                        relex.push(i);
                    } else {
                        // A read error with a different message is a
                        // behavioral change (the diagnostic text differs).
                        self.files[i].token_hash = hash64(b"read-error") as u128;
                        self.cached = None;
                    }
                }
            }
        }

        // Token pass: lex byte-changed files into a scratch map laid out
        // exactly like the compiler's (same registration order → same
        // FileIds → identical spans), then compare token-stream hashes.
        let mut changed: BTreeSet<String> = BTreeSet::new();
        if !relex.is_empty() {
            let mut scratch = SourceMap::new();
            let mut ids: BTreeMap<usize, FileId> = BTreeMap::new();
            let mut ok_index = 0usize;
            for (i, (name, text)) in inputs.iter().enumerate() {
                if let Ok(t) = text {
                    let id = scratch.add_file(name, t);
                    debug_assert_eq!(id.0 as usize, ok_index);
                    ok_index += 1;
                    if relex.contains(&i) {
                        ids.insert(i, id);
                    }
                }
            }
            // Global share probe first: another pool worker may have
            // already lexed identical content under the same FileId.
            // Behind it, the persistent store (when installed) answers
            // with trees lexed by an earlier *process*.
            let share_on = lex_share_enabled();
            let disk = crate::store::active();
            let mut entries: BTreeMap<usize, Arc<LexEntry>> = BTreeMap::new();
            let mut need: Vec<FileId> = Vec::new();
            let mut need_at: Vec<(usize, u128)> = Vec::new();
            for (&i, &id) in &ids {
                let content = match &inputs[i].1 {
                    Ok(t) => hash128(t.as_bytes()),
                    Err(_) => unreachable!("only ok files are relexed"),
                };
                if share_on {
                    let hit = lex_share()
                        .read()
                        .expect("lex share poisoned")
                        .get(&(content, id.0))
                        .cloned();
                    if let Some(e) = hit {
                        maya_telemetry::cache_hit(maya_telemetry::CacheId::LexShare);
                        entries.insert(i, e);
                        continue;
                    }
                    maya_telemetry::cache_miss(maya_telemetry::CacheId::LexShare);
                }
                if let Some(store) = &disk {
                    let hydrated = store
                        .load(crate::store::Kind::Lex, crate::store::lex_key(content, id.0))
                        .and_then(|p| crate::store::decode_lex(&p));
                    if let Some(result) = hydrated {
                        entries.insert(
                            i,
                            Arc::new(LexEntry {
                                token_hash: token_stream_hash(&result),
                                result,
                            }),
                        );
                        continue;
                    }
                }
                need.push(id);
                need_at.push((i, content));
            }
            let results = lex_files(&scratch, &need, self.base_options.jobs);
            for ((&(i, content), id), result) in need_at.iter().zip(&need).zip(results) {
                let e = Arc::new(LexEntry {
                    token_hash: token_stream_hash(&result),
                    result,
                });
                if let Some(store) = &disk {
                    if let Some(payload) = crate::store::encode_lex(&e.result) {
                        store.save(
                            crate::store::Kind::Lex,
                            crate::store::lex_key(content, id.0),
                            &payload,
                        );
                    }
                }
                if share_on {
                    let mut share = lex_share().write().expect("lex share poisoned");
                    if share.len() >= LEX_SHARE_CAP {
                        maya_telemetry::cache_eviction(maya_telemetry::CacheId::LexShare);
                        share.clear();
                    }
                    share.insert((content, id.0), e.clone());
                    maya_telemetry::cache_sized(maya_telemetry::CacheId::LexShare, share.len());
                }
                entries.insert(i, e);
            }
            for (i, e) in entries {
                let f = &mut self.files[i];
                if f.token_hash != e.token_hash || f.lexed.is_none() {
                    f.token_hash = e.token_hash;
                    f.lexed = Some(e);
                    changed.insert(f.name.clone());
                }
                // Token-identical content (e.g. a retyped same-length
                // comment): keep the cached trees — spans are part of the
                // hash, so they are interchangeable.
            }
        }

        count_by(Counter::IncrFilesChanged, changed.len() as u64);
        self.stats.files_changed += changed.len() as u64;

        // ---- full reuse ------------------------------------------------------
        if changed.is_empty() {
            if let Some((cached_opts, outcome)) = &self.cached {
                if cached_opts == opts {
                    maya_telemetry::count(Counter::IncrFullReuses);
                    self.stats.full_reuses += 1;
                    let mut out = outcome.clone();
                    out.full_reuse = true;
                    out.files_changed = 0;
                    out.files_reused = self.files.len();
                    out.files_recompiled = 0;
                    out.grammar_reuses = 0;
                    return out;
                }
            }
        }

        // ---- invalidation ----------------------------------------------------
        // The cone of a change: the changed files themselves plus, via the
        // reverse import edges of the last compile, every file that
        // imported a metaprogram declared in one — transitively, because
        // an importer may itself declare metaprograms for others.
        let mut cone: BTreeSet<String> = changed.clone();
        let mut frontier: Vec<String> = cone.iter().cloned().collect();
        while let Some(name) = frontier.pop() {
            if let Some(importers) = self.rdeps.get(&name) {
                for imp in importers {
                    if cone.insert(imp.clone()) {
                        frontier.push(imp.clone());
                    }
                }
            }
        }

        // ---- persistent outcome ----------------------------------------------
        // With a store installed, a whole request can be answered by an
        // earlier *process*: the key folds every file's span-inclusive
        // token hash and every output-affecting option, so a hit replays
        // stdout/stderr/exit byte-identically. Gated off under armed
        // faults (perturbed runs must not be replayed) and under
        // `--dump-bytecode` (its output narrates runtime cache state).
        let outcome_store = crate::store::active()
            .filter(|_| opts.dump_bytecode.is_none() && !crate::faults::any_armed())
            .map(|s| (s, self.outcome_key(opts)));
        if let Some((store, key)) = &outcome_store {
            let hydrated = store
                .load(crate::store::Kind::Outcome, *key)
                .and_then(|p| crate::store::decode_outcome_payload(&p));
            if let Some((stdout, stderr, success)) = hydrated {
                // The same reuse accounting the compile path would report.
                let mut reused = 0usize;
                let mut recompiled = 0usize;
                for (i, (name, text)) in inputs.iter().enumerate() {
                    if text.is_ok() {
                        if cone.contains(name) || self.files[i].lexed.is_none() {
                            recompiled += 1;
                        } else {
                            reused += 1;
                        }
                    }
                }
                count_by(Counter::IncrFilesReused, reused as u64);
                count_by(Counter::IncrFilesRecompiled, recompiled as u64);
                self.stats.files_reused += reused as u64;
                self.stats.files_recompiled += recompiled as u64;
                // The hydrated answer skipped the compile, so the
                // dependency graph this session would use for the *next*
                // invalidation pass was not rebuilt. Reset per-file state:
                // the next request starts cold (and likely hits the store
                // again) instead of under-invalidating.
                self.files.clear();
                self.rdeps.clear();
                self.seen_grammars.clear();
                self.cached = None;
                return Outcome {
                    stdout,
                    stderr,
                    success,
                    full_reuse: false,
                    files_changed: changed.len(),
                    files_reused: reused,
                    files_recompiled: recompiled,
                    grammar_reuses: 0,
                };
            }
        }

        // ---- compile ---------------------------------------------------------
        // A fresh compiler per request: class tables and interpreter state
        // hold `Rc` closures into their compiler and cannot migrate. The
        // expensive state (interner, LALR table memo, base environment,
        // token trees) all lives outside the compiler and carries over.
        let compiler = Compiler::with_options(CompileOptions {
            uses: opts.uses.clone(),
            expand_fuel: opts
                .fuel
                .map_or(self.base_options.expand_fuel, |f| {
                    f.min(self.base_options.expand_fuel)
                }),
            ..self.base_options.clone()
        });
        if let Some(install) = &self.installer {
            install(&compiler);
        }
        let diags = Diagnostics::with_limits(opts.max_errors, opts.deny_warnings);

        let mut sources: Vec<(String, String)> = Vec::new();
        let mut prelexed: Vec<Option<Result<Vec<SendTree>, LexError>>> = Vec::new();
        let mut reused = 0usize;
        let mut recompiled = 0usize;
        for (i, (name, text)) in inputs.iter().enumerate() {
            match text {
                Ok(t) => {
                    sources.push((name.clone(), t.clone()));
                    let f = &self.files[i];
                    if cone.contains(name) {
                        recompiled += 1;
                        // Changed files were already lexed this request
                        // (the scratch pass); unchanged cone members are
                        // re-lexed by the compiler, a genuinely cold front
                        // end for the whole cone.
                        if changed.contains(name) {
                            prelexed.push(f.lexed.as_ref().map(|e| e.result.clone()));
                        } else {
                            prelexed.push(None);
                        }
                    } else if let Some(lexed) = &f.lexed {
                        reused += 1;
                        prelexed.push(Some(lexed.result.clone()));
                    } else {
                        // No cached trees (first sighting): cold path.
                        recompiled += 1;
                        prelexed.push(None);
                    }
                }
                Err(e) => diags.error(format!("cannot read {name}: {e}"), Span::DUMMY),
            }
        }
        count_by(Counter::IncrFilesReused, reused as u64);
        count_by(Counter::IncrFilesRecompiled, recompiled as u64);
        self.stats.files_reused += reused as u64;
        self.stats.files_recompiled += recompiled as u64;

        // The same last-resort safety net as `mayac`: a panic becomes an
        // ICE diagnostic, never an abort (and never a poisoned session —
        // the outcome cache is simply not populated).
        let piped = crate::sandbox::catch(|| {
            compiler.add_sources_prelexed_diags(&sources, prelexed, &diags);
            if diags.at_cap() {
                return (String::new(), None, String::new());
            }
            compiler.compile_diags(&diags);
            let mut expand_text = String::new();
            if opts.expand && !diags.should_fail() {
                expand_text = render_expansions(&compiler);
            }
            if diags.should_fail() || !opts.run {
                return (expand_text, None, String::new());
            }
            let out = compiler.run_main_diags(&opts.main_class, &diags);
            // Disassembled after the run: by then every reachable body is
            // forced and the inline caches carry their observed shapes.
            let bc_text = match (&opts.dump_bytecode, diags.should_fail()) {
                (Some(filter), false) => render_bytecode(&compiler, filter),
                _ => String::new(),
            };
            (expand_text, out, bc_text)
        });
        let (expand_text, program_out, bc_text, ice) = match piped {
            Ok((e, o, b)) => (e, o, b, false),
            Err(panic_msg) => {
                diags.error(format!("internal: {panic_msg}"), Span::DUMMY);
                (String::new(), None, String::new(), true)
            }
        };

        // ---- dependency graph + grammar accounting ---------------------------
        let mut grammar_reuses = 0usize;
        if !ice {
            let ok_file_names: Vec<&str> = sources.iter().map(|(n, _)| n.as_str()).collect();
            let name_of = |id: FileId| ok_file_names.get(id.0 as usize).map(|s| (*s).to_owned());
            self.rdeps.clear();
            for edge in compiler.dep_log() {
                if self.seen_grammars.contains(&edge.grammar_hash) {
                    grammar_reuses += 1;
                }
                self.seen_grammars.insert(edge.grammar_hash);
                if let (Some(importer), Some(origin)) =
                    (name_of(edge.importer), edge.origin.and_then(name_of))
                {
                    if importer != origin {
                        self.rdeps.entry(origin).or_default().insert(importer);
                    }
                }
            }
        }
        count_by(Counter::IncrGrammarReuses, grammar_reuses as u64);
        self.stats.grammar_reuses += grammar_reuses as u64;

        // ---- render (byte-identical to mayac) --------------------------------
        let mut stderr = String::new();
        if !diags.is_empty() || diags.should_fail() {
            let sm = compiler.inner().sm.borrow();
            match opts.error_format {
                ErrorFormat::Human => {
                    for line in diags.render_human(&sm).lines() {
                        stderr.push_str("mayac: ");
                        stderr.push_str(line);
                        stderr.push('\n');
                    }
                }
                ErrorFormat::Json => stderr.push_str(&diags.render_json(&sm)),
            }
        }
        let success = !diags.should_fail();
        let mut stdout = expand_text;
        if success {
            if let Some(out) = program_out {
                stdout.push_str(&out);
            }
            stdout.push_str(&bc_text);
        }
        let outcome = Outcome {
            stdout,
            stderr,
            success,
            full_reuse: false,
            files_changed: changed.len(),
            files_reused: reused,
            files_recompiled: recompiled,
            grammar_reuses,
        };
        if ice {
            self.cached = None;
        } else {
            self.cached = Some((opts.clone(), outcome.clone()));
            if let Some((store, key)) = &outcome_store {
                if let Some(payload) = crate::store::encode_outcome_payload(
                    &outcome.stdout,
                    &outcome.stderr,
                    outcome.success,
                ) {
                    store.save(crate::store::Kind::Outcome, *key, &payload);
                }
            }
        }
        outcome
    }

    /// The source-closure key for a persistent outcome artifact: every
    /// file's identity and span-inclusive token-stream hash (imports are
    /// folded in because the importing *and* the declaring file are both
    /// in the closure) plus every option that can change
    /// stdout/stderr/exit status.
    fn outcome_key(&self, opts: &RequestOpts) -> u128 {
        let mut h = crate::store::outcome_key_hasher();
        h.u32(self.files.len() as u32);
        for f in &self.files {
            h.str(&f.name);
            h.byte(u8::from(f.ok));
            h.bytes(&f.raw_hash.to_le_bytes());
            h.bytes(&f.token_hash.to_le_bytes());
        }
        h.u32(opts.uses.len() as u32);
        for u in &opts.uses {
            h.str(u);
        }
        h.str(&opts.main_class);
        h.byte(u8::from(opts.run));
        h.byte(u8::from(opts.expand));
        match &opts.dump_bytecode {
            None => h.byte(0),
            Some(f) => {
                h.byte(1);
                h.str(f);
            }
        }
        h.byte(match opts.error_format {
            ErrorFormat::Human => 0,
            ErrorFormat::Json => 1,
        });
        h.u32(opts.max_errors as u32);
        h.byte(u8::from(opts.deny_warnings));
        // Limits outside `RequestOpts` that alter observable output when
        // a program runs into them.
        let fuel = opts
            .fuel
            .map_or(self.base_options.expand_fuel, |f| {
                f.min(self.base_options.expand_fuel)
            });
        h.bytes(&fuel.to_le_bytes());
        h.bytes(&self.base_options.interp_step_limit.to_le_bytes());
        h.u32(self.base_options.max_expand_depth);
        h.u32(self.base_options.interp_stack_limit);
        h.finish()
    }
}

/// `mayac --expand` as a string: every compiled method body of every
/// user class, pretty-printed after Mayan expansion.
/// Renders `mayac --dump-bytecode[=FILTER]`: one disassembly block per
/// forced, bytecode-compilable method (same class walk and library-package
/// skip as `--expand`).  An empty filter passes everything; otherwise the
/// method name or `Class.method` must match.
fn render_bytecode(compiler: &Compiler, filter: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let interp = compiler.interp();
    let classes = compiler.classes();
    for idx in 0..classes.len() {
        let id = maya_types::ClassId(idx as u32);
        let info = classes.info(id);
        let info = info.borrow();
        if info.fqcn.as_str().starts_with("java.") || info.fqcn.as_str().starts_with("maya.") {
            continue;
        }
        for m in &info.methods {
            let label = format!("{}.{}", info.fqcn, m.name);
            if !filter.is_empty() && m.name.as_str() != filter && label != filter {
                continue;
            }
            let Some(body) = &m.body else { continue };
            if m.native.is_some() || !body.is_forced() {
                continue;
            }
            if let Some(text) = interp.bytecode_listing(body, &m.param_names) {
                let _ = writeln!(out, "--- bytecode {label} ---");
                let _ = write!(out, "{text}");
                if !text.ends_with('\n') {
                    out.push('\n');
                }
            }
        }
    }
    out
}

fn render_expansions(compiler: &Compiler) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let classes = compiler.classes();
    for idx in 0..classes.len() {
        let id = maya_types::ClassId(idx as u32);
        let info = classes.info(id);
        let info = info.borrow();
        if info.fqcn.as_str().starts_with("java.") || info.fqcn.as_str().starts_with("maya.") {
            continue;
        }
        for m in &info.methods {
            if let Some(body) = &m.body {
                if let Some(node) = body.forced_node() {
                    let _ = writeln!(out, "--- {}.{} ---", info.fqcn, m.name);
                    let _ = writeln!(
                        out,
                        "{}",
                        maya_ast::normalize_generated_names(&maya_ast::pretty_node(&node))
                    );
                }
            }
        }
    }
    out
}
