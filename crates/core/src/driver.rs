//! The compile driver: the parser [`Driver`] that dispatches Mayans, the
//! lazy-forcing machinery, the [`ExpandCtx`] given to Mayan bodies, and the
//! template instantiation host.

use crate::compiler::CompilerInner;
use crate::CompileError;
use maya_ast::{
    ClassDecl, CtorDecl, Decl, Expr, ExprKind, InterfaceDecl, LazyCell, LazyNode, MethodDecl,
    Node, NodeKind, TypeName, TypeNameKind,
};
use maya_dispatch::{
    order_applicable, Bindings, DispatchEnv, DispatchError, ExpandCtx, Mayan,
};
use maya_grammar::{Action, BuiltinAction, Grammar, NtId, ProdId, Sym};
use maya_interp::Interp;
use maya_lexer::{DelimTree, Span, Symbol, TokenTree};
use maya_parser::{run_parse, Driver, DriverOut, Input, ParseError};
use maya_template::{InstHost, Template, TemplateThunk};
use maya_types::{CheckHost, Checker, ClassId, ClassTable, ResolveCtx, Scope, Type, TypeError};
use std::cell::RefCell;
use std::rc::Rc;

/// A grammar snapshot paired with its dispatch environment — the unit of
/// lexical scoping for syntax imports.
#[derive(Clone)]
pub struct EnvPair {
    pub grammar: Grammar,
    pub denv: DispatchEnv,
}

/// The payload captured into a lazy node: the environment it must be parsed
/// under (paper §4: "syntax that follows an imported Mayan must be parsed
/// lazily, after the Mayan defines any new productions").
pub struct LazyEnvPayload {
    pub pair: EnvPair,
    pub ctx: ResolveCtx,
    pub class: Option<ClassId>,
}

/// Reinterprets an expression as a type name (the `Vector[] v;` statement
/// trick: declaration statements parse their leading type as an expression).
///
/// # Errors
///
/// Fails when the expression is not name-shaped.
pub fn expr_as_type(e: &Expr) -> Result<TypeName, DispatchError> {
    fn collect(e: &Expr, out: &mut Vec<maya_ast::Ident>) -> bool {
        match &e.kind {
            ExprKind::Name(i) => {
                out.push(*i);
                true
            }
            ExprKind::FieldAccess(t, i) => {
                if !collect(t, out) {
                    return false;
                }
                out.push(*i);
                true
            }
            _ => false,
        }
    }
    match &e.kind {
        ExprKind::ClassRef(fqcn) => Ok(TypeName::new(e.span, TypeNameKind::Strict(*fqcn))),
        ExprKind::TypeDims(inner) => Ok(expr_as_type(inner)?.array_of()),
        _ => {
            let mut parts = Vec::new();
            if collect(e, &mut parts) {
                Ok(TypeName::new(e.span, TypeNameKind::Named(parts)))
            } else {
                Err(DispatchError::new(
                    "expected a type before the declared variable",
                    e.span,
                ))
            }
        }
    }
}

/// Renders a semantic type back to strict type-name syntax (immune to
/// shadowing at the splice site).
///
/// # Errors
///
/// Fails for types that cannot be named in source (`null`, `void`).
pub fn type_to_strict(
    ct: &maya_types::ClassTable,
    ty: &maya_types::Type,
) -> Result<TypeName, DispatchError> {
    use maya_types::Type as T;
    match ty {
        T::Prim(p) => Ok(TypeName::prim(*p)),
        T::Class(c) => Ok(TypeName::strict(ct.fqcn(*c))),
        T::Array(el) => Ok(type_to_strict(ct, el)?.array_of()),
        other => Err(DispatchError::new(
            format!("cannot name type {} in generated code", ct.describe(other)),
            Span::DUMMY,
        )),
    }
}

/// Renders a production for diagnostics (`Statement → MethodName … lazy-block`).
pub fn describe_prod(grammar: &Grammar, prod: ProdId) -> String {
    let p = grammar.production(prod);
    let mut out = format!("{} →", grammar.nt_def(p.lhs).name);
    for s in &p.rhs {
        out.push(' ');
        match s {
            Sym::T(t) => out.push_str(&t.to_string()),
            Sym::N(nt) => out.push_str(grammar.nt_def(*nt).name.as_str()),
        }
    }
    out
}

/// Shared context of one parse/expand activity.
#[derive(Clone)]
pub struct Cx {
    pub cx: Rc<CompilerInner>,
    pub pair: EnvPair,
    pub ctx: ResolveCtx,
    pub class: Option<ClassId>,
    pub scope: Rc<RefCell<Scope>>,
}

impl Cx {
    fn payload(&self) -> Rc<LazyEnvPayload> {
        Rc::new(LazyEnvPayload {
            pair: self.pair.clone(),
            ctx: self.ctx.clone(),
            class: self.class,
        })
    }

    /// Parses token trees with the given goal nonterminal under this
    /// context.
    pub fn parse_trees(&self, trees: &[TokenTree], goal: NtId) -> Result<Node, ParseError> {
        let input: Vec<Input<Node>> = Input::from_token_trees(trees);
        self.parse_input(&input, goal)
    }

    /// Parses prepared engine input — tokens, trees, or pre-built
    /// nonterminal leaves (error recovery splices poison nodes this way).
    pub fn parse_input(&self, input: &[Input<Node>], goal: NtId) -> Result<Node, ParseError> {
        if let Err(m) = crate::faults::trip("parse") {
            return Err(ParseError::new(m, Span::DUMMY));
        }
        let mut driver = CoreDriver { c: self.clone() };
        run_parse(&self.pair.grammar, input, goal, &mut driver)
    }

    /// Parses a delimiter tree's contents to a node kind.
    pub fn parse_tree_kind(&self, tree: &DelimTree, kind: NodeKind) -> Result<Node, DispatchError> {
        let goal = self.pair.grammar.nt_for_kind_lattice(kind).ok_or_else(|| {
            DispatchError::new(
                format!("no grammar nonterminal for {}", kind.name()),
                tree.span(),
            )
        })?;
        self.parse_trees(&tree.trees, goal)
            .map_err(|e| DispatchError::new(e.message, e.span))
    }

    /// Resolves the static type of an expression under this context's scope.
    pub fn static_type(&self, e: &Expr) -> Result<Type, TypeError> {
        let mut scope = self.scope.borrow_mut();
        let mut host = ForceHost { c: self.clone() };
        let ct = self.cx.classes.clone();
        let mut checker = Checker::new(&ct, &self.ctx, &mut host);
        checker.type_of_expr(e, &mut scope)
    }

    /// The semantic action of `prod` on `args` — builtins inline, node-type
    /// productions through full Mayan dispatch.
    ///
    /// # Errors
    ///
    /// Propagates dispatch failures ("no applicable Mayan", ambiguity,
    /// Mayan body errors).
    pub fn reduce(&self, prod: ProdId, args: Vec<Node>, span: Span) -> Result<Node, DispatchError> {
        // Expansion fuel: every materialized node costs one unit, so a
        // Mayan that expands to ever-growing syntax terminates with a
        // diagnostic instead of consuming all memory.
        let fuel = self.cx.expand_fuel.get();
        if fuel == 0 {
            maya_telemetry::count(maya_telemetry::Counter::FuelLimitHits);
            return Err(DispatchError::new(
                format!(
                    "expansion fuel exhausted ({} nodes materialized); \
                     a syntax extension may be expanding without bound",
                    self.cx.options.expand_fuel
                ),
                span,
            ));
        }
        self.cx.expand_fuel.set(fuel - 1);
        let action = self.pair.grammar.production(prod).action;
        match action {
            Action::Builtin(b) => self.apply_builtin(b, args, span),
            Action::Dispatch => {
                let this = self.clone();
                let mut type_of = move |e: &Expr| this.static_type(e).ok();
                // The description is rendered lazily: only diagnostics and
                // expansion traces pay for it, never the hot path.
                let grammar = self.pair.grammar.clone();
                let chain = order_applicable(
                    &self.pair.denv,
                    &self.cx.classes,
                    prod,
                    || describe_prod(&grammar, prod),
                    &args,
                    &mut type_of,
                    span,
                )?;
                self.run_chain(Rc::new(chain), 0, span)
            }
        }
    }

    pub(crate) fn run_chain(
        &self,
        chain: Rc<Vec<(Rc<Mayan>, Bindings)>>,
        idx: usize,
        span: Span,
    ) -> Result<Node, DispatchError> {
        let (mayan, bindings) = chain[idx].clone();
        let name = mayan.name;
        maya_telemetry::count(maya_telemetry::Counter::MayansFired);
        match crate::faults::check("dispatch") {
            Some(crate::faults::FaultAction::Panic) => panic!("injected fault at dispatch"),
            Some(crate::faults::FaultAction::Error) => {
                return Err(DispatchError::new("internal: injected fault at dispatch", span))
            }
            // `loop` models a runaway expansion: burn the remaining fuel so
            // the fuel guard must trip on the next materialized node.
            Some(crate::faults::FaultAction::Loop) => self.cx.expand_fuel.set(0),
            None => {}
        }
        // Depth guard: a Mayan whose expansion re-dispatches itself (via
        // templates or re-parsing) recurses through here; cut it off with a
        // diagnostic naming the Mayan instead of blowing the stack.
        let limit = self.cx.options.max_expand_depth;
        let depth = self.cx.expand_depth.get() + 1;
        if depth > limit {
            maya_telemetry::count(maya_telemetry::Counter::DepthLimitHits);
            return Err(DispatchError::new(
                format!(
                    "expansion depth limit ({limit}) exceeded while expanding Mayan {name}; \
                     is it expanding to syntax it matches itself?"
                ),
                span,
            ));
        }
        self.cx.expand_depth.set(depth);
        let mut expand = CoreExpand {
            c: self.clone(),
            chain,
            idx,
            span,
        };
        // Sandbox: a metaprogram bug (panic) becomes a located diagnostic
        // naming the Mayan, never a compiler abort.
        let result = crate::sandbox::catch(move || (mayan.body)(&bindings, &mut expand));
        self.cx.expand_depth.set(self.cx.expand_depth.get() - 1);
        match result {
            Ok(r) => r,
            Err(panic_msg) => {
                maya_telemetry::count(maya_telemetry::Counter::MayanPanics);
                Err(DispatchError::new(
                    format!("internal: Mayan {name} panicked during expansion: {panic_msg}"),
                    span,
                ))
            }
        }
    }

    fn apply_builtin(
        &self,
        b: BuiltinAction,
        mut args: Vec<Node>,
        span: Span,
    ) -> Result<Node, DispatchError> {
        match b {
            BuiltinAction::PassThrough(i) => Ok(args.swap_remove(i)),
            BuiltinAction::EmptyList => Ok(Node::List(vec![])),
            BuiltinAction::ListSingle => Ok(Node::List(args)),
            BuiltinAction::ListAppend { .. } => {
                let item = args.pop().ok_or_else(|| {
                    DispatchError::new("internal: list append without item", span)
                })?;
                let mut list = match args.into_iter().next() {
                    Some(Node::List(l)) => l,
                    _ => return Err(DispatchError::new("internal: list append target", span)),
                };
                list.push(item);
                Ok(Node::List(list))
            }
            BuiltinAction::StartAccept => Ok(args.swap_remove(1)),
            BuiltinAction::Bundle => Ok(Node::List(args)),
            BuiltinAction::ParseSubtree { goal } => {
                let tree = tree_arg(&args, span)?;
                self.parse_trees(&tree.trees, goal)
                    .map_err(|e| DispatchError::new(e.message, e.span))
            }
            BuiltinAction::LazySubtree { kind, .. } => {
                let tree = tree_arg(&args, span)?;
                self.cx.lazy_created.set(self.cx.lazy_created.get() + 1);
                Ok(Node::Lazy(LazyNode::new(kind, tree, Some(self.payload()))))
            }
        }
    }

    /// Creates a lazy node capturing this context's environment.
    pub fn make_lazy(&self, tree: DelimTree, kind: NodeKind) -> Node {
        self.cx.lazy_created.set(self.cx.lazy_created.get() + 1);
        Node::Lazy(LazyNode::new(kind, tree, Some(self.payload())))
    }

    /// Instantiates a compiled template under this context.
    ///
    /// # Errors
    ///
    /// Propagates dispatch failures from replayed reductions.
    pub fn instantiate(&self, t: &Template, values: Vec<Node>) -> Result<Node, DispatchError> {
        if let Err(m) = crate::faults::trip("template") {
            return Err(DispatchError::new(m, Span::DUMMY));
        }
        let mut host = CoreInstHost { c: self.clone() };
        let result = crate::sandbox::catch(move || t.instantiate(values, &mut host));
        match result {
            Ok(r) => r,
            Err(panic_msg) => {
                maya_telemetry::count(maya_telemetry::Counter::MayanPanics);
                Err(DispatchError::new(
                    format!("internal: template instantiation panicked: {panic_msg}"),
                    Span::DUMMY,
                ))
            }
        }
    }
}

fn tree_arg(args: &[Node], span: Span) -> Result<DelimTree, DispatchError> {
    match args.last() {
        Some(Node::Tree(TokenTree::Delim(d))) => Ok(d.clone()),
        _ => Err(DispatchError::new(
            "internal: expected a delimiter tree argument",
            span,
        )),
    }
}

// ---- the parser driver --------------------------------------------------------

/// The semantic parser driver: builds AST nodes, dispatches Mayans, handles
/// `use` imports with mid-stream environment switching.
pub struct CoreDriver {
    pub c: Cx,
}

impl Driver for CoreDriver {
    type V = Node;

    fn marker(&mut self) -> Node {
        Node::Unit
    }

    fn shift_token(&mut self, tok: &maya_lexer::Token) -> Node {
        Node::Token(*tok)
    }

    fn shift_tree(
        &mut self,
        tree: &DelimTree,
        _pattern: Option<&Rc<Vec<Input<Node>>>>,
    ) -> Node {
        Node::Tree(TokenTree::Delim(tree.clone()))
    }

    fn reduce(
        &mut self,
        _grammar: &Grammar,
        prod: ProdId,
        _action: Action,
        args: Vec<(Node, Span)>,
        span: Span,
    ) -> Result<DriverOut<Node>, ParseError> {
        let args: Vec<Node> = args.into_iter().map(|(v, _)| v).collect();
        // `use Name;` — run the metaprogram now, switch the environment for
        // the rest of the input (the ParseRest protocol).
        if prod == self.c.cx.base.prods.id("use_head") {
            let path = match &args[1] {
                Node::Name(parts) => parts.clone(),
                other => {
                    return Err(ParseError::new(
                        format!("internal: use target {:?}", other.node_kind()),
                        span,
                    ))
                }
            };
            let new_pair = self
                .c
                .cx
                .import_named(&self.c.pair, &self.c.ctx, &path, span)
                .map_err(|e| ParseError::new(e.message, e.span))?;
            // Dependency tracking: every `use` with a real source span is
            // an edge from the importing file to the metaprogram's
            // declaring file, tagged with the grammar/dispatch identity it
            // produced (the incremental session's invalidation input).
            if !span.is_dummy() {
                let dotted = {
                    let parts: Vec<&str> = path.iter().map(|i| i.as_str()).collect();
                    parts.join(".")
                };
                let origin = self.c.cx.metaprogram_origin(&dotted);
                self.c.cx.dep_log.borrow_mut().push(crate::compiler::DepEdge {
                    importer: span.file,
                    name: dotted,
                    origin,
                    grammar_hash: new_pair.grammar.content_hash(),
                    denv_version: new_pair.denv.version(),
                });
            }
            self.c.pair = new_pair;
            let goals: Vec<NtId> = vec![
                self.c.cx.base.use_tail_stmts,
                self.c.cx.base.use_tail_decls,
            ];
            return Ok(DriverOut::ParseRest {
                head: Node::Name(path),
                goals,
            });
        }
        let node = self
            .c
            .reduce(prod, args, span)
            .map_err(|e| ParseError::new(e.message, e.span))?;
        Ok(DriverOut::Value(node))
    }

    fn parse_rest(
        &mut self,
        _grammar: &Grammar,
        rest: &[Input<Node>],
        goal: NtId,
    ) -> Result<Node, ParseError> {
        // The marker nonterminal names the context; the tail content parses
        // as statements or declarations under the extended environment.
        let kind = if goal == self.c.cx.base.use_tail_decls {
            NodeKind::ClassBody
        } else {
            NodeKind::BlockStmts
        };
        let real_goal = self
            .c
            .pair
            .grammar
            .nt_for_kind(kind)
            .expect("base nonterminal");
        let mut driver = CoreDriver { c: self.c.clone() };
        run_parse(&self.c.pair.grammar, rest, real_goal, &mut driver)
    }
}

// ---- forcing -----------------------------------------------------------------

/// Forces a lazy node under a shared scope cell.
///
/// # Errors
///
/// Reports cycles and parse/dispatch errors from the forced syntax.
pub fn force_lazy(
    cx: &Rc<CompilerInner>,
    lazy: &LazyNode,
    scope: Rc<RefCell<Scope>>,
) -> Result<(), CompileError> {
    if lazy.is_forced() {
        return Ok(());
    }
    let Some((tree, env)) = lazy.begin_force() else {
        return Err(CompileError::new(
            "cyclic laziness: node is already being forced",
            Span::DUMMY,
        ));
    };
    let _p = maya_telemetry::phase(maya_telemetry::Phase::Force);
    maya_telemetry::trace(maya_telemetry::TraceKind::Force, || {
        (
            lazy.goal.name().to_owned(),
            format!("forcing deferred {}", tree.delim.tree_name()),
        )
    });
    let result = force_payload(cx, lazy.goal, &tree, env.clone(), scope);
    match result {
        Ok(node) => {
            lazy.fulfill(node);
            Ok(())
        }
        Err(e) => {
            lazy.abandon(tree, env);
            Err(e)
        }
    }
}

fn force_payload(
    cx: &Rc<CompilerInner>,
    goal_kind: NodeKind,
    tree: &DelimTree,
    env: Option<Rc<dyn std::any::Any>>,
    scope: Rc<RefCell<Scope>>,
) -> Result<Node, CompileError> {
    // Template thunk: replay the compiled sub-recipe.
    if let Some(payload) = env.as_ref() {
        if let Some(thunk) = payload.downcast_ref::<TemplateThunk>() {
            let inner = thunk
                .env
                .as_ref()
                .and_then(|e| e.downcast_ref::<LazyEnvPayload>());
            let c = match inner {
                Some(p) => Cx {
                    cx: cx.clone(),
                    pair: p.pair.clone(),
                    ctx: p.ctx.clone(),
                    class: p.class,
                    scope,
                },
                None => Cx {
                    cx: cx.clone(),
                    pair: cx.global.borrow().clone(),
                    ctx: ResolveCtx::default(),
                    class: None,
                    scope,
                },
            };
            let mut host = CoreInstHost { c };
            return thunk.replay(&mut host).map_err(CompileError::from);
        }
        if let Some(p) = payload.downcast_ref::<LazyEnvPayload>() {
            let c = Cx {
                cx: cx.clone(),
                pair: p.pair.clone(),
                ctx: p.ctx.clone(),
                class: p.class,
                scope,
            };
            return forced_parse_memo(&c, goal_kind, tree);
        }
    }
    // No payload: use the global environment.
    let c = Cx {
        cx: cx.clone(),
        pair: cx.global.borrow().clone(),
        ctx: ResolveCtx::default(),
        class: None,
        scope,
    };
    forced_parse_memo(&c, goal_kind, tree)
}

/// [`Cx::parse_tree_kind_goal`] through the session's [`ForceCache`],
/// when one is attached and the parse is provably pure.
///
/// A memoized result may only be served or recorded when the forcing
/// environment is the compiler's pristine base environment (grammar
/// content hash and dispatch-env version both match construction time):
/// under that environment every reachable semantic action is a built-in
/// constructor whose output is a function of the tokens alone. Recording
/// additionally requires that the parse imported no metaprogram (the
/// dep log did not grow), created no lazy node (nothing captured an
/// environment), and emitted no diagnostic — any of those makes the
/// result context-dependent, so it is recomputed on every run exactly as
/// a cold compiler would.
fn forced_parse_memo(
    c: &Cx,
    goal_kind: NodeKind,
    tree: &DelimTree,
) -> Result<Node, CompileError> {
    let Some(cache) = c.cx.options.force_cache.clone() else {
        return c.parse_tree_kind_goal(goal_kind, tree);
    };
    if (c.pair.grammar.content_hash(), c.pair.denv.version()) != c.cx.pristine_env {
        return c.parse_tree_kind_goal(goal_kind, tree);
    }
    let key = (goal_kind, crate::fingerprint::delim_tree_hash(tree));
    if let Some(hit) = cache.get(&key) {
        maya_telemetry::count(maya_telemetry::Counter::ForceCacheHits);
        return Ok(hit);
    }
    let deps_before = c.cx.dep_log.borrow().len();
    let lazies_before = c.cx.lazy_created.get();
    let diags_before = c
        .cx
        .diags
        .borrow()
        .as_ref()
        .map(|d| (d.error_count(), d.warning_count()));
    let node = c.parse_tree_kind_goal(goal_kind, tree)?;
    let diags_after = c
        .cx
        .diags
        .borrow()
        .as_ref()
        .map(|d| (d.error_count(), d.warning_count()));
    if c.cx.dep_log.borrow().len() == deps_before
        && c.cx.lazy_created.get() == lazies_before
        && diags_before == diags_after
    {
        cache.insert(key, node.clone());
    }
    Ok(node)
}

/// Rebuilds a cached compilation-unit AST for reuse by another compiler.
///
/// A unit parsed under the pristine base environment is pure syntax, *except*
/// for its lazy method/constructor bodies: their cells are interior-mutable
/// (forcing memoizes into them) and their payloads capture the parsing
/// compiler's environment. This walker deep-copies the declaration structure,
/// giving every lazy a brand-new unforced cell whose payload is `fresh` —
/// the borrowing compiler's own pristine environment — so nothing is shared
/// across compilers and every body re-forces (and re-logs dependencies)
/// exactly as a cold parse would.
///
/// Returns `None` when the unit contains anything the cache cannot prove
/// pure: grammar-extending declarations (`use`, `syntax`), recovery poison
/// nodes, already-forced lazies, lazies whose captured environment is not
/// pristine, or a lazy field initializer (impossible under the base grammar,
/// rejected defensively). `None` means the caller must re-parse.
pub(crate) fn refresh_unit(
    node: &Node,
    pristine: (u128, u64),
    fresh: &Rc<LazyEnvPayload>,
) -> Option<Node> {
    let Node::List(parts) = node else { return None };
    if parts.len() != 3 {
        return None;
    }
    let Node::Decls(decls) = &parts[2] else { return None };
    let mut out = Vec::with_capacity(decls.len());
    for d in decls {
        out.push(refresh_decl(d, pristine, fresh, None)?);
    }
    Some(Node::List(vec![
        parts[0].clone(),
        parts[1].clone(),
        Node::Decls(out),
    ]))
}

/// [`refresh_unit`] for a class-body member list (the `shape_class` parse):
/// the same walk, with an explicit `expected` class. Lazies parsed inside a
/// class body capture that class in their payload, so the inserting
/// compiler verifies `expected = Some(its class)` while canonicalizing the
/// template to `class: None`; a borrowing compiler verifies
/// `expected = None` and rebinds the lazies to *its own* class via `fresh`
/// (class ids are per-compiler and shift when an edit adds or removes a
/// class). The member list comes back as `Node::Decls` or a `Node::List`
/// of declarations.
pub(crate) fn refresh_members(
    node: &Node,
    pristine: (u128, u64),
    fresh: &Rc<LazyEnvPayload>,
    expected: Option<ClassId>,
) -> Option<Node> {
    match node {
        Node::Decls(decls) => {
            let mut out = Vec::with_capacity(decls.len());
            for d in decls {
                out.push(refresh_decl(d, pristine, fresh, expected)?);
            }
            Some(Node::Decls(out))
        }
        Node::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let Node::Decl(d) = item else { return None };
                out.push(Node::Decl(refresh_decl(d, pristine, fresh, expected)?));
            }
            Some(Node::List(out))
        }
        _ => None,
    }
}

fn refresh_decl(
    d: &Decl,
    pristine: (u128, u64),
    fresh: &Rc<LazyEnvPayload>,
    expected: Option<ClassId>,
) -> Option<Decl> {
    Some(match d {
        Decl::Class(c) => {
            let mut members = Vec::with_capacity(c.members.len());
            for m in &c.members {
                members.push(refresh_decl(m, pristine, fresh, expected)?);
            }
            Decl::Class(ClassDecl { members, ..c.clone() })
        }
        Decl::Interface(i) => {
            let mut members = Vec::with_capacity(i.members.len());
            for m in &i.members {
                members.push(refresh_decl(m, pristine, fresh, expected)?);
            }
            Decl::Interface(InterfaceDecl { members, ..i.clone() })
        }
        Decl::Method(m) => {
            let body = match &m.body {
                Some(l) => Some(refresh_lazy(l, pristine, fresh, expected)?),
                None => None,
            };
            Decl::Method(MethodDecl { body, ..m.clone() })
        }
        Decl::Ctor(c) => Decl::Ctor(CtorDecl {
            body: refresh_lazy(&c.body, pristine, fresh, expected)?,
            ..c.clone()
        }),
        Decl::Field(f) => {
            if matches!(f.init.as_ref().map(|e| &e.kind), Some(ExprKind::Lazy(_))) {
                return None;
            }
            d.clone()
        }
        Decl::Import(_) | Decl::Empty => d.clone(),
        // Anything that can touch the environment — or that failed to
        // parse — is never cached.
        Decl::Production(_) | Decl::Mayan(_) | Decl::Use(..) | Decl::Error(_) => return None,
    })
}

fn refresh_lazy(
    l: &LazyNode,
    pristine: (u128, u64),
    fresh: &Rc<LazyEnvPayload>,
    expected: Option<ClassId>,
) -> Option<LazyNode> {
    let cell = l.cell.borrow();
    let LazyCell::Unforced { tree, env } = &*cell else { return None };
    let payload = env.as_ref()?.downcast_ref::<LazyEnvPayload>()?;
    if (payload.pair.grammar.content_hash(), payload.pair.denv.version()) != pristine
        || payload.class != expected
    {
        return None;
    }
    Some(LazyNode::new(
        l.goal,
        tree.clone(),
        Some(fresh.clone() as Rc<dyn std::any::Any>),
    ))
}

impl Cx {
    fn parse_tree_kind_goal(
        &self,
        goal_kind: NodeKind,
        tree: &DelimTree,
    ) -> Result<Node, CompileError> {
        let goal = self
            .pair
            .grammar
            .nt_for_kind_lattice(goal_kind)
            .ok_or_else(|| {
                CompileError::new(
                    format!("no grammar nonterminal for {}", goal_kind.name()),
                    tree.span(),
                )
            })?;
        // In multi-error mode, statement and member contexts synchronize at
        // boundaries instead of failing the whole body on the first error.
        if let Some(diags) = self.cx.diags.borrow().clone() {
            let poison = if goal_kind == NodeKind::BlockStmts
                || goal_kind.is_subkind_of(NodeKind::Statement)
            {
                Some(crate::recover::Poison::Stmt)
            } else if goal_kind == NodeKind::ClassBody
                || goal_kind.is_subkind_of(NodeKind::Declaration)
            {
                Some(crate::recover::Poison::Decl)
            } else {
                None
            };
            if let Some(poison) = poison {
                return crate::recover::parse_tree_recovering(self, tree, goal, poison, &diags)
                    .ok_or_else(|| CompileError::reported(tree.span()));
            }
        }
        self.parse_trees(&tree.trees, goal).map_err(CompileError::from)
    }
}

/// Forces a lazy node given a `&mut Scope` (the checker-facing adapter).
///
/// # Errors
///
/// Same as [`force_lazy`].
pub fn force_lazy_scoped(
    cx: &Rc<CompilerInner>,
    lazy: &LazyNode,
    scope: &mut Scope,
) -> Result<(), CompileError> {
    // The force gets a *copy*: bindings the parse registers for
    // type-directed dispatch are scratch state; the checker re-declares
    // everything properly while walking the forced tree.
    let cell = Rc::new(RefCell::new(scope.clone()));
    force_lazy(cx, lazy, cell)
}

/// The [`CheckHost`] used throughout compilation.
pub struct ForceHost {
    pub c: Cx,
}

impl CheckHost for ForceHost {
    fn force_lazy(&mut self, lazy: &LazyNode, scope: &mut Scope) -> Result<(), TypeError> {
        force_lazy_scoped(&self.c.cx, lazy, scope).map_err(|e| TypeError::new(e.message, e.span))
    }

    fn template_type(&mut self, goal: NodeKind) -> Result<Type, TypeError> {
        let category = tree_class_for(goal);
        self.c
            .cx
            .classes
            .by_fqcn_str(&format!("maya.tree.{category}"))
            .map(Type::Class)
            .ok_or_else(|| {
                TypeError::new(
                    format!(
                        "templates of kind {} require the maya.tree bridge",
                        goal.name()
                    ),
                    Span::DUMMY,
                )
            })
    }
}

/// Maps a node kind to its fully qualified `maya.tree` class name.
pub fn tree_class_fqcn(goal: NodeKind) -> &'static str {
    use NodeKind::*;
    if goal == StrictTypeName || goal == StrictClassName {
        "maya.tree.StrictTypeName"
    } else if goal.is_subkind_of(Expression) {
        "maya.tree.Expression"
    } else if goal.is_subkind_of(Statement) {
        "maya.tree.Statement"
    } else if goal == BlockStmts {
        "maya.tree.BlockStmts"
    } else if goal.is_subkind_of(TypeName) {
        "maya.tree.TypeName"
    } else if goal.is_subkind_of(Declaration) {
        "maya.tree.Declaration"
    } else if goal.is_subkind_of(Identifier) {
        "maya.tree.Identifier"
    } else if goal == Formal {
        "maya.tree.Formal"
    } else if goal == MethodName {
        "maya.tree.MethodName"
    } else {
        "maya.tree.Node"
    }
}

/// Maps a node kind to its `maya.tree` class name.
pub fn tree_class_for(goal: NodeKind) -> &'static str {
    use NodeKind::*;
    if goal.is_subkind_of(Expression) {
        "Expression"
    } else if goal.is_subkind_of(Statement) {
        "Statement"
    } else if goal == BlockStmts {
        "BlockStmts"
    } else if goal.is_subkind_of(TypeName) {
        "TypeName"
    } else if goal.is_subkind_of(Declaration) {
        "Declaration"
    } else if goal.is_subkind_of(Identifier) {
        "Identifier"
    } else {
        "Node"
    }
}

// ---- instantiation host --------------------------------------------------------

/// Template instantiation host: replays reductions through full dispatch.
pub struct CoreInstHost {
    pub c: Cx,
}

impl InstHost for CoreInstHost {
    fn reduce(&mut self, prod: ProdId, args: Vec<Node>, span: Span) -> Result<Node, DispatchError> {
        self.c.reduce(prod, args, span)
    }

    fn fresh(&mut self, base: &str) -> Symbol {
        self.c.cx.fresh(base)
    }

    fn thunk_env(&mut self) -> Option<Rc<dyn std::any::Any>> {
        Some(self.c.payload() as Rc<dyn std::any::Any>)
    }
}

// ---- the ExpandCtx given to Mayan bodies -----------------------------------------

/// The expansion context handed to Mayan bodies.
pub struct CoreExpand {
    pub c: Cx,
    chain: Rc<Vec<(Rc<Mayan>, Bindings)>>,
    idx: usize,
    pub span: Span,
}

/// A cloneable snapshot of one Mayan expansion, pushed onto the compiler's
/// expand stack while interpreted metaprogram bodies run: the `maya.tree`
/// bridge natives read the top to service `nextRewrite`, templates, and
/// the reflection API.
#[derive(Clone)]
pub struct ExpandSnapshot {
    pub c: Cx,
    pub chain: Rc<Vec<(Rc<Mayan>, Bindings)>>,
    pub idx: usize,
    pub span: Span,
}

impl ExpandSnapshot {
    /// Rebuilds an expansion context.
    pub fn to_expand(&self) -> CoreExpand {
        CoreExpand {
            c: self.c.clone(),
            chain: self.chain.clone(),
            idx: self.idx,
            span: self.span,
        }
    }

    /// `nextRewrite` for interpreted bodies.
    ///
    /// # Errors
    ///
    /// Fails when no less-applicable Mayan remains.
    pub fn next_rewrite(&self) -> Result<Node, DispatchError> {
        if self.idx + 1 >= self.chain.len() {
            return Err(DispatchError::new(
                "nextRewrite: no less-applicable Mayan remains",
                self.span,
            ));
        }
        self.c.run_chain(self.chain.clone(), self.idx + 1, self.span)
    }
}

impl CoreExpand {
    /// A cloneable snapshot of this expansion (for the expand stack).
    pub fn snapshot(&self) -> ExpandSnapshot {
        ExpandSnapshot {
            c: self.c.clone(),
            chain: self.chain.clone(),
            idx: self.idx,
            span: self.span,
        }
    }

    /// Parses a delimiter tree's contents under the expansion environment.
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn parse_tree(&self, tree: &DelimTree, kind: NodeKind) -> Result<Node, DispatchError> {
        self.c.parse_tree_kind(tree, kind)
    }

    /// Instantiates a compiled template with positional slot values.
    ///
    /// # Errors
    ///
    /// Propagates replay failures.
    pub fn instantiate(&self, t: &Template, values: Vec<Node>) -> Result<Node, DispatchError> {
        self.c.instantiate(t, values)
    }

    /// Creates a lazy node capturing the expansion environment.
    pub fn make_lazy(&self, tree: DelimTree, kind: NodeKind) -> Node {
        self.c.make_lazy(tree, kind)
    }

    /// The interpreter (for metaprograms that need compile-time execution).
    pub fn interp(&self) -> Rc<Interp> {
        self.c.cx.interp.clone()
    }

    /// Registers a local-variable binding in the *parse-time* scope, so
    /// Mayans later in the same block can dispatch on its static type
    /// (paper §1: "create variable bindings that are visible to other
    /// arguments"). Resolution failures are ignored here — the checker
    /// reports them properly after expansion.
    pub fn declare_parse_binding(&self, name: maya_lexer::Symbol, ty: &TypeName) {
        if let Ok(t) = self
            .c
            .cx
            .classes
            .resolve_type_name(ty, &self.c.ctx)
        {
            self.c.scope.borrow_mut().declare(
                name,
                maya_types::VarBinding {
                    ty: t,
                    kind: maya_types::VarKind::Local,
                    is_final: false,
                },
            );
        }
    }

    /// Records that a class body at this source position must be shaped
    /// under the current environment (a `use` earlier in the file may have
    /// extended it).
    pub fn record_decl_env(&self, tree: &DelimTree) {
        let span = tree.span();
        if !span.is_dummy() {
            self.c
                .cx
                .decl_envs
                .borrow_mut()
                .insert((span.file, span.lo), self.c.pair.clone());
        }
    }

    /// The current resolution context.
    pub fn resolve_ctx(&self) -> &ResolveCtx {
        &self.c.ctx
    }

    /// A resolver for class names in the current resolution context (used
    /// when compiling templates — referential transparency).
    pub fn class_resolver(&self) -> impl Fn(&str) -> Option<Symbol> + 'static {
        let classes = self.c.cx.classes.clone();
        let ctx = self.c.ctx.clone();
        move |dotted: &str| {
            if dotted.contains('.') {
                classes
                    .by_fqcn_str(dotted)
                    .map(|c| classes.fqcn(c))
            } else {
                classes
                    .resolve_simple(maya_lexer::sym(dotted), &ctx)
                    .map(|c| classes.fqcn(c))
            }
        }
    }

    /// Compiles a template from source text (braces are added around the
    /// body). `slots` names each `$name` unquote and its grammar symbol.
    ///
    /// # Errors
    ///
    /// Propagates template compile errors (syntax, hygiene).
    pub fn compile_template(
        &self,
        goal: NodeKind,
        source: &str,
        slots: &[(&str, NodeKind)],
    ) -> Result<Rc<Template>, DispatchError> {
        let trees = maya_lexer::tree_lex_str(&format!("{{ {source} }}"))
            .map_err(|e| DispatchError::new(e.message, e.span))?;
        let body = match &trees[..] {
            [maya_lexer::TokenTree::Delim(d)] => d.clone(),
            _ => {
                return Err(DispatchError::new(
                    "internal: template source did not lex to one tree",
                    Span::DUMMY,
                ))
            }
        };
        struct TableKinds(Vec<(maya_lexer::Symbol, NodeKind)>);
        impl maya_template::SlotKinds for TableKinds {
            fn named(&mut self, name: maya_lexer::Symbol) -> Option<NodeKind> {
                self.0.iter().find(|(n, _)| *n == name).map(|(_, k)| *k)
            }

            fn expr(&mut self, _tokens: &[maya_lexer::TokenTree]) -> Option<NodeKind> {
                None
            }
        }
        let mut kinds = TableKinds(
            slots
                .iter()
                .map(|(n, k)| (maya_lexer::sym(n), *k))
                .collect(),
        );
        let resolver = self.class_resolver();
        let t = Template::compile(
            &self.c.pair.grammar,
            &self.c.cx.base.hygiene,
            &resolver,
            goal,
            &body,
            &mut kinds,
        )
        .map_err(|e| DispatchError::new(e.message, e.span))?;
        Ok(Rc::new(t))
    }

    /// Instantiates a template with named slot values (names must cover the
    /// template's slot table).
    ///
    /// # Errors
    ///
    /// Unknown slot names and replay failures.
    pub fn instantiate_named(
        &self,
        t: &Template,
        values: &[(&str, Node)],
    ) -> Result<Node, DispatchError> {
        let ordered = t
            .slots
            .iter()
            .map(|slot| {
                let name = match &slot.source {
                    maya_template::SlotSource::Named(n) => *n,
                    maya_template::SlotSource::Expr(_) => {
                        return Err(DispatchError::new(
                            "expression slots require the interpreted-Mayan path",
                            slot.span,
                        ))
                    }
                };
                values
                    .iter()
                    .find(|(n, _)| maya_lexer::sym(n) == name)
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| {
                        DispatchError::new(format!("no value for template slot ${name}"), slot.span)
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.c.instantiate(t, ordered)
    }

    /// Builds a `use`-style extension of the current environment by running
    /// a metaprogram, returning a lazy node for `tree` parsed under the
    /// extended environment. This is how local Mayans are exported to a
    /// body (`new UseStmt(new Subst(), body)` — paper Figure 3).
    ///
    /// # Errors
    ///
    /// Propagates grammar extension failures.
    pub fn use_over(
        &self,
        program: &dyn maya_dispatch::MetaProgram,
        tree: DelimTree,
        kind: NodeKind,
    ) -> Result<Node, DispatchError> {
        let pair = self.c.cx.run_import(&self.c.pair, program)?;
        let payload = Rc::new(LazyEnvPayload {
            pair,
            ctx: self.c.ctx.clone(),
            class: self.c.class,
        });
        self.c.cx.lazy_created.set(self.c.cx.lazy_created.get() + 1);
        Ok(Node::Lazy(LazyNode::new(kind, tree, Some(payload))))
    }
}

impl ExpandCtx for CoreExpand {
    fn next_rewrite(&mut self) -> Result<Node, DispatchError> {
        if self.idx + 1 >= self.chain.len() {
            return Err(DispatchError::new(
                "nextRewrite: no less-applicable Mayan remains",
                self.span,
            ));
        }
        self.c.run_chain(self.chain.clone(), self.idx + 1, self.span)
    }

    fn make_id(&mut self, base: &str) -> maya_ast::Ident {
        maya_ast::Ident::synth(self.c.cx.fresh(base))
    }

    fn static_type_of(&mut self, e: &Expr) -> Result<Type, DispatchError> {
        self.c
            .static_type(e)
            .map_err(|err| DispatchError::new(err.message, err.span))
    }

    fn class_table(&self) -> Rc<ClassTable> {
        self.c.cx.classes.clone()
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
