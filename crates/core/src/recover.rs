//! Parser error recovery: panic-mode synchronization at statement and
//! member boundaries.
//!
//! When a parse fails and a [`Diagnostics`] sink is active, the failing
//! region is replaced by a single *poison* nonterminal input
//! (`Input::Nt` carrying `StmtKind::Error` / `Decl::Error`) and the parse
//! is rerun. The engine shifts the poison node through the goto table
//! exactly like the paper's pattern-mode nonterminal inputs (§4.2,
//! Figure 6(b)), so sibling statements/members still parse and later
//! errors in the same unit are still reported. Downstream phases skip
//! poison nodes, preventing cascades.
//!
//! Synchronization points are the token-tree positions where a new
//! statement or member can start: after a top-level `;` and after a
//! brace tree. Delimiter trees reseal naturally — the lexer already
//! matched the braces, so an error inside one never corrupts its
//! siblings.

use crate::diag::Diagnostics;
use crate::driver::Cx;
use maya_ast::{Decl, Node, NodeKind, Stmt, StmtKind};
use maya_grammar::NtId;
use maya_lexer::{Delim, TokenKind};
use maya_parser::{Input, NtSel};

/// Which poison node to splice over an unparseable region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Poison {
    /// Statement context (method bodies, blocks).
    Stmt,
    /// Declaration context (compilation units, class bodies).
    Decl,
}

impl Poison {
    fn kind(self) -> NodeKind {
        match self {
            Poison::Stmt => NodeKind::ErrorStmt,
            Poison::Decl => NodeKind::ErrorDecl,
        }
    }

    fn node(self, span: maya_lexer::Span) -> Node {
        match self {
            Poison::Stmt => Node::Stmt(Stmt::new(span, StmtKind::Error)),
            Poison::Decl => Node::Decl(Decl::Error(span)),
        }
    }
}

/// True at input positions where a new statement/member may start.
fn is_sync_boundary<V>(item: &Input<V>) -> bool {
    match item {
        Input::Tok(t) => t.kind == TokenKind::Semi,
        Input::Tree(d, _) => d.delim == Delim::Brace,
        Input::Nt(..) => true,
    }
}

/// The failing region `[a, b)` around input index `at`: from the previous
/// sync boundary (exclusive) to the next one (inclusive).
fn error_range<V>(input: &[Input<V>], at: usize) -> (usize, usize) {
    let at = at.min(input.len().saturating_sub(1));
    let a = (0..at)
        .rev()
        .find(|&i| is_sync_boundary(&input[i]))
        .map(|i| i + 1)
        .unwrap_or(0);
    let b = (at..input.len())
        .find(|&i| is_sync_boundary(&input[i]))
        .map(|i| i + 1)
        .unwrap_or(input.len());
    (a, b.max(a + 1))
}

/// Parses `trees` with panic-mode recovery, reporting every error into
/// `diags`. Returns the (possibly poison-carrying) parse result, or `None`
/// when the input is unrecoverable — in both cases every error has already
/// been reported.
pub(crate) fn parse_trees_recovering(
    cx: &Cx,
    trees: &[maya_lexer::TokenTree],
    goal: NtId,
    poison: Poison,
    diags: &Diagnostics,
) -> Option<Node> {
    let mut input: Vec<Input<Node>> = Input::from_token_trees(trees);
    loop {
        let err = match cx.parse_input(&input, goal) {
            Ok(node) => return Some(node),
            Err(e) => e,
        };
        diags.error(err.message.clone(), err.span);
        if diags.at_cap() {
            return None;
        }
        let Some(at) = err.at else {
            // No input anchor (table construction, internal errors):
            // synchronizing is meaningless.
            return None;
        };
        if input.is_empty() {
            return None;
        }
        let (a, b) = error_range(&input, at);
        // Non-progress guard: if the region is already a lone poison node,
        // the error is *caused* by recovery (e.g. no grammar slot for the
        // poison kind here) — bail instead of looping.
        if b - a == 1 && matches!(&input[a], Input::Nt(NtSel::Kind(k), _, _) if *k == poison.kind())
        {
            return None;
        }
        let span = input[a].span().to(input[b - 1].span());
        maya_telemetry::count(maya_telemetry::Counter::ParseRecoveries);
        input.splice(a..b, [Input::Nt(NtSel::Kind(poison.kind()), poison.node(span), span)]);
    }
}

/// [`parse_trees_recovering`] over a delimiter tree's contents.
pub(crate) fn parse_tree_recovering(
    cx: &Cx,
    tree: &maya_lexer::DelimTree,
    goal: NtId,
    poison: Poison,
    diags: &Diagnostics,
) -> Option<Node> {
    parse_trees_recovering(cx, &tree.trees, goal, poison, diags)
}
