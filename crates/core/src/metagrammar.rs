//! Reading the metagrammar of `syntax(...)` declarations (paper §3.1):
//! node-type names, `lazy(Tree, NT)`, `list(NT, sep)`, escaped literal
//! tokens (`\.`), and delimiter subtrees.

use crate::CompileError;
use maya_ast::NodeKind;
use maya_grammar::{RhsItem, Terminal};
use maya_lexer::{Delim, Span, TokenKind, TokenTree};

fn delim_by_name(name: &str) -> Option<Delim> {
    match name {
        "ParenTree" => Some(Delim::Paren),
        "BraceTree" => Some(Delim::Brace),
        "BrackTree" => Some(Delim::Brack),
        _ => None,
    }
}

/// Parses a production right-hand side from the tokens of a `syntax(...)`
/// tree: `MethodName(Formal) lazy(BraceTree, BlockStmts)` becomes the
/// corresponding [`RhsItem`]s.
///
/// # Errors
///
/// Reports unknown node types and malformed parameterized symbols.
pub fn parse_rhs(trees: &[TokenTree]) -> Result<Vec<RhsItem>, CompileError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Token(t) if t.kind == TokenKind::Backslash => {
                // `\.` — an escaped literal token.
                let Some(TokenTree::Token(lit)) = trees.get(i + 1) else {
                    return Err(CompileError::new("expected a token after `\\`", t.span));
                };
                out.push(if lit.kind == TokenKind::Ident {
                    RhsItem::Term(Terminal::Word(lit.text))
                } else {
                    RhsItem::Term(Terminal::Tok(lit.kind))
                });
                i += 2;
            }
            TokenTree::Token(t) if t.kind == TokenKind::Ident => {
                let name = t.text.as_str();
                if name == "lazy" {
                    let Some(TokenTree::Delim(args)) = trees.get(i + 1) else {
                        return Err(CompileError::new("lazy(...) expects arguments", t.span));
                    };
                    let (d, nt) = lazy_args(args.trees.as_slice(), t.span)?;
                    out.push(RhsItem::Lazy(d, nt));
                    i += 2;
                } else if name == "list" {
                    let Some(TokenTree::Delim(args)) = trees.get(i + 1) else {
                        return Err(CompileError::new("list(...) expects arguments", t.span));
                    };
                    out.push(list_args(args.trees.as_slice(), t.span)?);
                    i += 2;
                } else if let Some(kind) = NodeKind::from_name(name) {
                    // A node-type symbol, optionally followed by a subtree:
                    // `MethodName(Formal)` means "then a ParenTree whose
                    // contents parse to Formal".
                    out.push(RhsItem::Kind(kind));
                    i += 1;
                } else {
                    // A bare identifier is a contextual keyword (`typedef`).
                    out.push(RhsItem::Term(Terminal::Word(t.text)));
                    i += 1;
                }
            }
            TokenTree::Token(t) => {
                out.push(RhsItem::Term(Terminal::Tok(t.kind)));
                i += 1;
            }
            TokenTree::Delim(d) => {
                // `(Formal)` / `(Identifier = StrictClassName)`: an eagerly
                // parsed subtree over the inner sequence.
                let inner = parse_rhs(&d.trees)?;
                if inner.is_empty() {
                    return Err(CompileError::new(
                        "a delimiter subtree pattern must contain at least one symbol",
                        d.span(),
                    ));
                }
                out.push(RhsItem::Subtree(d.delim, inner));
                i += 1;
            }
        }
    }
    Ok(out)
}

fn lazy_args(trees: &[TokenTree], span: Span) -> Result<(Delim, NodeKind), CompileError> {
    let parts = split_commas(trees);
    if parts.len() != 2 {
        return Err(CompileError::new("lazy(Tree, NodeType) expects two arguments", span));
    }
    let d = match parts[0] {
        [TokenTree::Token(t)] => delim_by_name(t.text.as_str())
            .ok_or_else(|| CompileError::new("expected ParenTree/BraceTree/BrackTree", t.span))?,
        _ => return Err(CompileError::new("malformed lazy(...) tree argument", span)),
    };
    let nt = match parts[1] {
        [TokenTree::Token(t)] => NodeKind::from_name(t.text.as_str())
            .ok_or_else(|| CompileError::new(format!("unknown node type {}", t.text), t.span))?,
        _ => return Err(CompileError::new("malformed lazy(...) goal argument", span)),
    };
    Ok((d, nt))
}

fn list_args(trees: &[TokenTree], span: Span) -> Result<RhsItem, CompileError> {
    let parts = split_commas(trees);
    if parts.is_empty() || parts.len() > 2 {
        return Err(CompileError::new("list(NodeType[, sep]) expects 1–2 arguments", span));
    }
    let inner = parse_rhs(parts[0])?;
    if inner.len() != 1 {
        return Err(CompileError::new("list item must be a single symbol", span));
    }
    let sep = if parts.len() == 2 {
        match parts[1] {
            [TokenTree::Token(t)] => Some(Terminal::Tok(t.kind)),
            [TokenTree::Token(b), TokenTree::Token(t)] if b.kind == TokenKind::Backslash => {
                Some(Terminal::Tok(t.kind))
            }
            _ => return Err(CompileError::new("malformed list separator", span)),
        }
    } else {
        None
    };
    Ok(RhsItem::List(
        Box::new(inner.into_iter().next().expect("checked length")),
        sep,
    ))
}

/// Splits token trees on top-level commas (a comma escaped with `\` — a
/// literal separator token — does not split).
pub fn split_commas(trees: &[TokenTree]) -> Vec<&[TokenTree]> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Token(tok) if tok.kind == TokenKind::Backslash => {
                i += 2;
                continue;
            }
            TokenTree::Token(tok) if tok.kind == TokenKind::Comma => {
                out.push(&trees[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < trees.len() || !out.is_empty() {
        out.push(&trees[start..]);
    } else if !trees.is_empty() {
        out.push(trees);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::tree_lex_str;

    fn rhs(src: &str) -> Result<Vec<RhsItem>, CompileError> {
        let trees = tree_lex_str(src).unwrap();
        parse_rhs(&trees)
    }

    #[test]
    fn paper_foreach_production() {
        // The §3.1 production: MethodName(Formal) lazy(BraceTree, BlockStmts)
        let items = rhs("MethodName(Formal) lazy(BraceTree, BlockStmts)").unwrap();
        assert_eq!(items.len(), 3);
        assert!(matches!(items[0], RhsItem::Kind(NodeKind::MethodName)));
        assert!(
            matches!(&items[1], RhsItem::Subtree(Delim::Paren, inner)
                if matches!(inner.as_slice(), [RhsItem::Kind(NodeKind::Formal)]))
        );
        assert!(matches!(
            items[2],
            RhsItem::Lazy(Delim::Brace, NodeKind::BlockStmts)
        ));
    }

    #[test]
    fn escaped_tokens_and_words() {
        // Figure 3's production: typedef(Identifier = StrictClassName) …
        let items = rhs("typedef(Identifier = StrictClassName)").unwrap();
        assert!(matches!(items[0], RhsItem::Term(Terminal::Word(w)) if w.as_str() == "typedef"));
        let items = rhs("Expression \\. foreach").unwrap();
        assert!(matches!(items[1], RhsItem::Term(Terminal::Tok(TokenKind::Dot))));
        assert!(matches!(items[2], RhsItem::Term(Terminal::Word(w)) if w.as_str() == "foreach"));
    }

    #[test]
    fn lists() {
        let items = rhs("list(Modifier) list(Expression, \\,)").unwrap();
        assert!(matches!(&items[0], RhsItem::List(_, None)));
        assert!(matches!(
            &items[1],
            RhsItem::List(_, Some(Terminal::Tok(TokenKind::Comma)))
        ));
    }

    #[test]
    fn errors() {
        assert!(rhs("lazy(BraceTree)").is_err());
        assert!(rhs("lazy(Nope, BlockStmts)").is_err());
        assert!(rhs("\\").is_err());
    }
}

use maya_parser::trace::PatTree;
use maya_parser::{Input, NtSel};

/// Parses a Mayan's formal parameter list (paper §3.2) into pattern input
/// plus the leaf parameter specs.
///
/// Grammar of one item:
///
/// * `NodeKind[:Type] [name]` — a node-type parameter, optionally
///   specialized on a static expression type, optionally binding `name`;
/// * `lazy(Tree, Kind) name` / `list(Kind[, sep]) name` — parameterized
///   symbols (the production must have declared them);
/// * `\tok` — an escaped literal token; a bare non-kind identifier is a
///   token-value specializer (`foreach`);
/// * `( … )` — a delimiter subtree containing a nested parameter pattern.
///
/// # Errors
///
/// Unknown node kinds, unresolvable specializer types, and malformed
/// parameterized symbols.
pub fn parse_mayan_params(
    grammar: &maya_grammar::Grammar,
    classes: &maya_types::ClassTable,
    ctx: &maya_types::ResolveCtx,
    trees: &[TokenTree],
) -> Result<(Vec<Input<PatTree>>, Vec<maya_dispatch::ParamSpec>), CompileError> {
    let mut specs: Vec<maya_dispatch::ParamSpec> = Vec::new();
    let input = params_rec(grammar, classes, ctx, trees, &mut specs)?;
    Ok((input, specs))
}

fn take_name(trees: &[TokenTree], i: usize) -> (Option<maya_lexer::Token>, usize) {
    match trees.get(i) {
        Some(TokenTree::Token(t))
            if t.kind == TokenKind::Ident
                && NodeKind::from_name(t.text.as_str()).is_none()
                && t.text.as_str() != "lazy"
                && t.text.as_str() != "list" =>
        {
            (Some(*t), i + 1)
        }
        _ => (None, i),
    }
}

fn params_rec(
    grammar: &maya_grammar::Grammar,
    classes: &maya_types::ClassTable,
    ctx: &maya_types::ResolveCtx,
    trees: &[TokenTree],
    specs: &mut Vec<maya_dispatch::ParamSpec>,
) -> Result<Vec<Input<PatTree>>, CompileError> {
    use maya_dispatch::{ParamSpec, Specializer};
    let mut out = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Token(t) if t.kind == TokenKind::Backslash => {
                let Some(TokenTree::Token(lit)) = trees.get(i + 1) else {
                    return Err(CompileError::new("expected a token after `\\`", t.span));
                };
                out.push(Input::Tok(*lit));
                i += 2;
            }
            TokenTree::Token(t)
                if t.kind == TokenKind::Ident && t.text.as_str() == "lazy" =>
            {
                let Some(TokenTree::Delim(args)) = trees.get(i + 1) else {
                    return Err(CompileError::new("lazy(...) expects arguments", t.span));
                };
                let (d, kind) = lazy_args(args.trees.as_slice(), t.span)?;
                let helper = grammar.lazy_helper(d, kind).ok_or_else(|| {
                    CompileError::new(
                        "lazy(...) parameter does not match any production symbol",
                        t.span,
                    )
                })?;
                let (name, next) = take_name(trees, i + 2);
                let index = specs.len();
                specs.push(ParamSpec {
                    kind,
                    spec: Specializer::None,
                    name: name.map(|n| n.text),
                });
                out.push(Input::Nt(
                    NtSel::Id(helper),
                    PatTree::leaf(NtSel::Id(helper), index, t.span),
                    t.span,
                ));
                i = next;
            }
            TokenTree::Token(t)
                if t.kind == TokenKind::Ident && t.text.as_str() == "list" =>
            {
                let Some(TokenTree::Delim(args)) = trees.get(i + 1) else {
                    return Err(CompileError::new("list(...) expects arguments", t.span));
                };
                let item = list_args(args.trees.as_slice(), t.span)?;
                let (inner, sep) = match item {
                    RhsItem::List(inner, sep) => (inner, sep),
                    _ => unreachable!("list_args returns List"),
                };
                let RhsItem::Kind(inner_kind) = *inner else {
                    return Err(CompileError::new(
                        "named list parameters must range over a node kind",
                        t.span,
                    ));
                };
                let helper = grammar.list_helper(inner_kind, sep).ok_or_else(|| {
                    CompileError::new(
                        "list(...) parameter does not match any production symbol",
                        t.span,
                    )
                })?;
                let (name, next) = take_name(trees, i + 2);
                let index = specs.len();
                specs.push(ParamSpec {
                    kind: NodeKind::ListNode,
                    spec: Specializer::None,
                    name: name.map(|n| n.text),
                });
                out.push(Input::Nt(
                    NtSel::Id(helper),
                    PatTree::leaf(NtSel::Id(helper), index, t.span),
                    t.span,
                ));
                i = next;
            }
            TokenTree::Token(t) if t.kind == TokenKind::Ident => {
                if let Some(kind) = NodeKind::from_name(t.text.as_str()) {
                    // Optional static-type specializer `:a.b.C`.
                    let mut spec = Specializer::None;
                    let mut j = i + 1;
                    if matches!(trees.get(j), Some(TokenTree::Token(c)) if c.kind == TokenKind::Colon)
                    {
                        j += 1;
                        let mut parts: Vec<maya_ast::Ident> = Vec::new();
                        loop {
                            match trees.get(j) {
                                Some(TokenTree::Token(p)) if p.kind == TokenKind::Ident => {
                                    parts.push(maya_ast::Ident::new(p.text, p.span));
                                    j += 1;
                                }
                                _ => break,
                            }
                            match trees.get(j) {
                                Some(TokenTree::Token(d)) if d.kind == TokenKind::Dot => j += 1,
                                _ => break,
                            }
                        }
                        if parts.is_empty() {
                            return Err(CompileError::new(
                                "expected a type after `:`",
                                t.span,
                            ));
                        }
                        let tn = maya_ast::TypeName::new(
                            t.span,
                            maya_ast::TypeNameKind::Named(parts),
                        );
                        let ty = classes.resolve_type_name(&tn, ctx)?;
                        spec = Specializer::StaticType(ty);
                    }
                    let (name, next) = take_name(trees, j);
                    let index = specs.len();
                    // `Node::Ident` carries kind Identifier even for
                    // UnboundLocal symbols.
                    let match_kind = if kind == NodeKind::UnboundLocal {
                        NodeKind::Identifier
                    } else {
                        kind
                    };
                    specs.push(ParamSpec {
                        kind: match_kind,
                        spec,
                        name: name.map(|n| n.text),
                    });
                    out.push(Input::Nt(
                        NtSel::Kind(kind),
                        PatTree::leaf(NtSel::Kind(kind), index, t.span),
                        t.span,
                    ));
                    i = next;
                } else {
                    // A bare identifier: token-value literal (`foreach`).
                    out.push(Input::Tok(*t));
                    i += 1;
                }
            }
            TokenTree::Token(t) => {
                out.push(Input::Tok(*t));
                i += 1;
            }
            TokenTree::Delim(d) => {
                let inner = params_rec(grammar, classes, ctx, &d.trees, specs)?;
                out.push(Input::Tree(d.clone(), Some(std::rc::Rc::new(inner))));
                i += 1;
            }
        }
    }
    Ok(out)
}
