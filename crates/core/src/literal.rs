//! Literal token → value conversion (with escape processing).

use maya_ast::Lit;
use maya_lexer::{sym, Token, TokenKind};

fn unescape(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('\'') => out.push('\''),
            Some('"') => out.push('"'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                match u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    Some(c) => out.push(c),
                    None => out.push('\u{fffd}'),
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Converts a literal token into a [`Lit`] value.
///
/// ```
/// use maya_core::parse_literal;
/// use maya_lexer::{sym, Token, TokenKind};
/// use maya_ast::Lit;
/// let t = Token::synth(TokenKind::IntLit, sym("42"));
/// assert_eq!(parse_literal(&t), Some(Lit::Int(42)));
/// let s = Token::synth(TokenKind::StringLit, sym("\"a\\nb\""));
/// assert_eq!(parse_literal(&s), Some(Lit::Str(sym("a\nb"))));
/// ```
pub fn parse_literal(tok: &Token) -> Option<Lit> {
    let text = tok.text.as_str();
    Some(match tok.kind {
        TokenKind::IntLit => {
            if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                Lit::Int(u32::from_str_radix(hex, 16).ok()? as i32)
            } else {
                Lit::Int(text.parse().ok()?)
            }
        }
        TokenKind::LongLit => {
            let body = text.trim_end_matches(['l', 'L']);
            if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
                Lit::Long(u64::from_str_radix(hex, 16).ok()? as i64)
            } else {
                Lit::Long(body.parse().ok()?)
            }
        }
        TokenKind::FloatLit => Lit::Float(text.trim_end_matches(['f', 'F']).parse().ok()?),
        TokenKind::DoubleLit => Lit::Double(text.trim_end_matches(['d', 'D']).parse().ok()?),
        TokenKind::CharLit => {
            let body = text.strip_prefix('\'')?.strip_suffix('\'')?;
            Lit::Char(unescape(body).chars().next()?)
        }
        TokenKind::StringLit => {
            let body = text.strip_prefix('"')?.strip_suffix('"')?;
            Lit::Str(sym(&unescape(body)))
        }
        TokenKind::KwTrue => Lit::Bool(true),
        TokenKind::KwFalse => Lit::Bool(false),
        TokenKind::KwNull => Lit::Null,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(kind: TokenKind, text: &str) -> Token {
        Token::synth(kind, sym(text))
    }

    #[test]
    fn numbers() {
        assert_eq!(parse_literal(&tok(TokenKind::IntLit, "0")), Some(Lit::Int(0)));
        assert_eq!(parse_literal(&tok(TokenKind::IntLit, "0xFF")), Some(Lit::Int(255)));
        assert_eq!(parse_literal(&tok(TokenKind::LongLit, "7L")), Some(Lit::Long(7)));
        assert_eq!(parse_literal(&tok(TokenKind::DoubleLit, "2.5")), Some(Lit::Double(2.5)));
        assert_eq!(parse_literal(&tok(TokenKind::FloatLit, "1.5f")), Some(Lit::Float(1.5)));
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            parse_literal(&tok(TokenKind::StringLit, "\"hi\\tthere\"")),
            Some(Lit::Str(sym("hi\tthere")))
        );
        assert_eq!(parse_literal(&tok(TokenKind::CharLit, "'x'")), Some(Lit::Char('x')));
        assert_eq!(parse_literal(&tok(TokenKind::CharLit, "'\\n'")), Some(Lit::Char('\n')));
        assert_eq!(
            parse_literal(&tok(TokenKind::StringLit, "\"\\u0041\"")),
            Some(Lit::Str(sym("A")))
        );
    }

    #[test]
    fn keywords() {
        assert_eq!(parse_literal(&tok(TokenKind::KwTrue, "true")), Some(Lit::Bool(true)));
        assert_eq!(parse_literal(&tok(TokenKind::KwNull, "null")), Some(Lit::Null));
        assert_eq!(parse_literal(&tok(TokenKind::Semi, ";")), None);
    }
}
