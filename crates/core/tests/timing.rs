use std::time::Instant;

#[test]
#[ignore]
fn table_build_time() {
    let t0 = Instant::now();
    let base = maya_core::Base::build();
    let t1 = Instant::now();
    let tables = base.grammar.tables().unwrap();
    let t2 = Instant::now();
    println!(
        "grammar build: {:?}, tables: {:?}, states: {}, terms: {}, actions: {}",
        t1 - t0,
        t2 - t1,
        tables.n_states(),
        tables.n_terms(),
        tables.action_entries()
    );
}
