//! Diagnostics: errors carry accurate spans and actionable messages.

use maya_core::Compiler;

fn err_for(src: &str) -> (String, maya_lexer::Span) {
    let c = Compiler::new();
    let e = c
        .compile_and_run("Main.maya", src, "Main")
        .expect_err("program must be rejected");
    (e.message, e.span)
}

fn line_of(src: &str, span: maya_lexer::Span) -> usize {
    src[..span.lo as usize].lines().count()
}

#[test]
fn syntax_error_points_at_the_offending_token() {
    let src = "class Main {\n    static void main() {\n        int x = ;\n    }\n}";
    let (msg, span) = err_for(src);
    assert!(msg.contains("unexpected"), "{msg}");
    assert_eq!(line_of(src, span), 3, "span should be on line 3: {span:?}");
}

#[test]
fn type_error_points_at_the_expression() {
    let src = "class Main {\n    static void main() {\n        boolean b = true;\n        int x = b - 1;\n    }\n}";
    let (msg, span) = err_for(src);
    assert!(msg.contains("numeric"), "{msg}");
    assert_eq!(line_of(src, span), 4);
}

#[test]
fn unknown_name_is_reported_with_its_name() {
    let (msg, _) = err_for("class Main { static void main() { nonexistent(); } }");
    assert!(msg.contains("nonexistent") || msg.contains("method"), "{msg}");
}

#[test]
fn unknown_type_is_reported_with_its_name() {
    let (msg, _) = err_for("class Main { static void main() { Bogus b = null; } }");
    assert!(msg.contains("Bogus"), "{msg}");
}

#[test]
fn unknown_metaprogram_is_reported() {
    let (msg, _) = err_for("class Main { static void main() { use NoSuchThing; } }");
    assert!(msg.contains("NoSuchThing"), "{msg}");
}

#[test]
fn no_applicable_mayan_names_the_production() {
    // The paper: "an error is signaled [when] input causes the production
    // to reduce" with no Mayans. Build a compiler with a production but no
    // Mayan on it.
    use maya_ast::NodeKind;
    use maya_dispatch::{DispatchError, ImportEnv, MetaProgram};
    use maya_grammar::RhsItem;
    use maya_lexer::Delim;
    struct ProdOnly;
    impl MetaProgram for ProdOnly {
        fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
            env.add_production(
                NodeKind::Statement,
                &[
                    RhsItem::word("gizmo"),
                    RhsItem::Subtree(Delim::Paren, vec![RhsItem::Kind(NodeKind::Expression)]),
                    RhsItem::tok(maya_lexer::TokenKind::Semi),
                ],
            )?;
            Ok(())
        }
    }
    let c = Compiler::new();
    c.register_metaprogram("ProdOnly", std::rc::Rc::new(ProdOnly));
    let err = c
        .compile_and_run(
            "Main.maya",
            "class Main { static void main() { use ProdOnly; gizmo(1); } }",
            "Main",
        )
        .unwrap_err();
    assert!(
        err.message.contains("no applicable Mayan"),
        "{}",
        err.message
    );
    assert!(err.message.contains("gizmo") || err.message.contains("Statement"), "{}", err.message);
}

#[test]
fn grammar_conflicts_are_reported_at_import() {
    // An extension whose production makes the grammar ambiguous is rejected
    // when imported (paper §4.1: the generator rejects such grammars).
    use maya_ast::NodeKind;
    use maya_dispatch::{DispatchError, ImportEnv, MetaProgram};
    use maya_grammar::RhsItem;
    struct Ambiguous;
    impl MetaProgram for Ambiguous {
        fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
            // Statement → Expression (no terminator): clashes with
            // expression statements everywhere.
            env.add_production(NodeKind::Statement, &[RhsItem::Kind(NodeKind::Expression)])?;
            Ok(())
        }
    }
    let c = Compiler::new();
    c.register_metaprogram("Ambiguous", std::rc::Rc::new(Ambiguous));
    let err = c
        .compile_and_run(
            "Main.maya",
            "class Main { static void main() { use Ambiguous; } }",
            "Main",
        )
        .unwrap_err();
    assert!(err.message.contains("conflict"), "{}", err.message);
}

#[test]
fn nested_block_use_is_scoped_to_the_block() {
    let c = Compiler::new();
    maya_macrolib_install(&c);
    let src = r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                {
                    use Foreach;
                    v.elements().foreach(String s) { System.out.println(s); }
                }
                v.elements().foreach(String s) { System.out.println(s); }
            }
        }
    "#;
    assert!(
        c.compile_and_run("Main.maya", src, "Main").is_err(),
        "import inside a block must not leak to the enclosing block"
    );
}

fn maya_macrolib_install(c: &Compiler) {
    // Local shim so this test file only needs dev-deps already present.
    maya_macrolib::install(c);
}
