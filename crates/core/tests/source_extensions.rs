//! The full Figure 1 pipeline: extensions written in MayaJava itself —
//! `abstract … syntax(…)` productions and `… syntax Name(params) { body }`
//! Mayans whose bodies run on the interpreter at application compile time,
//! with templates, hygiene, the reflection API, and `nextRewrite`.

use maya_core::Compiler;

fn run(srcs: &[(&str, &str)], main: &str) -> String {
    let c = Compiler::new();
    for (name, text) in srcs {
        if let Err(e) = c.add_source(name, text) {
            panic!("add_source {name}: {} @ {:?}", e.message, e.span);
        }
    }
    if let Err(e) = c.compile() {
        panic!("compile: {} @ {:?}", e.message, e.span);
    }
    match c.run_main(main) {
        Ok(out) => out,
        Err(e) => panic!("run: {} @ {:?}", e.message, e.span),
    }
}

/// Figure 2, nearly verbatim: the EForEach Mayan written in MayaJava.
const EFOREACH_SOURCE: &str = r#"
    abstract Statement syntax(MethodName(Formal) lazy(BraceTree, BlockStmts));

    Statement syntax
    EForEach(Expression:java.util.Enumeration enumExp
             \. foreach(Formal var)
             lazy(BraceTree, BlockStmts) body)
    {
        StrictTypeName castType = StrictTypeName.make(var.getType());

        return new Statement {
            for (java.util.Enumeration enumVar = $enumExp;
                 enumVar.hasMoreElements(); ) {
                $(DeclStmt.make(var))
                $(Reference.makeExpr(var.getLocation()))
                    = ($castType) enumVar.nextElement();
                $body
            }
        };
    }
"#;

#[test]
fn figure2_eforeach_written_in_maya() {
    let app = r#"
        import java.util.*;
        class Main {
            static void main() {
                Hashtable h = new Hashtable();
                h.put("a", "1");
                h.put("b", "2");
                use EForEach;
                h.keys().foreach(String st) {
                    System.out.println(st + " = " + h.get(st));
                }
            }
        }
    "#;
    let out = run(&[("EForEach.maya", EFOREACH_SOURCE), ("Main.maya", app)], "Main");
    assert_eq!(out, "a = 1\nb = 2\n");
}

#[test]
fn figure2_hygiene_in_interpreted_templates() {
    // The template's enumVar must not capture the user's enumVar.
    let app = r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("z");
                String enumVar = "mine";
                use EForEach;
                v.elements().foreach(String st) {
                    System.out.println(enumVar + " " + st);
                }
            }
        }
    "#;
    let out = run(&[("EForEach.maya", EFOREACH_SOURCE), ("Main.maya", app)], "Main");
    assert_eq!(out, "mine z\n");
}

#[test]
fn token_value_dispatch_from_source() {
    // Two Mayans on the same declared production, separated only by the
    // token value of the name — imported independently.
    let ext = r#"
        abstract Statement syntax(MethodName(Formal) lazy(BraceTree, BlockStmts));

        Statement syntax
        Twice(Expression:java.lang.Object recv \. twice(Formal var)
              lazy(BraceTree, BlockStmts) body)
        {
            return new Statement {
                for (int counter = 0; counter < 2; counter++) {
                    $(DeclStmt.make(var))
                    $(Reference.makeExpr(var.getLocation())) = $recv;
                    $body
                }
            };
        }
    "#;
    let app = r#"
        class Main {
            static void main() {
                use Twice;
                String who = "maya";
                who.twice(String w) {
                    System.out.println(w);
                }
            }
        }
    "#;
    let out = run(&[("Twice.maya", ext), ("Main.maya", app)], "Main");
    assert_eq!(out, "maya\nmaya\n");
}

#[test]
fn next_rewrite_layers_source_mayans() {
    // A source Mayan on a *base* production: logs string literals and
    // defers to the built-in translation via nextRewrite (paper §4.4).
    let ext = r#"
        Statement syntax
        Noisy(Expression e \;)
        {
            return nextRewrite();
        }
    "#;
    let app = r#"
        class Main {
            static void main() {
                use Noisy;
                System.out.println("still works");
            }
        }
    "#;
    let out = run(&[("Noisy.maya", ext), ("Main.maya", app)], "Main");
    assert_eq!(out, "still works\n");
}

#[test]
fn environment_make_id_generates_fresh_names() {
    let ext = r#"
        abstract Statement syntax(MethodName(Formal) lazy(BraceTree, BlockStmts));

        Statement syntax
        Fresh(Expression:java.lang.Object recv \. withTemp(Formal var)
              lazy(BraceTree, BlockStmts) body)
        {
            Identifier tmp = Environment.makeId("tmp");
            return new Statement {
                {
                    $(DeclStmt.make(var))
                    $(Reference.makeExpr(var.getLocation())) = $recv;
                    $body
                }
            };
        }
    "#;
    let app = r#"
        class Main {
            static void main() {
                use Fresh;
                String s = "ok";
                s.withTemp(String t) {
                    System.out.println(t);
                }
            }
        }
    "#;
    let out = run(&[("Fresh.maya", ext), ("Main.maya", app)], "Main");
    assert_eq!(out, "ok\n");
}

#[test]
fn bad_extension_bodies_fail_at_expansion() {
    // A body returning a non-tree value is caught when the Mayan fires.
    let ext = r#"
        abstract Statement syntax(gadget(Formal) lazy(BraceTree, BlockStmts));

        Statement syntax
        Gadget(gadget(Formal var) lazy(BraceTree, BlockStmts) body)
        {
            throw new RuntimeException("deliberate");
        }
    "#;
    let app = r#"
        class Main {
            static void main() {
                use Gadget;
                gadget(int x) { }
            }
        }
    "#;
    let c = Compiler::new();
    c.add_source("Gadget.maya", ext).unwrap();
    c.add_source("Main.maya", app).unwrap();
    let err = c.compile().unwrap_err();
    assert!(err.message.contains("deliberate"), "{}", err.message);
}

#[test]
fn figure7_vforeach_pattern_from_source() {
    // The §4.4 optimized foreach written as extension source: the receiver
    // parameter is the nested pattern `Expression:maya.util.Vector v
    // \.elements()` — a CallExpr substructure whose inner receiver is
    // specialized on a static type (Figure 7's parameter tree).
    let ext = r#"
        abstract Statement syntax(MethodName(Formal) lazy(BraceTree, BlockStmts));

        Statement syntax
        EForEach(Expression:java.util.Enumeration enumExp
                 \. foreach(Formal var)
                 lazy(BraceTree, BlockStmts) body)
        {
            StrictTypeName castType = StrictTypeName.make(var.getType());
            return new Statement {
                for (java.util.Enumeration enumVar = $enumExp;
                     enumVar.hasMoreElements(); ) {
                    $(DeclStmt.make(var))
                    $(Reference.makeExpr(var.getLocation()))
                        = ($castType) enumVar.nextElement();
                    $body
                }
            };
        }

        Statement syntax
        VForEach(Expression:maya.util.Vector v \.elements()
                 \.foreach(Formal var)
                 lazy(BraceTree, BlockStmts) body)
        {
            StrictTypeName castType = StrictTypeName.make(var.getType());
            return new Statement {
                {
                    maya.util.Vector vVar = $v;
                    int lenVar = vVar.size();
                    Object[] arrVar = vVar.getElementData();
                    for (int iVar = 0; iVar < lenVar; iVar++) {
                        $(DeclStmt.make(var))
                        $(Reference.makeExpr(var.getLocation()))
                            = ($castType) arrVar[iVar];
                        $body
                    }
                }
            };
        }
    "#;
    let app = r#"
        class Main {
            static void main() {
                maya.util.Vector v = new maya.util.Vector();
                v.addElement("opt");
                use EForEach;
                use VForEach;
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
    "#;
    let c = Compiler::new();
    c.add_source("Ext.maya", ext).unwrap();
    c.add_source("Main.maya", app).unwrap();
    if let Err(e) = c.compile() {
        panic!("compile: {} @ {:?}", e.message, e.span);
    }
    // VForEach must have been selected (more specific): the expansion uses
    // getElementData, not hasMoreElements.
    let classes = c.classes();
    let id = classes.by_fqcn_str("Main").unwrap();
    let info = classes.info(id);
    let info = info.borrow();
    let body = info.methods[0].body.as_ref().unwrap().forced_node().unwrap();
    let text = maya_ast::pretty_node(&body);
    assert!(text.contains("getElementData"), "VForEach not selected:\n{text}");
    drop(info);
    assert_eq!(c.run_main("Main").unwrap(), "opt\n");
}
