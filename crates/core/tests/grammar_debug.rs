use maya_core::Base;

#[test]
#[ignore]
fn dump_conflicts() {
    let base = Base::build();
    match base.grammar.tables() {
        Ok(t) => println!("OK: {} states", t.n_states()),
        Err(maya_grammar::GrammarError::Conflicts(cs)) => {
            for c in &cs {
                println!("state {} on {}: {}", c.state, c.on, c.description);
            }
            for (i, _p) in base.grammar.productions().iter().enumerate() {
                let id = maya_grammar::ProdId(i as u32);
                let name = base.prods.name_of(id).unwrap_or("<helper>");
                println!(
                    "prod {:3} {:24} {}",
                    i,
                    name,
                    maya_core::describe_prod_pub(&base.grammar, id)
                );
            }
        }
        Err(e) => println!("other: {e}"),
    }
}
