//! Focused unit coverage of core helpers.

use maya_ast::{Expr, ExprKind, NodeKind};
use maya_core::{expr_as_type, Base};

#[test]
fn expr_as_type_covers_every_name_shape() {
    // Simple name.
    let t = expr_as_type(&Expr::name("Vector")).unwrap();
    assert_eq!(t.to_string(), "Vector");
    // Dotted chain.
    let chain = Expr::field(Expr::field(Expr::name("java"), "util"), "Vector");
    assert_eq!(expr_as_type(&chain).unwrap().to_string(), "java.util.Vector");
    // Direct class reference (from hygiene).
    let strict = Expr::synth(ExprKind::ClassRef(maya_lexer::sym("java.lang.String")));
    assert_eq!(expr_as_type(&strict).unwrap().to_string(), "java.lang.String");
    // Array dims.
    let dims = Expr::synth(ExprKind::TypeDims(Box::new(Expr::name("Vector"))));
    assert_eq!(expr_as_type(&dims).unwrap().to_string(), "Vector[]");
    // Non-type shapes are rejected.
    assert!(expr_as_type(&Expr::int(3)).is_err());
    assert!(expr_as_type(&Expr::call_on(Expr::name("a"), "b", vec![])).is_err());
}

#[test]
fn describe_prod_is_readable() {
    let base = Base::cached();
    let id = base.prods.id("stmt_if");
    let s = maya_core::describe_prod_pub(&base.grammar, id);
    assert!(s.starts_with("Statement →"), "{s}");
    assert!(s.contains("'if'"), "{s}");
}

#[test]
fn base_prod_names_cover_dispatchable_productions() {
    let base = Base::cached();
    let named: usize = base.prods.all().len();
    let dispatchable = base
        .grammar
        .productions()
        .iter()
        .filter(|p| matches!(p.action, maya_grammar::Action::Dispatch))
        .count();
    assert_eq!(named, dispatchable, "every dispatchable production is named");
}

#[test]
fn hygiene_spec_matches_grammar() {
    let base = Base::cached();
    assert_eq!(
        base.hygiene.binder_nts,
        vec![base.grammar.nt_for_kind(NodeKind::UnboundLocal).unwrap()]
    );
    assert!(!base.hygiene.raw_tree_goals.is_empty());
}
