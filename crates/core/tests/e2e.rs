//! End-to-end: MayaJava source → mayac pipeline → interpreted output.

use maya_core::Compiler;

fn run(src: &str) -> String {
    let c = Compiler::new();
    match c.compile_and_run("Main.maya", src, "Main") {
        Ok(out) => out,
        Err(e) => panic!("compile/run failed: {} @ {:?}", e.message, e.span),
    }
}

#[test]
fn hello_world() {
    let out = run(r#"
        class Main {
            static void main() {
                System.out.println("hello, maya");
            }
        }
    "#);
    assert_eq!(out, "hello, maya\n");
}

#[test]
fn arithmetic_and_locals() {
    let out = run(r#"
        class Main {
            static void main() {
                int a = 6;
                int b = 7;
                int c = a * b + 1 - 1;
                System.out.println(c);
                System.out.println(a < b);
                System.out.println((a + b) * 2);
            }
        }
    "#);
    assert_eq!(out, "42\ntrue\n26\n");
}

#[test]
fn control_flow() {
    let out = run(r#"
        class Main {
            static int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
            static void main() {
                for (int i = 0; i < 8; i++) {
                    System.out.print(fib(i));
                    System.out.print(" ");
                }
                System.out.println("");
                int i = 0;
                while (i < 3) { i++; }
                System.out.println(i);
                do { i--; } while (i > 1);
                System.out.println(i);
            }
        }
    "#);
    assert_eq!(out, "0 1 1 2 3 5 8 13 \n3\n1\n");
}

#[test]
fn objects_fields_and_methods() {
    let out = run(r#"
        class Point {
            int x;
            int y;
            Point(int x0, int y0) {
                x = x0;
                y = y0;
            }
            int dist2() { return x * x + y * y; }
            String toString() { return "(" + x + ", " + y + ")"; }
        }
        class Main {
            static void main() {
                Point p = new Point(3, 4);
                System.out.println(p.dist2());
                System.out.println(p);
                p.x = 6;
                System.out.println(p.dist2());
            }
        }
    "#);
    assert_eq!(out, "25\n(3, 4)\n52\n");
}

#[test]
fn inheritance_virtual_dispatch_and_instanceof() {
    let out = run(r#"
        class Shape {
            int area() { return 0; }
            String name() { return "shape"; }
        }
        class Square extends Shape {
            int side;
            Square(int s) { side = s; }
            int area() { return side * side; }
            String name() { return "square"; }
        }
        class Main {
            static void main() {
                Shape s = new Square(5);
                System.out.println(s.area());
                System.out.println(s.name());
                System.out.println(s instanceof Square);
                Shape t = new Shape();
                System.out.println(t instanceof Square);
                Square q = (Square) s;
                System.out.println(q.side);
            }
        }
    "#);
    assert_eq!(out, "25\nsquare\ntrue\nfalse\n5\n");
}

#[test]
fn vectors_hashtables_enumerations() {
    let out = run(r#"
        import java.util.*;
        class Main {
            static void main() {
                Hashtable h = new Hashtable();
                h.put("one", "1");
                h.put("two", "2");
                Enumeration e = h.keys();
                while (e.hasMoreElements()) {
                    String st = (String) e.nextElement();
                    System.out.println(st + " = " + h.get(st));
                }
                Vector v = new Vector();
                v.addElement("a");
                v.addElement("b");
                System.out.println(v.size());
            }
        }
    "#);
    assert_eq!(out, "one = 1\ntwo = 2\n2\n");
}

#[test]
fn arrays_and_strings() {
    let out = run(r#"
        class Main {
            static void main() {
                int[] a = new int[5];
                for (int i = 0; i < a.length; i++) {
                    a[i] = i * i;
                }
                int sum = 0;
                for (int i = 0; i < a.length; i++) {
                    sum += a[i];
                }
                System.out.println(sum);
                String[] names = new String[2];
                names[0] = "maya";
                names[1] = "java";
                System.out.println(names[0].length() + names[1].length());
            }
        }
    "#);
    assert_eq!(out, "30\n8\n");
}

#[test]
fn exceptions() {
    let out = run(r#"
        class Main {
            static void main() {
                try {
                    throw new RuntimeException("boom");
                } catch (RuntimeException e) {
                    System.out.println("caught " + e.getMessage());
                }
                try {
                    int x = 1 / 0;
                    System.out.println(x);
                } catch (ArithmeticException e) {
                    System.out.println("div by zero");
                }
            }
        }
    "#);
    assert_eq!(out, "caught boom\ndiv by zero\n");
}

#[test]
fn statics_and_cross_class() {
    let out = run(r#"
        class Counter {
            static int count = 0;
            static int next() {
                count++;
                return count;
            }
        }
        class Main {
            static void main() {
                System.out.println(Counter.next());
                System.out.println(Counter.next());
                System.out.println(Counter.count);
            }
        }
    "#);
    assert_eq!(out, "1\n2\n2\n");
}

#[test]
fn type_errors_are_rejected() {
    let cases = [
        // bad operand types
        "class Main { static void main() { boolean b = true; int x = b - 1; } }",
        // unknown method
        "class Main { static void main() { String s = \"x\"; s.nope(); } }",
        // return mismatch
        "class Main { static int f() { return \"s\"; } static void main() { f(); } }",
        // unknown type
        "class Main { static void main() { Bogus b = null; } }",
        // break outside loop
        "class Main { static void main() { break; } }",
    ];
    for src in cases {
        let c = Compiler::new();
        assert!(
            c.compile_and_run("Main.maya", src, "Main").is_err(),
            "should reject: {src}"
        );
    }
}

#[test]
fn syntax_errors_are_rejected() {
    let cases = [
        "class Main { static void main() { int x = ; } }",
        "class Main { static void main() { if } }",
        "class Main { void }",
    ];
    for src in cases {
        let c = Compiler::new();
        assert!(
            c.compile_and_run("Main.maya", src, "Main").is_err(),
            "should reject: {src}"
        );
    }
}

#[test]
fn ternary_casts_and_unary() {
    let out = run(r#"
        class Main {
            static void main() {
                int a = -5;
                int b = a < 0 ? -a : a;
                System.out.println(b);
                double d = 7.5;
                int t = (int) d;
                System.out.println(t);
                System.out.println(!false);
                System.out.println(~0);
                long big = 1000000 * 1000L;
                System.out.println(big);
            }
        }
    "#);
    assert_eq!(out, "5\n7\ntrue\n-1\n1000000000\n");
}
