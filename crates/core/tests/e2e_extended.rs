//! Extended end-to-end coverage: interfaces, multi-file packages, compound
//! operators, strings, and error recovery surfaces.

use maya_core::Compiler;

fn run(src: &str) -> String {
    let c = Compiler::new();
    match c.compile_and_run("Main.maya", src, "Main") {
        Ok(out) => out,
        Err(e) => panic!("compile/run failed: {} @ {:?}", e.message, e.span),
    }
}

#[test]
fn interfaces_and_dynamic_dispatch() {
    let out = run(r#"
        interface Speaker {
            String speak();
        }
        class Dog implements Speaker {
            String speak() { return "woof"; }
        }
        class Cat implements Speaker {
            String speak() { return "meow"; }
        }
        class Main {
            static void say(Speaker s) { System.out.println(s.speak()); }
            static void main() {
                say(new Dog());
                say(new Cat());
                Speaker s = new Dog();
                System.out.println(s instanceof Speaker);
            }
        }
    "#);
    assert_eq!(out, "woof\nmeow\ntrue\n");
}

#[test]
fn abstract_methods_and_overriding() {
    let out = run(r#"
        abstract class Animal {
            abstract String noise();
            String describe() { return "says " + noise(); }
        }
        class Cow extends Animal {
            String noise() { return "moo"; }
        }
        class Main {
            static void main() {
                Animal a = new Cow();
                System.out.println(a.describe());
            }
        }
    "#);
    assert_eq!(out, "says moo\n");
}

#[test]
fn multi_file_packages_and_imports() {
    let c = Compiler::new();
    c.add_source(
        "geometry/Point.maya",
        r#"
        package geometry;
        class Point {
            int x;
            int y;
            Point(int x0, int y0) { x = x0; y = y0; }
            int dot(Point o) { return x * o.x + y * o.y; }
        }
        "#,
    )
    .unwrap();
    c.add_source(
        "Main.maya",
        r#"
        import geometry.Point;
        class Main {
            static void main() {
                Point a = new Point(1, 2);
                Point b = new Point(3, 4);
                System.out.println(a.dot(b));
            }
        }
        "#,
    )
    .unwrap();
    c.compile().unwrap();
    assert_eq!(c.run_main("Main").unwrap(), "11\n");
}

#[test]
fn wildcard_imports_across_files() {
    let c = Compiler::new();
    c.add_source(
        "util/Pair.maya",
        r#"
        package util;
        class Pair {
            int a;
            int b;
            Pair(int a0, int b0) { a = a0; b = b0; }
            int sum() { return a + b; }
        }
        "#,
    )
    .unwrap();
    c.add_source(
        "Main.maya",
        r#"
        import util.*;
        class Main {
            static void main() {
                System.out.println(new Pair(20, 22).sum());
            }
        }
        "#,
    )
    .unwrap();
    c.compile().unwrap();
    assert_eq!(c.run_main("Main").unwrap(), "42\n");
}

#[test]
fn compound_assignment_and_shifts() {
    let out = run(r#"
        class Main {
            static void main() {
                int x = 1;
                x += 5; System.out.println(x);
                x -= 2; System.out.println(x);
                x *= 10; System.out.println(x);
                x /= 4; System.out.println(x);
                x %= 7; System.out.println(x);
                int y = 1 << 6;
                System.out.println(y);
                System.out.println(y >> 3);
                System.out.println(-8 >>> 28);
                System.out.println(5 & 3);
                System.out.println(5 | 3);
                System.out.println(5 ^ 3);
            }
        }
    "#);
    assert_eq!(out, "6\n4\n40\n10\n3\n64\n8\n15\n1\n7\n6\n");
}

#[test]
fn string_library() {
    let out = run(r#"
        class Main {
            static void main() {
                String s = "hello world";
                System.out.println(s.length());
                System.out.println(s.substring(0, 5));
                System.out.println(s.indexOf("world"));
                System.out.println(s.charAt(4));
                System.out.println(s.equals("hello world"));
                StringBuffer b = new StringBuffer();
                b.append("a").append(1).append(true);
                System.out.println(b.toString());
                System.out.println(Integer.parseInt(" 42 "));
                System.out.println(Math.max(3, Math.abs(-9)));
            }
        }
    "#);
    assert_eq!(out, "11\nhello\n6\no\ntrue\na1true\n42\n9\n");
}

#[test]
fn try_finally_ordering() {
    let out = run(r#"
        class Main {
            static void main() {
                try {
                    System.out.println("body");
                    throw new RuntimeException("x");
                } catch (RuntimeException e) {
                    System.out.println("catch");
                } finally {
                    System.out.println("finally");
                }
                System.out.println("after");
            }
        }
    "#);
    assert_eq!(out, "body\ncatch\nfinally\nafter\n");
}

#[test]
fn conditional_and_logical_short_circuit() {
    let out = run(r#"
        class Main {
            static boolean boom() { throw new RuntimeException("boom"); }
            static void main() {
                boolean a = false;
                System.out.println(a && boom());
                System.out.println(true || boom());
                System.out.println(a ? 1 : 2);
            }
        }
    "#);
    assert_eq!(out, "false\ntrue\n2\n");
}

#[test]
fn duplicate_class_names_rejected() {
    let c = Compiler::new();
    c.add_source("A.maya", "class Dup { }").unwrap();
    c.add_source("B.maya", "class Dup { }").unwrap();
    assert!(c.compile().is_err());
}

#[test]
fn null_pointer_and_class_cast_exceptions() {
    let out = run(r#"
        class A { }
        class B { }
        class Main {
            static void main() {
                try {
                    String s = null;
                    s.length();
                } catch (NullPointerException e) {
                    System.out.println("npe");
                }
                try {
                    Object o = new A();
                    B b = (B) o;
                    System.out.println(b);
                } catch (ClassCastException e) {
                    System.out.println("cce");
                }
            }
        }
    "#);
    assert_eq!(out, "npe\ncce\n");
}

#[test]
fn field_initializers_and_static_order() {
    let out = run(r#"
        class Config {
            static int base = 10;
            static int derived = base * 4 + 2;
            int instanceVal = derived + 1;
        }
        class Main {
            static void main() {
                System.out.println(Config.derived);
                System.out.println(new Config().instanceVal);
            }
        }
    "#);
    assert_eq!(out, "42\n43\n");
}

#[test]
fn long_arithmetic_and_chars() {
    let out = run(r#"
        class Main {
            static void main() {
                long big = 4000000000L;
                System.out.println(big + 1);
                char c = 'A';
                int code = c + 1;
                System.out.println(code);
                System.out.println((char) code);
                double d = 1.5;
                System.out.println(d * 3);
            }
        }
    "#);
    assert_eq!(out, "4000000001\n66\nB\n4.5\n");
}

#[test]
fn vector_in_maya_package() {
    // maya.util.Vector is usable like java.util.Vector, plus
    // getElementData (paper §3).
    let out = run(r#"
        class Main {
            static void main() {
                maya.util.Vector v = new maya.util.Vector();
                v.addElement("m");
                Object[] data = v.getElementData();
                System.out.println(data.length);
                System.out.println((String) data[0]);
            }
        }
    "#);
    assert_eq!(out, "1\nm\n");
}
