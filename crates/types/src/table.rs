//! The class table: every class and interface known to a compilation, with
//! subtyping, member lookup, name resolution, and the intercession API.

use crate::{Type, TypeError};
use maya_ast::{Expr, LazyNode, Modifiers, PrimKind, TypeName, TypeNameKind};
use maya_lexer::{sym, Span, Symbol};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Identifies a class or interface in a [`ClassTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// A field member.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    pub name: Symbol,
    pub ty: Type,
    pub modifiers: Modifiers,
    pub init: Option<Expr>,
}

/// A method member. `body` is lazy (forced when compiled/interpreted);
/// `native` names a runtime-library implementation. `specializers` carries
/// MultiJava `@`-specializers, `None` per unspecialized position.
#[derive(Clone, Debug)]
pub struct MethodInfo {
    pub name: Symbol,
    pub params: Vec<Type>,
    pub param_names: Vec<Symbol>,
    pub ret: Type,
    pub modifiers: Modifiers,
    pub body: Option<LazyNode>,
    pub native: Option<Symbol>,
    pub specializers: Vec<Option<Type>>,
}

impl MethodInfo {
    /// A convenience constructor for runtime-library (native) methods.
    pub fn native(name: &str, params: Vec<Type>, ret: Type, key: &str) -> MethodInfo {
        MethodInfo {
            name: sym(name),
            param_names: (0..params.len())
                .map(|i| sym(&format!("a{i}")))
                .collect(),
            params,
            ret,
            modifiers: Modifiers::just(maya_ast::Modifier::Public),
            body: None,
            native: Some(sym(key)),
            specializers: Vec::new(),
        }
    }

    /// True when this method is `static`.
    pub fn is_static(&self) -> bool {
        self.modifiers.is_static()
    }
}

/// A constructor member.
#[derive(Clone, Debug)]
pub struct CtorInfo {
    pub params: Vec<Type>,
    pub param_names: Vec<Symbol>,
    pub modifiers: Modifiers,
    pub body: Option<LazyNode>,
    pub native: Option<Symbol>,
}

/// One class or interface.
#[derive(Clone, Debug)]
pub struct ClassInfo {
    pub fqcn: Symbol,
    pub simple: Symbol,
    pub package: Symbol,
    pub is_interface: bool,
    pub superclass: Option<ClassId>,
    pub interfaces: Vec<ClassId>,
    pub fields: Vec<FieldInfo>,
    pub methods: Vec<MethodInfo>,
    pub ctors: Vec<CtorInfo>,
    pub modifiers: Modifiers,
}

impl ClassInfo {
    /// A skeleton class with the given fully qualified name.
    pub fn new(fqcn: &str, is_interface: bool) -> ClassInfo {
        let (package, simple) = match fqcn.rfind('.') {
            Some(i) => (&fqcn[..i], &fqcn[i + 1..]),
            None => ("", fqcn),
        };
        ClassInfo {
            fqcn: sym(fqcn),
            simple: sym(simple),
            package: sym(package),
            is_interface,
            superclass: None,
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            ctors: Vec::new(),
            modifiers: Modifiers::none(),
        }
    }
}

/// Lexical name-resolution context: the enclosing package, imports, and any
/// locally declared (possibly shadowing) class names.
#[derive(Clone, Debug, Default)]
pub struct ResolveCtx {
    pub package: Option<Symbol>,
    /// Fully qualified names from `import a.b.C;`.
    pub single_imports: Vec<Symbol>,
    /// Package names from `import a.b.*;`.
    pub wildcard_imports: Vec<Symbol>,
    /// Locally visible class names (shadow everything else).
    pub local_classes: Vec<(Symbol, ClassId)>,
}

/// The registry of classes, with per-class interior mutability so that
/// metaprograms can add members ("intercession", paper §3.2) while other
/// parts of the compiler hold the table.
#[derive(Default)]
pub struct ClassTable {
    classes: RefCell<Vec<Rc<RefCell<ClassInfo>>>>,
    by_fqcn: RefCell<HashMap<Symbol, ClassId>>,
    /// Bumped on every structural mutation (declare / add or remove
    /// members).  Runtime caches keyed on class shape — field layouts,
    /// vtable rows, inline caches — compare this to decide whether their
    /// entries are still valid.
    version: Cell<u64>,
}

impl ClassTable {
    /// An empty table.
    pub fn new() -> ClassTable {
        ClassTable::default()
    }

    /// A table pre-seeded with `java.lang.Object` and `java.lang.String`
    /// (the minimum the checker itself assumes).
    pub fn bootstrap() -> ClassTable {
        let t = ClassTable::new();
        t.declare(ClassInfo::new("java.lang.Object", false))
            .expect("fresh table");
        let mut string = ClassInfo::new("java.lang.String", false);
        string.superclass = t.by_fqcn_str("java.lang.Object");
        t.declare(string).expect("fresh table");
        t
    }

    /// Declares a class.
    ///
    /// # Errors
    ///
    /// Fails if a class with the same fully qualified name exists.
    pub fn declare(&self, info: ClassInfo) -> Result<ClassId, TypeError> {
        let mut by_fqcn = self.by_fqcn.borrow_mut();
        if by_fqcn.contains_key(&info.fqcn) {
            return Err(TypeError::new(
                format!("duplicate class {}", info.fqcn),
                Span::DUMMY,
            ));
        }
        let mut classes = self.classes.borrow_mut();
        let id = ClassId(classes.len() as u32);
        by_fqcn.insert(info.fqcn, id);
        classes.push(Rc::new(RefCell::new(info)));
        self.bump_version();
        Ok(id)
    }

    /// Current structural version of the table (see the `version` field).
    pub fn version(&self) -> u64 {
        self.version.get()
    }

    /// Records a structural change so shape-dependent caches re-validate.
    pub fn bump_version(&self) {
        self.version.set(self.version.get() + 1);
    }

    /// Number of declared classes.
    pub fn len(&self) -> usize {
        self.classes.borrow().len()
    }

    /// True when no classes are declared.
    pub fn is_empty(&self) -> bool {
        self.classes.borrow().is_empty()
    }

    /// The shared cell for a class (introspection handle).
    pub fn info(&self, id: ClassId) -> Rc<RefCell<ClassInfo>> {
        self.classes.borrow()[id.0 as usize].clone()
    }

    /// Looks up a class by interned fully qualified name.
    pub fn by_fqcn(&self, fqcn: Symbol) -> Option<ClassId> {
        self.by_fqcn.borrow().get(&fqcn).copied()
    }

    /// Looks up a class by fully qualified name.
    pub fn by_fqcn_str(&self, fqcn: &str) -> Option<ClassId> {
        self.by_fqcn(sym(fqcn))
    }

    /// The fully qualified name of a class.
    pub fn fqcn(&self, id: ClassId) -> Symbol {
        self.info(id).borrow().fqcn
    }

    /// Renders a type for diagnostics, using class names.
    pub fn describe(&self, t: &Type) -> String {
        match t {
            Type::Class(id) => self.fqcn(*id).to_string(),
            Type::Array(e) => format!("{}[]", self.describe(e)),
            other => other.to_string(),
        }
    }

    /// Adds a method to a class (intercession).
    pub fn add_method(&self, id: ClassId, m: MethodInfo) {
        self.info(id).borrow_mut().methods.push(m);
        self.bump_version();
    }

    /// Removes methods matching a predicate (intercession).
    pub fn retain_methods(&self, id: ClassId, keep: impl FnMut(&MethodInfo) -> bool) {
        self.info(id).borrow_mut().methods.retain(keep);
        self.bump_version();
    }

    /// Adds a field to a class (intercession).
    pub fn add_field(&self, id: ClassId, f: FieldInfo) {
        self.info(id).borrow_mut().fields.push(f);
        self.bump_version();
    }

    /// Adds a constructor to a class.
    pub fn add_ctor(&self, id: ClassId, c: CtorInfo) {
        self.info(id).borrow_mut().ctors.push(c);
        self.bump_version();
    }

    /// True iff `a` equals `b` or `b` is reachable from `a` through
    /// superclasses and interfaces.
    pub fn is_subclass_or_eq(&self, a: ClassId, b: ClassId) -> bool {
        if a == b {
            return true;
        }
        let mut seen = Vec::new();
        let mut work = vec![a];
        while let Some(c) = work.pop() {
            if c == b {
                return true;
            }
            if seen.contains(&c) {
                continue;
            }
            seen.push(c);
            let info = self.info(c);
            let info = info.borrow();
            if let Some(s) = info.superclass {
                work.push(s);
            }
            work.extend(info.interfaces.iter().copied());
        }
        false
    }

    /// Reference/primitive subtyping (`a <: b`).
    pub fn is_subtype(&self, a: &Type, b: &Type) -> bool {
        match (a, b) {
            (Type::Error, _) | (_, Type::Error) => true,
            (x, y) if x == y => true,
            (Type::Null, t) => t.is_reference(),
            (Type::Class(x), Type::Class(y)) => self.is_subclass_or_eq(*x, *y),
            (Type::Array(_), Type::Class(y)) => {
                // Arrays are subtypes of Object.
                Some(*y) == self.by_fqcn_str("java.lang.Object")
            }
            (Type::Array(x), Type::Array(y)) => {
                x.is_reference() && y.is_reference() && self.is_subtype(x, y)
            }
            _ => false,
        }
    }

    fn widens(from: PrimKind, to: PrimKind) -> bool {
        use PrimKind::*;
        if from == to {
            return true;
        }
        let order = |p: PrimKind| match p {
            Byte => 1,
            Short | Char => 2,
            Int => 3,
            Long => 4,
            Float => 5,
            Double => 6,
            Boolean => 0,
        };
        from != Boolean && to != Boolean && order(from) < order(to)
    }

    /// Assignability (`from` may be assigned to `to`): identity, primitive
    /// widening, or reference subtyping.
    pub fn is_assignable(&self, from: &Type, to: &Type) -> bool {
        match (from, to) {
            (Type::Prim(a), Type::Prim(b)) => Self::widens(*a, *b),
            _ => self.is_subtype(from, to),
        }
    }

    /// Finds a field by name, walking up the hierarchy.
    pub fn lookup_field(&self, id: ClassId, name: Symbol) -> Option<(ClassId, FieldInfo)> {
        let mut cur = Some(id);
        while let Some(c) = cur {
            let info = self.info(c);
            let info = info.borrow();
            if let Some(f) = info.fields.iter().find(|f| f.name == name) {
                return Some((c, f.clone()));
            }
            cur = info.superclass;
        }
        None
    }

    /// All instance fields of `id` in *layout order*: superclass fields
    /// first (recursively), then own fields in declaration order, with
    /// re-declared names collapsed onto the first (inherited) occurrence.
    /// Runtimes can use this to assign every field a fixed offset such
    /// that a subclass layout is a prefix-extension of its superclass's.
    pub fn fields_in_layout_order(&self, id: ClassId) -> Vec<(ClassId, FieldInfo)> {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.info(c).borrow().superclass;
        }
        let mut out: Vec<(ClassId, FieldInfo)> = Vec::new();
        for c in chain.into_iter().rev() {
            let info = self.info(c);
            let info = info.borrow();
            for f in &info.fields {
                if !out.iter().any(|(_, g)| g.name == f.name) {
                    out.push((c, f.clone()));
                }
            }
        }
        out
    }

    /// All methods with the given name visible on `id` (own + inherited,
    /// with overrides removed).
    pub fn methods_named(&self, id: ClassId, name: Symbol) -> Vec<(ClassId, MethodInfo)> {
        let mut out: Vec<(ClassId, MethodInfo)> = Vec::new();
        let mut seen_sigs: Vec<Vec<Type>> = Vec::new();
        let mut work = vec![id];
        let mut visited = Vec::new();
        while let Some(c) = work.pop() {
            if visited.contains(&c) {
                continue;
            }
            visited.push(c);
            let info = self.info(c);
            let info = info.borrow();
            for m in info.methods.iter().filter(|m| m.name == name) {
                if seen_sigs.iter().any(|s| s == &m.params) {
                    continue; // overridden above
                }
                seen_sigs.push(m.params.clone());
                out.push((c, m.clone()));
            }
            if let Some(s) = info.superclass {
                work.push(s);
            }
            work.extend(info.interfaces.iter().copied());
        }
        out
    }

    /// The constructors of a class.
    pub fn ctors(&self, id: ClassId) -> Vec<CtorInfo> {
        self.info(id).borrow().ctors.clone()
    }

    /// Resolves a simple class name under a lexical context. Order: local
    /// (shadowing) classes, the current package, single imports, wildcard
    /// imports, `java.lang`, the default package.
    pub fn resolve_simple(&self, name: Symbol, ctx: &ResolveCtx) -> Option<ClassId> {
        if let Some((_, id)) = ctx.local_classes.iter().rev().find(|(n, _)| *n == name) {
            return Some(*id);
        }
        if let Some(pkg) = ctx.package {
            if let Some(id) = self.by_fqcn_str(&format!("{pkg}.{name}")) {
                return Some(id);
            }
        }
        for imp in &ctx.single_imports {
            let s = imp.as_str();
            if s.rsplit('.').next() == Some(name.as_str()) {
                if let Some(id) = self.by_fqcn(*imp) {
                    return Some(id);
                }
            }
        }
        for pkg in &ctx.wildcard_imports {
            if let Some(id) = self.by_fqcn_str(&format!("{pkg}.{name}")) {
                return Some(id);
            }
        }
        if let Some(id) = self.by_fqcn_str(&format!("java.lang.{name}")) {
            return Some(id);
        }
        self.by_fqcn(name)
    }

    /// Resolves a syntactic type name to a semantic type.
    ///
    /// # Errors
    ///
    /// Fails when the name does not denote a known type.
    pub fn resolve_type_name(&self, tn: &TypeName, ctx: &ResolveCtx) -> Result<Type, TypeError> {
        match &tn.kind {
            TypeNameKind::Prim(p) => Ok(Type::Prim(*p)),
            TypeNameKind::Void => Ok(Type::Void),
            TypeNameKind::Array(e) => Ok(self.resolve_type_name(e, ctx)?.array_of()),
            TypeNameKind::Strict(fqcn) => self
                .by_fqcn(*fqcn)
                .map(Type::Class)
                .ok_or_else(|| TypeError::new(format!("unknown type {fqcn}"), tn.span)),
            TypeNameKind::Named(parts) => {
                if parts.len() == 1 {
                    self.resolve_simple(parts[0].sym, ctx)
                        .map(Type::Class)
                        .ok_or_else(|| {
                            TypeError::new(format!("unknown type {}", parts[0].sym), tn.span)
                        })
                } else {
                    let dotted: Vec<&str> = parts.iter().map(|p| p.sym.as_str()).collect();
                    let dotted = dotted.join(".");
                    // A locally shadowing class name makes the qualified
                    // form inaccessible (paper §4.3's `class java` example).
                    if let Some((shadow, _)) = ctx
                        .local_classes
                        .iter()
                        .find(|(n, _)| *n == parts[0].sym)
                    {
                        return Err(TypeError::new(
                            format!(
                                "name {dotted} is inaccessible: {shadow} is shadowed by a local class"
                            ),
                            tn.span,
                        ));
                    }
                    self.by_fqcn_str(&dotted).map(Type::Class).ok_or_else(|| {
                        TypeError::new(format!("unknown type {dotted}"), tn.span)
                    })
                }
            }
        }
    }
}

impl fmt::Debug for ClassTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassTable")
            .field("classes", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_hierarchy() -> (ClassTable, ClassId, ClassId, ClassId) {
        let t = ClassTable::bootstrap();
        let obj = t.by_fqcn_str("java.lang.Object").unwrap();
        let mut c = ClassInfo::new("p.C", false);
        c.superclass = Some(obj);
        let c = t.declare(c).unwrap();
        let mut d = ClassInfo::new("p.D", false);
        d.superclass = Some(c);
        let d = t.declare(d).unwrap();
        (t, obj, c, d)
    }

    #[test]
    fn subtyping() {
        let (t, obj, c, d) = table_with_hierarchy();
        assert!(t.is_subclass_or_eq(d, c));
        assert!(t.is_subclass_or_eq(d, obj));
        assert!(!t.is_subclass_or_eq(c, d));
        assert!(t.is_subtype(&Type::Class(d), &Type::Class(c)));
        assert!(t.is_subtype(&Type::Null, &Type::Class(c)));
        assert!(t.is_subtype(&Type::Class(c).array_of(), &Type::Class(obj)));
        assert!(t.is_subtype(
            &Type::Class(d).array_of(),
            &Type::Class(c).array_of()
        ));
    }

    #[test]
    fn primitive_widening() {
        let t = ClassTable::new();
        assert!(t.is_assignable(&Type::int(), &Type::Prim(PrimKind::Long)));
        assert!(t.is_assignable(&Type::int(), &Type::Prim(PrimKind::Double)));
        assert!(!t.is_assignable(&Type::Prim(PrimKind::Long), &Type::int()));
        assert!(!t.is_assignable(&Type::boolean(), &Type::int()));
        assert!(!t.is_assignable(
            &Type::int().array_of(),
            &Type::Prim(PrimKind::Long).array_of()
        ));
    }

    #[test]
    fn member_lookup_walks_supers() {
        let (t, _obj, c, d) = table_with_hierarchy();
        t.add_field(
            c,
            FieldInfo {
                name: sym("x"),
                ty: Type::int(),
                modifiers: Modifiers::none(),
                init: None,
            },
        );
        t.add_method(c, MethodInfo::native("m", vec![], Type::int(), "p.C.m"));
        let (owner, f) = t.lookup_field(d, sym("x")).unwrap();
        assert_eq!(owner, c);
        assert_eq!(f.ty, Type::int());
        let ms = t.methods_named(d, sym("m"));
        assert_eq!(ms.len(), 1);
        // Override in D hides C's method.
        t.add_method(d, MethodInfo::native("m", vec![], Type::int(), "p.D.m"));
        let ms = t.methods_named(d, sym("m"));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].0, d);
    }

    #[test]
    fn name_resolution_order() {
        let (t, _obj, c, _d) = table_with_hierarchy();
        let mut ctx = ResolveCtx::default();
        assert_eq!(t.resolve_simple(sym("C"), &ctx), None);
        ctx.wildcard_imports.push(sym("p"));
        assert_eq!(t.resolve_simple(sym("C"), &ctx), Some(c));
        // A local class shadows the import.
        let shadow = t.declare(ClassInfo::new("q.C", false)).unwrap();
        ctx.local_classes.push((sym("C"), shadow));
        assert_eq!(t.resolve_simple(sym("C"), &ctx), Some(shadow));
        // java.lang fallback.
        assert!(t.resolve_simple(sym("String"), &ResolveCtx::default()).is_some());
    }

    #[test]
    fn qualified_name_shadowed_by_local_class() {
        // Paper §4.3: java.lang.System cannot be referenced when a local
        // class is named `java`.
        let t = ClassTable::bootstrap();
        t.declare(ClassInfo::new("java.lang.System", false)).unwrap();
        let local_java = t.declare(ClassInfo::new("p.java", false)).unwrap();
        let mut ctx = ResolveCtx::default();
        let tn = TypeName::named("java.lang.System");
        assert!(t.resolve_type_name(&tn, &ctx).is_ok());
        ctx.local_classes.push((sym("java"), local_java));
        assert!(t.resolve_type_name(&tn, &ctx).is_err());
        // A strict name bypasses the shadowing (referential transparency).
        let strict = TypeName::strict(sym("java.lang.System"));
        assert!(t.resolve_type_name(&strict, &ctx).is_ok());
    }

    #[test]
    fn duplicate_class_rejected() {
        let t = ClassTable::new();
        t.declare(ClassInfo::new("A", false)).unwrap();
        assert!(t.declare(ClassInfo::new("A", false)).is_err());
    }
}
