//! The demand-driven type checker.
//!
//! Types are computed on demand (paper §4): the parser asks for the static
//! type of an expression while dispatch is in progress, and the checker in
//! turn *forces* lazy nodes through its [`CheckHost`] when it reaches them.

use crate::{
    ClassId, ClassTable, CtorInfo, MethodInfo, ResolveCtx, Scope, Type, TypeError, VarBinding,
    VarKind,
};
use maya_ast::{
    BinOp, Expr, ExprKind, LazyNode, Lit, MethodName, Node, NodeKind, PrimKind, Stmt, StmtKind,
    UnOp,
};
use maya_lexer::{Span, Symbol};

/// Host services the checker needs from the compiler: forcing lazy nodes and
/// typing template literals.
pub trait CheckHost {
    /// Forces a lazy node (parses it under its captured environment, with
    /// the *current* scope for any type-directed dispatch inside).
    ///
    /// # Errors
    ///
    /// Propagates parse and dispatch errors from the forced syntax.
    fn force_lazy(&mut self, lazy: &LazyNode, scope: &mut Scope) -> Result<(), TypeError>;

    /// The type of a template literal with the given goal kind (a
    /// `maya.tree.*` class).
    ///
    /// # Errors
    ///
    /// Fails when templates are not available in this context.
    fn template_type(&mut self, goal: NodeKind) -> Result<Type, TypeError> {
        let _ = goal;
        Err(TypeError::new(
            "templates are not available in this context",
            Span::DUMMY,
        ))
    }
}

/// A host that rejects lazy nodes — usable when input is fully forced.
pub struct NoHost;

impl CheckHost for NoHost {
    fn force_lazy(&mut self, _lazy: &LazyNode, _scope: &mut Scope) -> Result<(), TypeError> {
        Err(TypeError::new(
            "internal error: lazy node encountered without a forcing host",
            Span::DUMMY,
        ))
    }
}

/// What a (possibly partial) expression denotes during resolution.
enum Denot {
    Val(Type),
    Class(ClassId),
    Package(String),
}

/// The type checker. Borrowed pieces: the class table, the lexical
/// resolution context, and the forcing host.
pub struct Checker<'a> {
    pub ct: &'a ClassTable,
    pub ctx: &'a ResolveCtx,
    pub host: &'a mut dyn CheckHost,
    loop_depth: u32,
}

impl<'a> Checker<'a> {
    /// Creates a checker.
    pub fn new(ct: &'a ClassTable, ctx: &'a ResolveCtx, host: &'a mut dyn CheckHost) -> Checker<'a> {
        Checker {
            ct,
            ctx,
            host,
            loop_depth: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>, span: Span) -> Result<T, TypeError> {
        Err(TypeError::new(msg, span))
    }

    /// The static type of an expression — `Expression.getStaticType()` of
    /// the paper's reflection API.
    ///
    /// # Errors
    ///
    /// Reports unresolved names, bad operand types, failed overload
    /// resolution, and errors from forcing lazy subterms.
    pub fn type_of_expr(&mut self, e: &Expr, scope: &mut Scope) -> Result<Type, TypeError> {
        let _p = maya_telemetry::phase(maya_telemetry::Phase::TypeCheck);
        match self.denot_expr(e, scope)? {
            Denot::Val(t) => Ok(t),
            Denot::Class(c) => self.err(
                format!("class {} used where a value is required", self.ct.fqcn(c)),
                e.span,
            ),
            Denot::Package(p) => {
                self.err(format!("package {p} used where a value is required"), e.span)
            }
        }
    }

    fn denot_expr(&mut self, e: &Expr, scope: &mut Scope) -> Result<Denot, TypeError> {
        let span = e.span;
        let val = |t: Type| Ok(Denot::Val(t));
        match &e.kind {
            ExprKind::Literal(l) => val(self.lit_type(l)),
            ExprKind::Name(id) => self.denot_name(id.sym, span, scope),
            ExprKind::FieldAccess(target, name) => {
                let target_denot = self.denot_expr(target, scope)?;
                self.denot_member(target_denot, name.sym, span)
            }
            ExprKind::Call(mn, args) => {
                let mut arg_tys = Vec::with_capacity(args.len());
                for a in args {
                    arg_tys.push(self.type_of_expr(a, scope)?);
                }
                let m = self.resolve_call(mn, &arg_tys, span, scope)?;
                val(m.ret)
            }
            ExprKind::ArrayAccess(a, i) => {
                let at = self.type_of_expr(a, scope)?;
                let it = self.type_of_expr(i, scope)?;
                if !it.is_integral() {
                    return self.err(
                        format!("array index must be integral, found {}", self.ct.describe(&it)),
                        i.span,
                    );
                }
                match at {
                    Type::Array(el) => val(*el),
                    Type::Error => val(Type::Error),
                    other => self.err(
                        format!("cannot index non-array type {}", self.ct.describe(&other)),
                        span,
                    ),
                }
            }
            ExprKind::New(tn, args) => {
                let ty = self.ct.resolve_type_name(tn, self.ctx)?;
                let Some(cid) = ty.class_id() else {
                    return self.err(format!("cannot instantiate {}", self.ct.describe(&ty)), span);
                };
                if self.ct.info(cid).borrow().is_interface {
                    return self.err(
                        format!("cannot instantiate interface {}", self.ct.fqcn(cid)),
                        span,
                    );
                }
                let mut arg_tys = Vec::with_capacity(args.len());
                for a in args {
                    arg_tys.push(self.type_of_expr(a, scope)?);
                }
                self.resolve_ctor(cid, &arg_tys, span)?;
                val(ty)
            }
            ExprKind::NewArray { elem, dims, .. } => {
                let base = self.ct.resolve_type_name(elem, self.ctx)?;
                let mut ty = base;
                for d in dims {
                    let dt = self.type_of_expr(d, scope)?;
                    if !dt.is_integral() {
                        return self.err("array dimension must be integral", d.span);
                    }
                    ty = ty.array_of();
                }
                if let ExprKind::NewArray { extra_dims, .. } = &e.kind {
                    for _ in 0..*extra_dims {
                        ty = ty.array_of();
                    }
                }
                val(ty)
            }
            ExprKind::Binary(op, l, r) => {
                let lt = self.type_of_expr(l, scope)?;
                let rt = self.type_of_expr(r, scope)?;
                val(self.binary_type(*op, &lt, &rt, span)?)
            }
            ExprKind::Unary(op, x) => {
                let t = self.type_of_expr(x, scope)?;
                let out = match op {
                    UnOp::Neg | UnOp::Plus => {
                        if !t.is_numeric() && t != Type::Error {
                            return self.err("unary +/- requires a numeric operand", span);
                        }
                        unary_promote(&t)
                    }
                    UnOp::Not => {
                        if t != Type::boolean() && t != Type::Error {
                            return self.err("! requires a boolean operand", span);
                        }
                        Type::boolean()
                    }
                    UnOp::BitNot => {
                        if !t.is_integral() && t != Type::Error {
                            return self.err("~ requires an integral operand", span);
                        }
                        unary_promote(&t)
                    }
                };
                val(out)
            }
            ExprKind::IncDec(_, _, x) => {
                let t = self.type_of_expr(x, scope)?;
                if !t.is_numeric() && t != Type::Error {
                    return self.err("++/-- requires a numeric operand", span);
                }
                self.require_lvalue(x)?;
                val(t)
            }
            ExprKind::Assign(op, l, r) => {
                let lt = self.type_of_expr(l, scope)?;
                let rt = self.type_of_expr(r, scope)?;
                self.require_lvalue(l)?;
                match op {
                    None => {
                        if !self.ct.is_assignable(&rt, &lt) {
                            return self.err(
                                format!(
                                    "cannot assign {} to {}",
                                    self.ct.describe(&rt),
                                    self.ct.describe(&lt)
                                ),
                                span,
                            );
                        }
                    }
                    Some(op) => {
                        // Compound assignment: the binary op must be valid
                        // and its result convertible back (Java narrows
                        // implicitly here; we accept it).
                        self.binary_type(*op, &lt, &rt, span)?;
                    }
                }
                val(lt)
            }
            ExprKind::Cond(c, t, f) => {
                let ct_ = self.type_of_expr(c, scope)?;
                if ct_ != Type::boolean() && ct_ != Type::Error {
                    return self.err("condition of ?: must be boolean", c.span);
                }
                let tt = self.type_of_expr(t, scope)?;
                let ft = self.type_of_expr(f, scope)?;
                val(self.merge_types(&tt, &ft, span)?)
            }
            ExprKind::Cast(tn, x) => {
                let target = self.ct.resolve_type_name(tn, self.ctx)?;
                let source = self.type_of_expr(x, scope)?;
                let ok = match (&source, &target) {
                    (s, t) if s.is_numeric() && t.is_numeric() => true,
                    (s, t) if s.is_reference() && t.is_reference() => {
                        // Up/downcasts allowed; unrelated classes allowed
                        // only through interfaces — we accept any ref cast
                        // and let the runtime check it.
                        true
                    }
                    (Type::Error, _) | (_, Type::Error) => true,
                    (s, t) => s == t,
                };
                if !ok {
                    return self.err(
                        format!(
                            "cannot cast {} to {}",
                            self.ct.describe(&source),
                            self.ct.describe(&target)
                        ),
                        span,
                    );
                }
                val(target)
            }
            ExprKind::Instanceof(x, tn) => {
                let t = self.type_of_expr(x, scope)?;
                let target = self.ct.resolve_type_name(tn, self.ctx)?;
                if !t.is_reference() && t != Type::Error {
                    return self.err("instanceof requires a reference operand", x.span);
                }
                if !target.is_reference() {
                    return self.err("instanceof requires a reference type", tn.span);
                }
                val(Type::boolean())
            }
            ExprKind::This => match scope.this_class {
                Some(c) if !scope.static_ctx => val(Type::Class(c)),
                Some(_) => self.err("this is not available in a static context", span),
                None => self.err("this is not available here", span),
            },
            ExprKind::VarRef(name) => {
                // Direct reference (Reference.makeExpr): exact local first,
                // then a field of the enclosing class even if shadowed.
                if let Some(b) = scope.lookup(*name) {
                    return val(b.ty.clone());
                }
                if let Some(c) = scope.this_class {
                    if let Some((_, f)) = self.ct.lookup_field(c, *name) {
                        return val(f.ty);
                    }
                }
                self.err(format!("unresolved direct reference {name}"), span)
            }
            ExprKind::ClassRef(fqcn) => match self.ct.by_fqcn(*fqcn) {
                Some(c) => Ok(Denot::Class(c)),
                None => self.err(format!("unknown class {fqcn}"), span),
            },
            ExprKind::Template(t) => val(self.host.template_type(t.goal)?),
            ExprKind::Lazy(l) => {
                self.host.force_lazy(l, scope)?;
                let node = l.forced_node().ok_or_else(|| {
                    TypeError::new("internal error: lazy node not fulfilled", span)
                })?;
                match node.into_expr() {
                    Some(inner) => self.denot_expr(&inner, scope),
                    None => self.err("lazy node did not produce an expression", span),
                }
            }
            ExprKind::TypeDims(_) => {
                self.err("array-type syntax used where a value is required", span)
            }
        }
    }

    fn lit_type(&self, l: &Lit) -> Type {
        match l {
            Lit::Int(_) => Type::int(),
            Lit::Long(_) => Type::Prim(PrimKind::Long),
            Lit::Float(_) => Type::Prim(PrimKind::Float),
            Lit::Double(_) => Type::Prim(PrimKind::Double),
            Lit::Bool(_) => Type::boolean(),
            Lit::Char(_) => Type::Prim(PrimKind::Char),
            Lit::Str(_) => self.string_type(),
            Lit::Null => Type::Null,
        }
    }

    fn string_type(&self) -> Type {
        self.ct
            .by_fqcn_str("java.lang.String")
            .map(Type::Class)
            .unwrap_or(Type::Error)
    }

    fn is_string(&self, t: &Type) -> bool {
        t.class_id()
            .is_some_and(|c| Some(c) == self.ct.by_fqcn_str("java.lang.String"))
    }

    fn denot_name(&mut self, name: Symbol, span: Span, scope: &mut Scope) -> Result<Denot, TypeError> {
        if let Some(b) = scope.lookup(name) {
            return Ok(Denot::Val(b.ty.clone()));
        }
        if let Some(c) = scope.this_class {
            if let Some((_, f)) = self.ct.lookup_field(c, name) {
                if scope.static_ctx && !f.modifiers.is_static() {
                    return self.err(
                        format!("instance field {name} referenced from a static context"),
                        span,
                    );
                }
                return Ok(Denot::Val(f.ty));
            }
        }
        if let Some(c) = self.ct.resolve_simple(name, self.ctx) {
            return Ok(Denot::Class(c));
        }
        Ok(Denot::Package(name.to_string()))
    }

    fn denot_member(&mut self, target: Denot, name: Symbol, span: Span) -> Result<Denot, TypeError> {
        match target {
            Denot::Package(prefix) => {
                let dotted = format!("{prefix}.{name}");
                if let Some(c) = self.ct.by_fqcn_str(&dotted) {
                    return Ok(Denot::Class(c));
                }
                Ok(Denot::Package(dotted))
            }
            Denot::Class(c) => {
                if let Some((_, f)) = self.ct.lookup_field(c, name) {
                    if !f.modifiers.is_static() {
                        return self.err(
                            format!(
                                "instance field {name} accessed through class {}",
                                self.ct.fqcn(c)
                            ),
                            span,
                        );
                    }
                    return Ok(Denot::Val(f.ty));
                }
                self.err(
                    format!("class {} has no static field {name}", self.ct.fqcn(c)),
                    span,
                )
            }
            Denot::Val(ty) => match &ty {
                Type::Array(_) if name.as_str() == "length" => Ok(Denot::Val(Type::int())),
                Type::Class(c) => match self.ct.lookup_field(*c, name) {
                    Some((_, f)) => Ok(Denot::Val(f.ty)),
                    None => self.err(
                        format!("type {} has no field {name}", self.ct.fqcn(*c)),
                        span,
                    ),
                },
                Type::Error => Ok(Denot::Val(Type::Error)),
                other => self.err(
                    format!("type {} has no members", self.ct.describe(other)),
                    span,
                ),
            },
        }
    }

    /// Resolves a call through Java-style overload resolution and returns
    /// the selected method.
    ///
    /// # Errors
    ///
    /// Reports unknown methods and ambiguous or inapplicable overloads.
    pub fn resolve_call(
        &mut self,
        mn: &MethodName,
        arg_tys: &[Type],
        span: Span,
        scope: &mut Scope,
    ) -> Result<MethodInfo, TypeError> {
        let name = mn.name.sym;
        let (owner, candidates, static_only): (String, Vec<(ClassId, MethodInfo)>, bool) =
            if mn.super_recv {
                let Some(this) = scope.this_class else {
                    return self.err("super call outside a class", span);
                };
                let sup = self.ct.info(this).borrow().superclass;
                let Some(sup) = sup else {
                    return self.err("class has no superclass", span);
                };
                (
                    self.ct.fqcn(sup).to_string(),
                    self.ct.methods_named(sup, name),
                    false,
                )
            } else if let Some(recv) = &mn.receiver {
                match self.denot_expr(recv, scope)? {
                    Denot::Val(Type::Class(c)) => {
                        (self.ct.fqcn(c).to_string(), self.ct.methods_named(c, name), false)
                    }
                    Denot::Val(Type::Error) => {
                        return Ok(MethodInfo::native("<error>", vec![], Type::Error, "<error>"))
                    }
                    Denot::Val(other) => {
                        return self.err(
                            format!(
                                "cannot invoke {name} on non-class type {}",
                                self.ct.describe(&other)
                            ),
                            span,
                        )
                    }
                    Denot::Class(c) => {
                        (self.ct.fqcn(c).to_string(), self.ct.methods_named(c, name), true)
                    }
                    Denot::Package(p) => {
                        return self.err(format!("package {p} has no method {name}"), span)
                    }
                }
            } else {
                let Some(this) = scope.this_class else {
                    return self.err(format!("unresolved method {name}"), span);
                };
                (
                    self.ct.fqcn(this).to_string(),
                    self.ct.methods_named(this, name),
                    false,
                )
            };

        if candidates.is_empty() {
            return self.err(format!("{owner} has no method {name}"), span);
        }
        let applicable: Vec<&(ClassId, MethodInfo)> = candidates
            .iter()
            .filter(|(_, m)| {
                m.params.len() == arg_tys.len()
                    && m.params
                        .iter()
                        .zip(arg_tys)
                        .all(|(p, a)| self.ct.is_assignable(a, p))
                    && (!static_only || m.is_static())
            })
            .collect();
        if applicable.is_empty() {
            let shown: Vec<String> = arg_tys.iter().map(|t| self.ct.describe(t)).collect();
            return self.err(
                format!(
                    "no applicable overload of {owner}.{name}({})",
                    shown.join(", ")
                ),
                span,
            );
        }
        // Most specific: m such that every other applicable n has
        // m.params pointwise assignable to n.params.
        let mut best: Vec<&(ClassId, MethodInfo)> = Vec::new();
        'outer: for m in &applicable {
            for n in &applicable {
                let more_specific = m
                    .1
                    .params
                    .iter()
                    .zip(&n.1.params)
                    .all(|(a, b)| self.ct.is_assignable(a, b));
                if !more_specific {
                    continue 'outer;
                }
            }
            best.push(m);
        }
        match best.len() {
            1 => Ok(best[0].1.clone()),
            0 => self.err(format!("ambiguous call to {owner}.{name}"), span),
            _ => {
                // Identical signatures can appear via interfaces; accept
                // the first if all share a signature.
                if best.windows(2).all(|w| w[0].1.params == w[1].1.params) {
                    Ok(best[0].1.clone())
                } else {
                    self.err(format!("ambiguous call to {owner}.{name}"), span)
                }
            }
        }
    }

    fn resolve_ctor(
        &mut self,
        cid: ClassId,
        arg_tys: &[Type],
        span: Span,
    ) -> Result<CtorInfo, TypeError> {
        let ctors = self.ct.ctors(cid);
        if ctors.is_empty() && arg_tys.is_empty() {
            // Implicit default constructor.
            return Ok(CtorInfo {
                params: vec![],
                param_names: vec![],
                modifiers: maya_ast::Modifiers::none(),
                body: None,
                native: None,
            });
        }
        let applicable: Vec<&CtorInfo> = ctors
            .iter()
            .filter(|c| {
                c.params.len() == arg_tys.len()
                    && c.params
                        .iter()
                        .zip(arg_tys)
                        .all(|(p, a)| self.ct.is_assignable(a, p))
            })
            .collect();
        match applicable.len() {
            0 => self.err(
                format!("no applicable constructor for {}", self.ct.fqcn(cid)),
                span,
            ),
            _ => Ok(applicable[0].clone()),
        }
    }

    fn binary_type(
        &mut self,
        op: BinOp,
        lt: &Type,
        rt: &Type,
        span: Span,
    ) -> Result<Type, TypeError> {
        use BinOp::*;
        if *lt == Type::Error || *rt == Type::Error {
            return Ok(Type::Error);
        }
        match op {
            Add => {
                if self.is_string(lt) || self.is_string(rt) {
                    return Ok(self.string_type());
                }
                if lt.is_numeric() && rt.is_numeric() {
                    return Ok(binary_promote(lt, rt));
                }
                self.err(
                    format!(
                        "operator + undefined for {} and {}",
                        self.ct.describe(lt),
                        self.ct.describe(rt)
                    ),
                    span,
                )
            }
            Sub | Mul | Div | Rem => {
                if lt.is_numeric() && rt.is_numeric() {
                    Ok(binary_promote(lt, rt))
                } else {
                    self.err(format!("operator {op} requires numeric operands"), span)
                }
            }
            Shl | Shr | Ushr => {
                if lt.is_integral() && rt.is_integral() {
                    Ok(unary_promote(lt))
                } else {
                    self.err(format!("operator {op} requires integral operands"), span)
                }
            }
            Lt | Gt | Le | Ge => {
                if lt.is_numeric() && rt.is_numeric() {
                    Ok(Type::boolean())
                } else {
                    self.err(format!("operator {op} requires numeric operands"), span)
                }
            }
            Eq | Ne => {
                let ok = (lt.is_numeric() && rt.is_numeric())
                    || (*lt == Type::boolean() && *rt == Type::boolean())
                    || (lt.is_reference()
                        && rt.is_reference()
                        && (self.ct.is_subtype(lt, rt) || self.ct.is_subtype(rt, lt)));
                if ok {
                    Ok(Type::boolean())
                } else {
                    self.err(
                        format!(
                            "operator {op} undefined for {} and {}",
                            self.ct.describe(lt),
                            self.ct.describe(rt)
                        ),
                        span,
                    )
                }
            }
            BitAnd | BitXor | BitOr => {
                if lt.is_integral() && rt.is_integral() {
                    Ok(binary_promote(lt, rt))
                } else if *lt == Type::boolean() && *rt == Type::boolean() {
                    Ok(Type::boolean())
                } else {
                    self.err(format!("operator {op} requires integral or boolean operands"), span)
                }
            }
            And | Or => {
                if *lt == Type::boolean() && *rt == Type::boolean() {
                    Ok(Type::boolean())
                } else {
                    self.err(format!("operator {op} requires boolean operands"), span)
                }
            }
        }
    }

    fn merge_types(&mut self, a: &Type, b: &Type, span: Span) -> Result<Type, TypeError> {
        if a == b {
            return Ok(a.clone());
        }
        if a.is_numeric() && b.is_numeric() {
            return Ok(binary_promote(a, b));
        }
        if self.ct.is_assignable(a, b) {
            return Ok(b.clone());
        }
        if self.ct.is_assignable(b, a) {
            return Ok(a.clone());
        }
        self.err(
            format!(
                "incompatible branch types {} and {}",
                self.ct.describe(a),
                self.ct.describe(b)
            ),
            span,
        )
    }

    fn require_lvalue(&self, e: &Expr) -> Result<(), TypeError> {
        match &e.kind {
            ExprKind::Name(_)
            | ExprKind::FieldAccess(..)
            | ExprKind::ArrayAccess(..)
            | ExprKind::VarRef(_) => Ok(()),
            _ => Err(TypeError::new("not an assignable location", e.span)),
        }
    }

    /// Checks one statement, declaring variables into `scope`.
    ///
    /// # Errors
    ///
    /// Reports all static-semantics violations in the statement.
    pub fn check_stmt(&mut self, s: &Stmt, scope: &mut Scope) -> Result<(), TypeError> {
        match &s.kind {
            StmtKind::Block(b) => {
                scope.push();
                let r = self.check_stmts(&b.stmts, scope);
                scope.pop();
                r
            }
            StmtKind::Expr(e) => {
                self.type_of_expr(e, scope)?;
                match &e.kind {
                    ExprKind::Call(..)
                    | ExprKind::Assign(..)
                    | ExprKind::IncDec(..)
                    | ExprKind::New(..)
                    | ExprKind::Lazy(_) => Ok(()),
                    _ => self.err("not a statement expression", e.span),
                }
            }
            StmtKind::Decl(tn, decls) => {
                let base = self.ct.resolve_type_name(tn, self.ctx)?;
                for d in decls {
                    let mut ty = base.clone();
                    for _ in 0..d.dims {
                        ty = ty.array_of();
                    }
                    if let Some(init) = &d.init {
                        let it = self.type_of_expr(init, scope)?;
                        if !self.ct.is_assignable(&it, &ty) {
                            return self.err(
                                format!(
                                    "cannot initialize {} {} with {}",
                                    self.ct.describe(&ty),
                                    d.name,
                                    self.ct.describe(&it)
                                ),
                                init.span,
                            );
                        }
                    }
                    if !scope.declare(
                        d.name.sym,
                        VarBinding {
                            ty,
                            kind: VarKind::Local,
                            is_final: false,
                        },
                    ) {
                        return self.err(format!("duplicate variable {}", d.name), s.span);
                    }
                }
                Ok(())
            }
            StmtKind::If(c, t, f) => {
                self.check_bool(c, scope)?;
                self.check_stmt(t, scope)?;
                if let Some(f) = f {
                    self.check_stmt(f, scope)?;
                }
                Ok(())
            }
            StmtKind::While(c, body) => {
                self.check_bool(c, scope)?;
                self.loop_depth += 1;
                let r = self.check_stmt(body, scope);
                self.loop_depth -= 1;
                r
            }
            StmtKind::Do(body, c) => {
                self.loop_depth += 1;
                let r = self.check_stmt(body, scope);
                self.loop_depth -= 1;
                r?;
                self.check_bool(c, scope)
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                scope.push();
                let result = (|| {
                    match init {
                        maya_ast::ForInit::None => {}
                        maya_ast::ForInit::Decl(tn, decls) => {
                            let stmt = Stmt::synth(StmtKind::Decl(tn.clone(), decls.clone()));
                            self.check_stmt(&stmt, scope)?;
                        }
                        maya_ast::ForInit::Exprs(es) => {
                            for e in es {
                                self.type_of_expr(e, scope)?;
                            }
                        }
                    }
                    if let Some(c) = cond {
                        self.check_bool(c, scope)?;
                    }
                    for u in update {
                        self.type_of_expr(u, scope)?;
                    }
                    self.loop_depth += 1;
                    let r = self.check_stmt(body, scope);
                    self.loop_depth -= 1;
                    r
                })();
                scope.pop();
                result
            }
            StmtKind::Return(value) => {
                let expected = scope.return_type.clone();
                match (value, expected == Type::Void) {
                    (None, true) => Ok(()),
                    (None, false) => self.err("missing return value", s.span),
                    (Some(_), true) => self.err("void method returns a value", s.span),
                    (Some(v), false) => {
                        let vt = self.type_of_expr(v, scope)?;
                        if self.ct.is_assignable(&vt, &expected) {
                            Ok(())
                        } else {
                            self.err(
                                format!(
                                    "cannot return {} from a method returning {}",
                                    self.ct.describe(&vt),
                                    self.ct.describe(&expected)
                                ),
                                v.span,
                            )
                        }
                    }
                }
            }
            StmtKind::Break | StmtKind::Continue => {
                if self.loop_depth == 0 {
                    self.err("break/continue outside of a loop", s.span)
                } else {
                    Ok(())
                }
            }
            StmtKind::Throw(e) => {
                let t = self.type_of_expr(e, scope)?;
                if t.is_reference() || t == Type::Error {
                    Ok(())
                } else {
                    self.err("throw requires a reference value", e.span)
                }
            }
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                scope.push();
                let r = self.check_stmts(&body.stmts, scope);
                scope.pop();
                r?;
                for c in catches {
                    scope.push();
                    let ty = self.ct.resolve_type_name(&c.param.ty, self.ctx)?;
                    scope.declare(
                        c.param.name.sym,
                        VarBinding {
                            ty,
                            kind: VarKind::Param,
                            is_final: false,
                        },
                    );
                    let r = self.check_stmts(&c.body.stmts, scope);
                    scope.pop();
                    r?;
                }
                if let Some(f) = finally {
                    scope.push();
                    let r = self.check_stmts(&f.stmts, scope);
                    scope.pop();
                    r?;
                }
                Ok(())
            }
            StmtKind::Use(_, body) => {
                scope.push();
                let r = self.check_stmts(&body.stmts, scope);
                scope.pop();
                r
            }
            StmtKind::Empty => Ok(()),
            // A poison node from parser recovery: the error was already
            // reported; checking it would only cascade.
            StmtKind::Error => Ok(()),
            StmtKind::Lazy(l) => {
                self.host.force_lazy(l, scope)?;
                let node = l.forced_node().ok_or_else(|| {
                    TypeError::new("internal error: lazy node not fulfilled", s.span)
                })?;
                self.check_node(&node, scope)
            }
        }
    }

    /// Checks a statement sequence in the current frame.
    ///
    /// # Errors
    ///
    /// Stops at the first violation.
    pub fn check_stmts(&mut self, stmts: &[Stmt], scope: &mut Scope) -> Result<(), TypeError> {
        for s in stmts {
            self.check_stmt(s, scope)?;
        }
        Ok(())
    }

    /// Checks any node shape the checker can reach through laziness.
    ///
    /// # Errors
    ///
    /// Propagates the underlying check.
    pub fn check_node(&mut self, n: &Node, scope: &mut Scope) -> Result<(), TypeError> {
        let _p = maya_telemetry::phase(maya_telemetry::Phase::TypeCheck);
        match n {
            Node::Expr(e) => self.type_of_expr(e, scope).map(|_| ()),
            Node::Stmt(s) => self.check_stmt(s, scope),
            Node::Block(b) => self.check_stmts(&b.stmts, scope),
            Node::Lazy(l) => {
                self.host.force_lazy(l, scope)?;
                let inner = l.forced_node().ok_or_else(|| {
                    TypeError::new("internal error: lazy node not fulfilled", Span::DUMMY)
                })?;
                self.check_node(&inner, scope)
            }
            Node::Unit => Ok(()),
            other => Err(TypeError::new(
                format!("cannot check node of kind {}", other.node_kind().name()),
                Span::DUMMY,
            )),
        }
    }

    fn check_bool(&mut self, e: &Expr, scope: &mut Scope) -> Result<(), TypeError> {
        let t = self.type_of_expr(e, scope)?;
        if t == Type::boolean() || t == Type::Error {
            Ok(())
        } else {
            self.err(
                format!("condition must be boolean, found {}", self.ct.describe(&t)),
                e.span,
            )
        }
    }
}

/// Unary numeric promotion: byte/short/char → int.
fn unary_promote(t: &Type) -> Type {
    match t {
        Type::Prim(PrimKind::Byte | PrimKind::Short | PrimKind::Char) => Type::int(),
        other => other.clone(),
    }
}

/// Binary numeric promotion.
fn binary_promote(a: &Type, b: &Type) -> Type {
    use PrimKind::*;
    let rank = |t: &Type| match t {
        Type::Prim(Double) => 4,
        Type::Prim(Float) => 3,
        Type::Prim(Long) => 2,
        _ => 1,
    };
    let (ra, rb) = (rank(a), rank(b));
    let r = ra.max(rb);
    match r {
        4 => Type::Prim(Double),
        3 => Type::Prim(Float),
        2 => Type::Prim(Long),
        _ => Type::int(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassInfo, ClassTable};
    use maya_ast::{Expr, ExprKind, Ident, LocalDeclarator, TypeName};
    use maya_lexer::sym;

    fn setup() -> (ClassTable, ResolveCtx) {
        let ct = ClassTable::bootstrap();
        let obj = ct.by_fqcn_str("java.lang.Object").unwrap();
        let mut e = ClassInfo::new("java.util.Enumeration", true);
        e.superclass = Some(obj);
        let eid = ct.declare(e).unwrap();
        ct.add_method(
            eid,
            MethodInfo::native("hasMoreElements", vec![], Type::boolean(), "enum.has"),
        );
        ct.add_method(
            eid,
            MethodInfo::native(
                "nextElement",
                vec![],
                Type::Class(obj),
                "enum.next",
            ),
        );
        let mut h = ClassInfo::new("java.util.Hashtable", false);
        h.superclass = Some(obj);
        let hid = ct.declare(h).unwrap();
        ct.add_method(
            hid,
            MethodInfo::native("keys", vec![], Type::Class(eid), "ht.keys"),
        );
        ct.add_method(
            hid,
            MethodInfo::native(
                "get",
                vec![Type::Class(obj)],
                Type::Class(obj),
                "ht.get",
            ),
        );
        let mut ctx = ResolveCtx::default();
        ctx.wildcard_imports.push(sym("java.util"));
        (ct, ctx)
    }

    fn scope_with(ct: &ClassTable, vars: &[(&str, Type)]) -> Scope {
        let _ = ct;
        let mut s = Scope::new();
        for (n, t) in vars {
            s.declare(
                sym(n),
                VarBinding {
                    ty: t.clone(),
                    kind: VarKind::Local,
                    is_final: false,
                },
            );
        }
        s
    }

    #[test]
    fn static_type_of_call_chain() {
        let (ct, ctx) = setup();
        let h = Type::Class(ct.by_fqcn_str("java.util.Hashtable").unwrap());
        let mut scope = scope_with(&ct, &[("h", h)]);
        let mut host = NoHost;
        let mut checker = Checker::new(&ct, &ctx, &mut host);
        // h.keys() : Enumeration — this is the type EForEach dispatches on.
        let e = Expr::call_on(Expr::name("h"), "keys", vec![]);
        let t = checker.type_of_expr(&e, &mut scope).unwrap();
        assert_eq!(ct.describe(&t), "java.util.Enumeration");
        // h.keys().hasMoreElements() : boolean
        let e2 = Expr::call_on(e, "hasMoreElements", vec![]);
        assert_eq!(
            checker.type_of_expr(&e2, &mut scope).unwrap(),
            Type::boolean()
        );
    }

    #[test]
    fn string_concatenation() {
        let (ct, ctx) = setup();
        let mut scope = scope_with(&ct, &[("n", Type::int())]);
        let mut host = NoHost;
        let mut checker = Checker::new(&ct, &ctx, &mut host);
        let e = Expr::synth(ExprKind::Binary(
            BinOp::Add,
            Box::new(Expr::str_lit("x = ")),
            Box::new(Expr::name("n")),
        ));
        let t = checker.type_of_expr(&e, &mut scope).unwrap();
        assert_eq!(ct.describe(&t), "java.lang.String");
    }

    #[test]
    fn overload_resolution_picks_most_specific() {
        let (ct, ctx) = setup();
        let obj = ct.by_fqcn_str("java.lang.Object").unwrap();
        let string = ct.by_fqcn_str("java.lang.String").unwrap();
        let mut c = ClassInfo::new("p.Printer", false);
        c.superclass = Some(obj);
        let cid = ct.declare(c).unwrap();
        ct.add_method(
            cid,
            MethodInfo::native("p", vec![Type::Class(obj)], Type::int(), "p.obj"),
        );
        ct.add_method(
            cid,
            MethodInfo::native(
                "p",
                vec![Type::Class(string)],
                Type::boolean(),
                "p.str",
            ),
        );
        let mut scope = scope_with(&ct, &[("x", Type::Class(cid))]);
        let mut host = NoHost;
        let mut checker = Checker::new(&ct, &ctx, &mut host);
        let call = Expr::call_on(Expr::name("x"), "p", vec![Expr::str_lit("s")]);
        // The String overload is more specific.
        assert_eq!(
            checker.type_of_expr(&call, &mut scope).unwrap(),
            Type::boolean()
        );
    }

    #[test]
    fn declarations_flow_through_blocks() {
        let (ct, ctx) = setup();
        let mut scope = Scope::new();
        let mut host = NoHost;
        let mut checker = Checker::new(&ct, &ctx, &mut host);
        let decl = Stmt::synth(StmtKind::Decl(
            TypeName::prim(PrimKind::Int),
            vec![LocalDeclarator {
                name: Ident::from_str("i"),
                dims: 0,
                init: Some(Expr::int(3)),
            }],
        ));
        let use_it = Stmt::expr(Expr::synth(ExprKind::Assign(
            None,
            Box::new(Expr::name("i")),
            Box::new(Expr::int(4)),
        )));
        checker
            .check_stmts(&[decl, use_it], &mut scope)
            .expect("decl then use");
        // The variable is now visible.
        assert!(scope.lookup(sym("i")).is_some());
    }

    #[test]
    fn type_errors_are_reported() {
        let (ct, ctx) = setup();
        let mut scope = scope_with(&ct, &[("b", Type::boolean())]);
        let mut host = NoHost;
        let mut checker = Checker::new(&ct, &ctx, &mut host);
        let bad = Expr::synth(ExprKind::Binary(
            BinOp::Sub,
            Box::new(Expr::name("b")),
            Box::new(Expr::int(1)),
        ));
        assert!(checker.type_of_expr(&bad, &mut scope).is_err());
        let unknown = Expr::call_on(Expr::name("b"), "nope", vec![]);
        assert!(checker.type_of_expr(&unknown, &mut scope).is_err());
        let br = Stmt::synth(StmtKind::Break);
        assert!(checker.check_stmt(&br, &mut scope).is_err());
    }

    #[test]
    fn numeric_promotion() {
        let (ct, ctx) = setup();
        let mut scope = scope_with(
            &ct,
            &[("i", Type::int()), ("d", Type::Prim(PrimKind::Double))],
        );
        let mut host = NoHost;
        let mut checker = Checker::new(&ct, &ctx, &mut host);
        let e = Expr::synth(ExprKind::Binary(
            BinOp::Mul,
            Box::new(Expr::name("i")),
            Box::new(Expr::name("d")),
        ));
        assert_eq!(
            checker.type_of_expr(&e, &mut scope).unwrap(),
            Type::Prim(PrimKind::Double)
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::{ClassInfo, ClassTable};
    use maya_ast::{Expr, ExprKind, TypeName};

    fn ct() -> ClassTable {
        let t = ClassTable::bootstrap();
        let obj = t.by_fqcn_str("java.lang.Object").unwrap();
        let mut c = ClassInfo::new("p.C", false);
        c.superclass = Some(obj);
        let c = t.declare(c).unwrap();
        let mut d = ClassInfo::new("p.D", false);
        d.superclass = Some(c);
        t.declare(d).unwrap();
        t
    }

    fn check_expr(t: &ClassTable, vars: &[(&str, Type)], e: &Expr) -> Result<Type, TypeError> {
        let ctx = ResolveCtx {
            wildcard_imports: vec![maya_lexer::sym("p")],
            ..Default::default()
        };
        let mut scope = Scope::new();
        for (n, ty) in vars {
            scope.declare(
                maya_lexer::sym(n),
                VarBinding {
                    ty: ty.clone(),
                    kind: VarKind::Local,
                    is_final: false,
                },
            );
        }
        let mut host = NoHost;
        Checker::new(t, &ctx, &mut host).type_of_expr(e, &mut scope)
    }

    #[test]
    fn conditional_merges_by_subtyping() {
        let t = ct();
        let c = Type::Class(t.by_fqcn_str("p.C").unwrap());
        let d = Type::Class(t.by_fqcn_str("p.D").unwrap());
        let e = Expr::synth(ExprKind::Cond(
            Box::new(Expr::synth(ExprKind::Literal(maya_ast::Lit::Bool(true)))),
            Box::new(Expr::name("x")),
            Box::new(Expr::name("y")),
        ));
        let ty = check_expr(&t, &[("x", d.clone()), ("y", c.clone())], &e).unwrap();
        assert_eq!(ty, c, "merge widens to the supertype");
        // Null merges with any reference type.
        let e2 = Expr::synth(ExprKind::Cond(
            Box::new(Expr::synth(ExprKind::Literal(maya_ast::Lit::Bool(true)))),
            Box::new(Expr::name("x")),
            Box::new(Expr::synth(ExprKind::Literal(maya_ast::Lit::Null))),
        ));
        assert_eq!(check_expr(&t, &[("x", d)], &e2).unwrap(), Type::Class(t.by_fqcn_str("p.D").unwrap()));
    }

    #[test]
    fn cast_rules() {
        let t = ct();
        let c = Type::Class(t.by_fqcn_str("p.C").unwrap());
        // numeric ↔ numeric: fine.
        let e = Expr::synth(ExprKind::Cast(
            TypeName::prim(PrimKind::Int),
            Box::new(Expr::synth(ExprKind::Literal(maya_ast::Lit::Double(2.5)))),
        ));
        assert_eq!(check_expr(&t, &[], &e).unwrap(), Type::int());
        // ref → prim: rejected.
        let bad = Expr::synth(ExprKind::Cast(
            TypeName::prim(PrimKind::Int),
            Box::new(Expr::name("x")),
        ));
        assert!(check_expr(&t, &[("x", c)], &bad).is_err());
    }

    #[test]
    fn array_length_and_indexing() {
        let t = ct();
        let arr = Type::int().array_of();
        let len = Expr::field(Expr::name("a"), "length");
        assert_eq!(check_expr(&t, &[("a", arr.clone())], &len).unwrap(), Type::int());
        let idx = Expr::synth(ExprKind::ArrayAccess(
            Box::new(Expr::name("a")),
            Box::new(Expr::int(0)),
        ));
        assert_eq!(check_expr(&t, &[("a", arr.clone())], &idx).unwrap(), Type::int());
        // boolean index rejected.
        let bad = Expr::synth(ExprKind::ArrayAccess(
            Box::new(Expr::name("a")),
            Box::new(Expr::synth(ExprKind::Literal(maya_ast::Lit::Bool(true)))),
        ));
        assert!(check_expr(&t, &[("a", arr)], &bad).is_err());
    }

    #[test]
    fn var_ref_sees_shadowed_fields() {
        // Reference.makeExpr semantics: a VarRef falls back to a field of
        // the enclosing class even when a local would shadow it.
        let t = ct();
        let cid = t.by_fqcn_str("p.C").unwrap();
        t.add_field(
            cid,
            crate::FieldInfo {
                name: maya_lexer::sym("hidden"),
                ty: Type::int(),
                modifiers: maya_ast::Modifiers::none(),
                init: None,
            },
        );
        let ctx = ResolveCtx::default();
        let mut scope = Scope::new();
        scope.this_class = Some(cid);
        let mut host = NoHost;
        let e = Expr::synth(ExprKind::VarRef(maya_lexer::sym("hidden")));
        let ty = Checker::new(&t, &ctx, &mut host)
            .type_of_expr(&e, &mut scope)
            .unwrap();
        assert_eq!(ty, Type::int());
    }
}
