//! Type errors.

use maya_lexer::Span;
use std::fmt;

/// A static-semantics error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError {
    pub message: String,
    pub span: Span,
}

impl TypeError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, span: Span) -> TypeError {
        TypeError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TypeError {}
