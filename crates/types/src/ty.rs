//! Semantic types.

use crate::table::ClassId;
use maya_ast::PrimKind;
use std::fmt;

/// A resolved MayaJava type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    Prim(PrimKind),
    Void,
    /// The type of the `null` literal (assignable to every reference type).
    Null,
    Class(ClassId),
    Array(Box<Type>),
    /// Recovery type produced after a reported error; compatible with
    /// everything so one mistake doesn't cascade.
    Error,
}

impl Type {
    /// `int`.
    pub fn int() -> Type {
        Type::Prim(PrimKind::Int)
    }

    /// `boolean`.
    pub fn boolean() -> Type {
        Type::Prim(PrimKind::Boolean)
    }

    /// An array of this type.
    pub fn array_of(self) -> Type {
        Type::Array(Box::new(self))
    }

    /// True for `Class` and `Array` types and `Null`.
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Class(_) | Type::Array(_) | Type::Null)
    }

    /// True for numeric primitives.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Type::Prim(
                PrimKind::Byte
                    | PrimKind::Short
                    | PrimKind::Char
                    | PrimKind::Int
                    | PrimKind::Long
                    | PrimKind::Float
                    | PrimKind::Double
            )
        )
    }

    /// True for integral primitives.
    pub fn is_integral(&self) -> bool {
        matches!(
            self,
            Type::Prim(
                PrimKind::Byte | PrimKind::Short | PrimKind::Char | PrimKind::Int | PrimKind::Long
            )
        )
    }

    /// The class id, if this is a class type.
    pub fn class_id(&self) -> Option<ClassId> {
        match self {
            Type::Class(id) => Some(*id),
            _ => None,
        }
    }

    /// The element type, if this is an array.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Array(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Prim(p) => f.write_str(p.as_str()),
            Type::Void => f.write_str("void"),
            Type::Null => f.write_str("null"),
            Type::Class(id) => write!(f, "#class{}", id.0),
            Type::Array(e) => write!(f, "{e}[]"),
            Type::Error => f.write_str("<error>"),
        }
    }
}

/// A method signature used for override/duplicate detection.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MethodSig {
    pub name: maya_lexer::Symbol,
    pub params: Vec<Type>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Type::int().is_numeric());
        assert!(Type::int().is_integral());
        assert!(!Type::boolean().is_numeric());
        assert!(Type::Prim(PrimKind::Double).is_numeric());
        assert!(!Type::Prim(PrimKind::Double).is_integral());
        assert!(Type::Null.is_reference());
        assert!(Type::int().array_of().is_reference());
        assert!(!Type::Void.is_reference());
    }

    #[test]
    fn accessors() {
        let arr = Type::int().array_of();
        assert_eq!(arr.elem(), Some(&Type::int()));
        assert_eq!(Type::int().elem(), None);
        assert_eq!(Type::Class(ClassId(3)).class_id(), Some(ClassId(3)));
    }
}
