//! Lexical scopes for local variables and parameters.

use crate::{ClassId, Type};
use maya_lexer::Symbol;
use std::collections::HashMap;

/// How a name was bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    Local,
    Param,
}

/// One variable binding.
#[derive(Clone, Debug)]
pub struct VarBinding {
    pub ty: Type,
    pub kind: VarKind,
    pub is_final: bool,
}

/// A stack of lexical frames plus the enclosing class/method context.
///
/// The checker pushes a frame per block; Mayans dispatching on static types
/// during parsing consult the scope current at the splice point — this is
/// the "create variable bindings that are visible to other arguments"
/// machinery of paper §1.
#[derive(Clone, Debug)]
pub struct Scope {
    frames: Vec<HashMap<Symbol, VarBinding>>,
    /// The class whose body is being checked (`this`).
    pub this_class: Option<ClassId>,
    /// True in static methods and initializers.
    pub static_ctx: bool,
    /// The enclosing method's return type.
    pub return_type: Type,
}

impl Default for Scope {
    fn default() -> Scope {
        Scope::new()
    }
}

impl Scope {
    /// An empty scope (one root frame, no enclosing class).
    pub fn new() -> Scope {
        Scope {
            frames: vec![HashMap::new()],
            this_class: None,
            static_ctx: false,
            return_type: Type::Void,
        }
    }

    /// Enters a block.
    pub fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    /// Leaves a block.
    ///
    /// # Panics
    ///
    /// Panics when popping the root frame.
    pub fn pop(&mut self) {
        assert!(self.frames.len() > 1, "cannot pop the root scope frame");
        self.frames.pop();
    }

    /// Declares a variable in the innermost frame. Returns `false` when the
    /// name is already declared *in that frame* (Java forbids it).
    pub fn declare(&mut self, name: Symbol, binding: VarBinding) -> bool {
        let frame = self.frames.last_mut().expect("scope has a frame");
        if frame.contains_key(&name) {
            return false;
        }
        frame.insert(name, binding);
        true
    }

    /// Looks a name up, innermost frame first.
    pub fn lookup(&self, name: Symbol) -> Option<&VarBinding> {
        self.frames.iter().rev().find_map(|f| f.get(&name))
    }

    /// Current nesting depth (for tests and diagnostics).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::sym;

    fn b(ty: Type) -> VarBinding {
        VarBinding {
            ty,
            kind: VarKind::Local,
            is_final: false,
        }
    }

    #[test]
    fn shadowing_across_frames() {
        let mut s = Scope::new();
        assert!(s.declare(sym("x"), b(Type::int())));
        s.push();
        assert!(s.declare(sym("x"), b(Type::boolean())));
        assert_eq!(s.lookup(sym("x")).unwrap().ty, Type::boolean());
        s.pop();
        assert_eq!(s.lookup(sym("x")).unwrap().ty, Type::int());
    }

    #[test]
    fn duplicate_in_same_frame_rejected() {
        let mut s = Scope::new();
        assert!(s.declare(sym("x"), b(Type::int())));
        assert!(!s.declare(sym("x"), b(Type::int())));
    }

    #[test]
    fn missing_name() {
        let s = Scope::new();
        assert!(s.lookup(sym("nope")).is_none());
    }
}
