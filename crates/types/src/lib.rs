//! The MayaJava type system and lazy type checker.
//!
//! Maya interleaves lazy type checking with lazy parsing (paper §4): Mayans
//! dispatch on the *static, source-level types* of expressions, so the
//! checker must be able to compute the type of any expression on demand,
//! inside the parser, under the scope current at that point. This crate
//! provides:
//!
//! * semantic [`Type`]s and the [`ClassTable`] — the registry of classes and
//!   interfaces, with the introspection/intercession API Mayans use
//!   (`Type` objects support member lookup, and "member declarations may be
//!   added to a class body", §3.2);
//! * lexical [`Scope`]s and the name-resolution context [`ResolveCtx`]
//!   (imports, packages, shadowing — including the paper's §4.3 example
//!   where `java.lang.System` is inaccessible because a local class is
//!   named `java`);
//! * the [`Checker`], a demand-driven type checker that forces lazy nodes
//!   through its [`CheckHost`] when their types are needed.

mod check;
mod error;
mod scope;
mod table;
mod ty;

pub use check::{CheckHost, Checker, NoHost};
pub use error::TypeError;
pub use scope::{Scope, VarBinding, VarKind};
pub use table::{
    ClassId, ClassInfo, ClassTable, CtorInfo, FieldInfo, MethodInfo, ResolveCtx,
};
pub use ty::{MethodSig, Type};
