//! Template compile/instantiate round trips over a miniature grammar.

use maya_ast::{Node, NodeKind};
use maya_dispatch::DispatchError;
use maya_grammar::{Grammar, GrammarBuilder, ProdId, RhsItem};
use maya_lexer::{sym, tree_lex_str, Span, Symbol, TokenKind, TokenTree};
use maya_template::{HygieneSpec, InstHost, SlotKinds, Template};

/// Mini grammar:
///   Statement  → "let" UnboundLocal "=" Expression ";"   (p0)
///   Statement  → "print" Expression ";"                  (p1)
///   Expression → Identifier                              (p2, name ref)
///   Expression → IntLit                                  (p3)
///   Identifier → ident                                   (p4)
///   UnboundLocal → ident                                 (p5)
///   BlockStmts → list(Statement)
fn grammar() -> (Grammar, HygieneSpec) {
    let mut b = GrammarBuilder::new();
    b.add_production(
        NodeKind::Statement,
        &[
            RhsItem::word("let"),
            RhsItem::Kind(NodeKind::UnboundLocal),
            RhsItem::tok(TokenKind::Assign),
            RhsItem::Kind(NodeKind::Expression),
            RhsItem::tok(TokenKind::Semi),
        ],
        None,
    )
    .unwrap();
    b.add_production(
        NodeKind::Statement,
        &[
            RhsItem::word("print"),
            RhsItem::Kind(NodeKind::Expression),
            RhsItem::tok(TokenKind::Semi),
        ],
        None,
    )
    .unwrap();
    b.add_production(NodeKind::Expression, &[RhsItem::Kind(NodeKind::Identifier)], None)
        .unwrap();
    b.add_production(NodeKind::Expression, &[RhsItem::tok(TokenKind::IntLit)], None)
        .unwrap();
    b.add_production(NodeKind::Identifier, &[RhsItem::tok(TokenKind::Ident)], None)
        .unwrap();
    b.add_production(NodeKind::UnboundLocal, &[RhsItem::tok(TokenKind::Ident)], None)
        .unwrap();
    b.add_production(
        NodeKind::BlockStmts,
        &[RhsItem::List(Box::new(RhsItem::Kind(NodeKind::Statement)), None)],
        None,
    )
    .unwrap();
    let unbound = b.nt_for_kind(NodeKind::UnboundLocal);
    let g = b.finish();
    let hygiene = HygieneSpec {
        binder_nts: vec![unbound],
        name_ref_prods: vec![ProdId(2)],
        type_name_prods: vec![],
        dotted_ref_prods: vec![],
        raw_tree_goals: vec![],
    };
    (g, hygiene)
}

struct Kinds;

impl SlotKinds for Kinds {
    fn named(&mut self, name: Symbol) -> Option<NodeKind> {
        match name.as_str() {
            "e" => Some(NodeKind::Expression),
            _ => None,
        }
    }

    fn expr(&mut self, _tokens: &[TokenTree]) -> Option<NodeKind> {
        None
    }
}

/// A host that renders reductions back to flat text, so tests can inspect
/// the instantiated output.
struct TextHost {
    fresh: maya_template::__private_fresh::FreshNames,
}

impl InstHost for TextHost {
    fn reduce(&mut self, _prod: ProdId, args: Vec<Node>, _span: Span) -> Result<Node, DispatchError> {
        let mut text = String::new();
        for a in args {
            let piece = match a {
                Node::Token(t) => t.text.as_str().to_owned(),
                Node::Ident(i) => i.as_str().to_owned(),
                Node::Expr(e) => maya_ast::expr_str(&e),
                Node::List(items) => items
                    .iter()
                    .map(|n| match n {
                        Node::Expr(e) => maya_ast::expr_str(e),
                        other => format!("{other:?}"),
                    })
                    .collect::<Vec<_>>()
                    .join(" "),
                Node::Unit => String::new(),
                other => format!("<{}>", other.node_kind().name()),
            };
            if !text.is_empty() && !piece.is_empty() {
                text.push(' ');
            }
            text.push_str(&piece);
        }
        Ok(Node::Expr(maya_ast::Expr::name(&text)))
    }

    fn fresh(&mut self, base: &str) -> Symbol {
        self.fresh.fresh(base)
    }
}

fn body(src: &str) -> maya_lexer::DelimTree {
    let trees = tree_lex_str(&format!("{{ {src} }}")).unwrap();
    trees[0].as_delim().unwrap().clone()
}

fn compile(
    g: &Grammar,
    h: &HygieneSpec,
    goal: NodeKind,
    src: &str,
) -> Result<Template, maya_template::TemplateError> {
    Template::compile(
        g,
        h,
        &|name| {
            if name == "System" {
                Some(sym("java.lang.System"))
            } else {
                None
            }
        },
        goal,
        &body(src),
        &mut Kinds,
    )
}

fn render(t: &Template, values: Vec<Node>) -> String {
    let mut host = TextHost {
        fresh: maya_template::__private_fresh::FreshNames::new(),
    };
    match t.instantiate(values, &mut host).unwrap() {
        Node::Expr(e) => maya_ast::expr_str(&e),
        other => format!("{other:?}"),
    }
}

#[test]
fn slot_splice_and_replay() {
    let (g, h) = grammar();
    let t = compile(&g, &h, NodeKind::Statement, "print $e ;").unwrap();
    assert_eq!(t.slots.len(), 1);
    assert!(t.binders.is_empty());
    let out = render(&t, vec![Node::Expr(maya_ast::Expr::int(42))]);
    assert_eq!(out, "print 42 ;");
}

#[test]
fn binders_are_renamed_hygienically() {
    let (g, h) = grammar();
    let t = compile(&g, &h, NodeKind::BlockStmts, "let x = $e ; print x ;").unwrap();
    assert_eq!(t.binders, vec![sym("x")]);
    let out = render(&t, vec![Node::Expr(maya_ast::Expr::int(1))]);
    // Both occurrences renamed consistently to x$N.
    assert!(out.contains("x$1"), "{out}");
    assert!(!out.contains(" x "), "{out}");
    // A second instantiation with a shared host gets a fresh name.
    let mut host = TextHost {
        fresh: maya_template::__private_fresh::FreshNames::new(),
    };
    let a = t
        .instantiate(vec![Node::Expr(maya_ast::Expr::int(1))], &mut host)
        .unwrap();
    let b = t
        .instantiate(vec![Node::Expr(maya_ast::Expr::int(1))], &mut host)
        .unwrap();
    let (sa, sb) = match (a, b) {
        (Node::Expr(x), Node::Expr(y)) => (maya_ast::expr_str(&x), maya_ast::expr_str(&y)),
        _ => panic!(),
    };
    assert_ne!(sa, sb, "each instantiation gets fresh names");
}

#[test]
fn free_variable_is_a_compile_time_error() {
    let (g, h) = grammar();
    let err = compile(&g, &h, NodeKind::Statement, "print y ;").unwrap_err();
    assert!(err.message.contains("free variable"), "{}", err.message);
}

#[test]
fn class_names_are_referentially_transparent() {
    let (g, h) = grammar();
    let t = compile(&g, &h, NodeKind::Statement, "print System ;").unwrap();
    let out = render(&t, vec![]);
    assert!(out.contains("java.lang.System"), "{out}");
}

#[test]
fn syntax_errors_are_static() {
    let (g, h) = grammar();
    // `print ;` is missing its expression: rejected at compile time, not at
    // instantiation (paper: templates are statically parsed).
    assert!(compile(&g, &h, NodeKind::Statement, "print ;").is_err());
}
