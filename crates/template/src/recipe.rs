//! Compiled template recipes.

use maya_ast::{Node, NodeKind};
use maya_grammar::ProdId;
use maya_lexer::{DelimTree, Span, Symbol, Token};
use std::rc::Rc;

/// Compiled template code: the shift/reduce structure of the body, with
/// hygiene decisions already made (paper §4.2: "The template parse tree is
/// compiled into code that performs the same sequence of shifts and
/// reductions the parser would have performed on the template body").
#[derive(Clone, Debug)]
pub enum Recipe {
    /// A literal token.
    Token(Token),
    /// A binding-position identifier: renamed to a fresh `base$N` at each
    /// instantiation (hygiene).
    Binder { base: Symbol, span: Span },
    /// A reference to a template binder: renamed consistently with it.
    BinderRef { base: Symbol, span: Span },
    /// A pre-resolved constant node (class references and strict type names
    /// from referential transparency).
    Const(Node),
    /// An unquote: `values[index]` at instantiation.
    Slot { index: usize, span: Span },
    /// A reduction: instantiate children, then run the production's
    /// semantic action (through full Mayan dispatch).
    Node {
        prod: ProdId,
        children: Vec<Recipe>,
        span: Span,
    },
    /// An eagerly parsed subtree: its value is its content's.
    Eager(Box<Recipe>),
    /// A lazy position: instantiation produces an unforced lazy node whose
    /// thunk replays `content` when forced.
    Lazy {
        goal_kind: NodeKind,
        raw: DelimTree,
        content: Rc<Recipe>,
        span: Span,
    },
}

impl Recipe {
    /// The source span of this recipe fragment.
    pub fn span(&self) -> Span {
        match self {
            Recipe::Token(t) => t.span,
            Recipe::Binder { span, .. }
            | Recipe::BinderRef { span, .. }
            | Recipe::Slot { span, .. }
            | Recipe::Node { span, .. }
            | Recipe::Lazy { span, .. } => *span,
            Recipe::Const(_) => Span::DUMMY,
            Recipe::Eager(inner) => inner.span(),
        }
    }

    /// Counts reduction nodes (a size metric used by benches).
    pub fn reduction_count(&self) -> usize {
        match self {
            Recipe::Node { children, .. } => {
                1 + children.iter().map(Recipe::reduction_count).sum::<usize>()
            }
            Recipe::Eager(inner) => inner.reduction_count(),
            Recipe::Lazy { content, .. } => content.reduction_count(),
            _ => 0,
        }
    }
}
