//! Template compilation: pattern-parse, hygiene analysis, recipe emission.

use crate::{instantiate, InstHost, Recipe, SlotInfo, SlotKinds};
use maya_ast::{Expr, ExprKind, Node, NodeKind, TypeName};
use maya_dispatch::DispatchError;
use maya_grammar::{Grammar, NtId, ProdId};
use maya_lexer::{DelimTree, Span, Symbol, TokenKind};
use maya_parser::trace::{trace_parse, PatTree};
use maya_parser::ParseError;
use std::fmt;
use std::rc::Rc;

/// A template compilation error.
#[derive(Clone, Debug)]
pub struct TemplateError {
    pub message: String,
    pub span: Span,
}

impl TemplateError {
    fn new(message: impl Into<String>, span: Span) -> TemplateError {
        TemplateError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TemplateError {}

impl From<ParseError> for TemplateError {
    fn from(e: ParseError) -> TemplateError {
        TemplateError::new(e.message, e.span)
    }
}

/// Identifies the grammar's hygiene-relevant productions: Maya can decide
/// hygiene statically *because binding constructs are declared explicitly
/// in the grammar* (§4.3). The compiler provides this once per grammar
/// lineage.
#[derive(Clone, Debug, Default)]
pub struct HygieneSpec {
    /// Nonterminals whose identifiers are *binders* (`UnboundLocal`).
    pub binder_nts: Vec<NtId>,
    /// Productions that are simple-name *references* (`Expression →
    /// Identifier`).
    pub name_ref_prods: Vec<ProdId>,
    /// Productions producing type names from dotted identifiers, resolved
    /// eagerly to strict names (referential transparency).
    pub type_name_prods: Vec<ProdId>,
    /// Dotted-reference productions (`Expression → Expression . Identifier`)
    /// whose full dotted form may denote a class in the definition
    /// environment.
    pub dotted_ref_prods: Vec<ProdId>,
    /// Productions whose semantic action parses a raw delimiter-tree
    /// argument itself (casts, parenthesized expressions, array indices):
    /// `(production, rhs index) → goal kind` used to statically parse those
    /// contents inside templates.
    pub raw_tree_goals: Vec<(ProdId, usize, NodeKind)>,
}

/// A compiled template.
pub struct Template {
    pub goal: NodeKind,
    pub slots: Vec<SlotInfo>,
    pub binders: Vec<Symbol>,
    pub recipe: Rc<Recipe>,
}

impl fmt::Debug for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Template")
            .field("goal", &self.goal)
            .field("slots", &self.slots.len())
            .field("binders", &self.binders)
            .field("reductions", &self.recipe.reduction_count())
            .finish()
    }
}

impl Template {
    /// Compiles a template body.
    ///
    /// `resolver` resolves dotted class names in the Mayan's *definition*
    /// environment to fully qualified names.
    ///
    /// # Errors
    ///
    /// Reports syntax errors in the body, undetermined unquote symbols, and
    /// references to free variables (the static hygiene check).
    pub fn compile(
        grammar: &Grammar,
        hygiene: &HygieneSpec,
        resolver: &dyn Fn(&str) -> Option<Symbol>,
        goal: NodeKind,
        body: &DelimTree,
        kinds: &mut dyn SlotKinds,
    ) -> Result<Template, TemplateError> {
        let _p = maya_telemetry::phase(maya_telemetry::Phase::TemplateCompile);
        maya_telemetry::count(maya_telemetry::Counter::TemplatesCompiled);
        let (input, slots) = crate::scan_unquotes(body, kinds)?;
        let goal_nt = grammar.nt_for_kind_lattice(goal).ok_or_else(|| {
            TemplateError::new(
                format!("no grammar nonterminal for template goal {}", goal.name()),
                body.span(),
            )
        })?;
        let pat = trace_parse(grammar, &input, goal_nt)?;
        let mut binders = Vec::new();
        collect_binders(grammar, hygiene, &pat, &mut binders);
        let cc = CompileCtx {
            grammar,
            hygiene,
            resolver,
            binders: &binders,
        };
        let recipe = cc.convert(&pat, IdentRole::Plain)?;
        maya_telemetry::trace(maya_telemetry::TraceKind::TemplateCompile, || {
            (
                goal.name().to_owned(),
                format!("{} slot(s), {} hygienic binder(s)", slots.len(), binders.len()),
            )
        });
        Ok(Template {
            goal,
            slots,
            binders,
            recipe: Rc::new(recipe),
        })
    }

    /// Instantiates the template with positional slot values.
    ///
    /// # Errors
    ///
    /// See [`crate::instantiate`].
    pub fn instantiate(
        &self,
        values: Vec<Node>,
        host: &mut dyn InstHost,
    ) -> Result<Node, DispatchError> {
        instantiate(self, values, host)
    }
}

fn collect_binders(
    grammar: &Grammar,
    hygiene: &HygieneSpec,
    pat: &PatTree,
    out: &mut Vec<Symbol>,
) {
    match pat {
        PatTree::Node {
            prod, children, ..
        } => {
            let lhs = grammar.production(*prod).lhs;
            if hygiene.binder_nts.contains(&lhs) {
                if let Some((name, _)) = sole_ident(children) {
                    if !out.contains(&name) {
                        out.push(name);
                    }
                }
            }
            for c in children {
                collect_binders(grammar, hygiene, c, out);
            }
        }
        PatTree::Tree { content, .. } => collect_binders(grammar, hygiene, content, out),
        _ => {}
    }
}

/// Finds the single identifier token among pattern children (binder and
/// name-reference productions have exactly one).
fn sole_ident(children: &[PatTree]) -> Option<(Symbol, Span)> {
    let mut found = None;
    for c in children {
        match c {
            PatTree::Token(t) if t.kind == TokenKind::Ident => {
                if found.is_some() {
                    return None;
                }
                found = Some((t.text, t.span));
            }
            PatTree::Node { children, .. } => {
                if let Some(inner) = sole_ident(children) {
                    if found.is_some() {
                        return None;
                    }
                    found = Some(inner);
                }
            }
            _ => {}
        }
    }
    found
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum IdentRole {
    Plain,
    Binder,
    Reference,
}

struct CompileCtx<'a> {
    grammar: &'a Grammar,
    hygiene: &'a HygieneSpec,
    resolver: &'a dyn Fn(&str) -> Option<Symbol>,
    binders: &'a [Symbol],
}

impl CompileCtx<'_> {
    fn convert(&self, pat: &PatTree, role: IdentRole) -> Result<Recipe, TemplateError> {
        match pat {
            PatTree::Token(t) => {
                if t.kind == TokenKind::Ident {
                    match role {
                        IdentRole::Binder => {
                            return Ok(Recipe::Binder {
                                base: t.text,
                                span: t.span,
                            })
                        }
                        IdentRole::Reference => {
                            return Ok(Recipe::BinderRef {
                                base: t.text,
                                span: t.span,
                            })
                        }
                        IdentRole::Plain => {}
                    }
                }
                Ok(Recipe::Token(*t))
            }
            PatTree::Leaf { index, span, .. } => Ok(Recipe::Slot {
                index: *index,
                span: *span,
            }),
            PatTree::Tree {
                lazy: false,
                content,
                ..
            } => Ok(Recipe::Eager(Box::new(self.convert(content, role)?))),
            PatTree::Tree {
                lazy: true,
                content,
                kind,
                raw,
                span,
                ..
            } => Ok(Recipe::Lazy {
                goal_kind: kind.unwrap_or(NodeKind::Top),
                raw: raw.clone(),
                content: Rc::new(self.convert(content, IdentRole::Plain)?),
                span: *span,
            }),
            PatTree::Node {
                prod,
                children,
                span,
                ..
            } => self.convert_node(*prod, children, *span, role),
            PatTree::RawTree(d, _) => Err(TemplateError::new(
                "internal error: unparsed tree in template",
                d.span(),
            )),
            PatTree::Marker => Err(TemplateError::new(
                "internal error: marker in template",
                Span::DUMMY,
            )),
        }
    }

    fn convert_node(
        &self,
        prod: ProdId,
        children: &[PatTree],
        span: Span,
        role: IdentRole,
    ) -> Result<Recipe, TemplateError> {
        let lhs = self.grammar.production(prod).lhs;

        // Dotted class reference (`java.util.Enumeration` in a declaration
        // statement): resolve the whole chain in the definition environment.
        if self.hygiene.dotted_ref_prods.contains(&prod) {
            if let Some(dotted) = dotted_name(children) {
                if let Some(fqcn) = (self.resolver)(&dotted) {
                    return Ok(Recipe::Const(Node::Expr(Expr::new(
                        span,
                        ExprKind::ClassRef(fqcn),
                    ))));
                }
            }
        }

        // Binding position: identifiers below are binders.
        if self.hygiene.binder_nts.contains(&lhs) {
            let children = children
                .iter()
                .map(|c| self.convert(c, IdentRole::Binder))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Recipe::Node {
                prod,
                children,
                span,
            });
        }

        // Simple-name reference: a binder reference, a class (referential
        // transparency), or a free-variable error.
        if self.hygiene.name_ref_prods.contains(&prod) {
            if let Some((name, nspan)) = sole_ident(children) {
                if self.binders.contains(&name) {
                    let children = children
                        .iter()
                        .map(|c| self.convert(c, IdentRole::Reference))
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(Recipe::Node {
                        prod,
                        children,
                        span,
                    });
                }
                if let Some(fqcn) = (self.resolver)(name.as_str()) {
                    return Ok(Recipe::Const(Node::Expr(Expr::new(
                        nspan,
                        ExprKind::ClassRef(fqcn),
                    ))));
                }
                return Err(TemplateError::new(
                    format!(
                        "template refers to free variable `{name}`; unquote it or \
                         declare it in the template (hygiene, paper §4.3)"
                    ),
                    nspan,
                ));
            }
        }

        // Type-name position: resolve dotted names now, producing strict
        // type names immune to shadowing at the splice site.
        if self.hygiene.type_name_prods.contains(&prod) {
            if let Some(dotted) = dotted_name(children) {
                let span2 = span;
                return match (self.resolver)(&dotted) {
                    Some(fqcn) => Ok(Recipe::Const(Node::Type(TypeName::new(
                        span2,
                        maya_ast::TypeNameKind::Strict(fqcn),
                    )))),
                    None => Err(TemplateError::new(
                        format!("template refers to unknown type `{dotted}`"),
                        span2,
                    )),
                };
            }
            // Contains slots or non-name parts: leave for splice-site
            // resolution.
        }

        let children = children
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // A raw tree consumed by a tree-parsing action: statically
                // parse its contents with the production's goal so slots,
                // binders, and references inside are processed.
                if let PatTree::RawTree(d, pattern) = c {
                    let goal_kind = self
                        .hygiene
                        .raw_tree_goals
                        .iter()
                        .find(|(p, idx, _)| *p == prod && *idx == i)
                        .map(|(_, _, g)| *g);
                    if let Some(goal_kind) = goal_kind {
                        if d.is_empty() {
                            return Ok(Recipe::Const(Node::Tree(
                                maya_lexer::TokenTree::Delim(d.clone()),
                            )));
                        }
                        let goal =
                            self.grammar.nt_for_kind_lattice(goal_kind).ok_or_else(|| {
                                TemplateError::new(
                                    format!("no nonterminal for {}", goal_kind.name()),
                                    d.span(),
                                )
                            })?;
                        let input: Vec<maya_parser::Input<PatTree>> = match pattern {
                            Some(p) => (**p).clone(),
                            None => maya_parser::Input::from_token_trees(&d.trees),
                        };
                        let content = trace_parse(self.grammar, &input, goal)?;
                        return Ok(Recipe::Eager(Box::new(self.convert(&content, role)?)));
                    }
                    // No registered goal (e.g. a nested template body): keep
                    // the raw tree; unquotes inside belong to the inner
                    // template.
                    return Ok(Recipe::Const(Node::Tree(maya_lexer::TokenTree::Delim(
                        d.clone(),
                    ))));
                }
                self.convert(c, role)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Recipe::Node {
            prod,
            children,
            span,
        })
    }
}

/// Extracts `a.b.c` when the pattern subtree is only identifiers and dots.
fn dotted_name(children: &[PatTree]) -> Option<String> {
    fn walk(pat: &PatTree, out: &mut String) -> bool {
        match pat {
            PatTree::Token(t) if t.kind == TokenKind::Ident => {
                out.push_str(t.text.as_str());
                true
            }
            PatTree::Token(t) if t.kind == TokenKind::Dot => {
                out.push('.');
                true
            }
            PatTree::Node { children, .. } => children.iter().all(|c| walk(c, out)),
            _ => false,
        }
    }
    let mut s = String::new();
    if children.iter().all(|c| walk(c, &mut s)) && !s.is_empty() {
        Some(s)
    } else {
        None
    }
}
