//! Templates (quasiquote) with static checking and static hygiene
//! (paper §3.2, §4.2–4.3).
//!
//! A template builds abstract syntax from concrete syntax: `new Statement {
//! for (Enumeration enumVar = $enumExp; …) { … } }`. This crate:
//!
//! * scans the body for **unquotes** (`$name`, `$(expr)`, `$(as Kind expr)`),
//!   turning each into a *nonterminal input symbol* whose grammar symbol is
//!   given by its static type or the explicit coercion;
//! * **pattern-parses** the body once, at template compile time — templates
//!   are statically guaranteed to produce syntactically valid ASTs;
//! * performs the **static hygiene** analysis: identifiers in binding
//!   positions (the grammar's `UnboundLocal` nonterminal) are renamed to
//!   fresh `name$N` identifiers at each instantiation; identifier
//!   *references* must either refer to a template binder, be unquoted, or
//!   resolve in the Mayan's definition environment (class names become
//!   direct references — referential transparency). Anything else is a
//!   compile-time "reference to free variable" error;
//! * compiles the parse into a [`Recipe`] — code that performs the same
//!   sequence of shifts and reductions the parser would have performed —
//!   and instantiates it by replaying those reductions through an
//!   [`InstHost`] (so Mayan dispatch still applies to generated syntax);
//! * honors **laziness**: sub-templates in `lazy(...)` positions become
//!   [`TemplateThunk`]s, expanded when the corresponding syntax would have
//!   been parsed.

mod compile;
mod instantiate;
mod recipe;
mod scan;

pub use compile::{HygieneSpec, Template, TemplateError};
pub use instantiate::{instantiate, InstHost, TemplateThunk};
pub use recipe::Recipe;
pub use scan::{scan_unquotes, SlotInfo, SlotKinds, SlotSource};

/// Re-exports used by tests and hosts.
pub mod __private_fresh {
    pub use crate::instantiate::FreshNames;
}
