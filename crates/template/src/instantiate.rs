//! Template instantiation: replaying compiled recipes.

use crate::{Recipe, Template};
use maya_ast::{LazyNode, Node};
use maya_dispatch::DispatchError;
use maya_grammar::ProdId;
use maya_lexer::{sym, Span, Symbol, Token, TokenKind};
use std::collections::HashMap;
use std::rc::Rc;

/// Host services for instantiation: running semantic actions (full Mayan
/// dispatch) and generating fresh hygienic names.
pub trait InstHost {
    /// Runs the semantic action of `prod` on instantiated child values.
    ///
    /// # Errors
    ///
    /// Propagates dispatch failures.
    fn reduce(&mut self, prod: ProdId, args: Vec<Node>, span: Span) -> Result<Node, DispatchError>;

    /// A fresh name `base$N`, unique within the compilation unit.
    fn fresh(&mut self, base: &str) -> Symbol;

    /// An opaque environment payload captured into lazy thunks (the
    /// compiler stores its grammar/dispatch snapshot here so that a thunk
    /// replays under the template's definition environment).
    fn thunk_env(&mut self) -> Option<Rc<dyn std::any::Any>> {
        None
    }
}

/// The payload stored in a lazy node created by a template: when the node
/// is forced, the compiler recognizes this payload and replays the captured
/// sub-recipe instead of parsing the raw tree (paper §4.2: "sub-templates
/// that correspond to lazy syntax are compiled into local thunk classes
/// that are expanded when the corresponding syntax would be parsed").
pub struct TemplateThunk {
    pub content: Rc<Recipe>,
    pub values: Rc<Vec<Node>>,
    pub renames: Rc<HashMap<Symbol, Symbol>>,
    /// The host's environment payload (see [`InstHost::thunk_env`]).
    pub env: Option<Rc<dyn std::any::Any>>,
}

impl TemplateThunk {
    /// Replays the thunk's sub-recipe.
    ///
    /// # Errors
    ///
    /// Propagates dispatch failures from replayed reductions.
    pub fn replay(&self, host: &mut dyn InstHost) -> Result<Node, DispatchError> {
        inst(&self.content, &self.values, &self.renames, host)
    }
}

/// Instantiates a compiled template with positional slot values.
///
/// Fresh names are allocated for every binder — each instantiation gets its
/// own `enumVar$N`, so expansions never capture each other's variables.
///
/// # Errors
///
/// Fails when the value count mismatches the slot table or a replayed
/// reduction fails to dispatch.
pub fn instantiate(
    template: &Template,
    values: Vec<Node>,
    host: &mut dyn InstHost,
) -> Result<Node, DispatchError> {
    if values.len() != template.slots.len() {
        return Err(DispatchError::new(
            format!(
                "template expects {} slot value(s), got {}",
                template.slots.len(),
                values.len()
            ),
            Span::DUMMY,
        ));
    }
    let _p = maya_telemetry::phase(maya_telemetry::Phase::TemplateInstantiate);
    maya_telemetry::count(maya_telemetry::Counter::TemplatesInstantiated);
    let mut renames = HashMap::new();
    for b in &template.binders {
        renames.insert(*b, host.fresh(b.as_str()));
    }
    maya_telemetry::add(
        maya_telemetry::Counter::HygieneRenames,
        renames.len() as u64,
    );
    maya_telemetry::trace(maya_telemetry::TraceKind::TemplateInstantiate, || {
        let pairs: Vec<String> = renames
            .iter()
            .map(|(from, to)| format!("{from} → {to}"))
            .collect();
        (
            template.goal.name().to_owned(),
            if pairs.is_empty() {
                "no hygienic binders".to_owned()
            } else {
                format!("hygiene renames: {}", pairs.join(", "))
            },
        )
    });
    inst(&template.recipe, &Rc::new(values), &Rc::new(renames), host)
}

fn inst(
    recipe: &Recipe,
    values: &Rc<Vec<Node>>,
    renames: &Rc<HashMap<Symbol, Symbol>>,
    host: &mut dyn InstHost,
) -> Result<Node, DispatchError> {
    match recipe {
        Recipe::Token(t) => Ok(Node::Token(*t)),
        Recipe::Binder { base, span } | Recipe::BinderRef { base, span } => {
            let name = renames.get(base).copied().unwrap_or(*base);
            Ok(Node::Token(Token::new(TokenKind::Ident, name, *span)))
        }
        Recipe::Const(n) => Ok(n.clone()),
        Recipe::Slot { index, .. } => Ok(values[*index].clone()),
        Recipe::Node {
            prod,
            children,
            span,
        } => {
            let args = children
                .iter()
                .map(|c| inst(c, values, renames, host))
                .collect::<Result<Vec<_>, _>>()?;
            host.reduce(*prod, args, *span)
        }
        Recipe::Eager(inner) => inst(inner, values, renames, host),
        Recipe::Lazy {
            goal_kind,
            raw,
            content,
            ..
        } => {
            let thunk = TemplateThunk {
                content: content.clone(),
                values: values.clone(),
                renames: renames.clone(),
                env: host.thunk_env(),
            };
            Ok(Node::Lazy(LazyNode::new(
                *goal_kind,
                raw.clone(),
                Some(Rc::new(thunk)),
            )))
        }
    }
}

/// A trivially countable fresh-name source, usable by hosts.
#[derive(Default, Debug)]
pub struct FreshNames {
    counter: u64,
}

impl FreshNames {
    /// Creates a counter starting at zero.
    pub fn new() -> FreshNames {
        FreshNames::default()
    }

    /// The next fresh name for `base` (contains `$`, so it can never
    /// collide with source identifiers).
    pub fn fresh(&mut self, base: &str) -> Symbol {
        self.counter += 1;
        sym(&format!("{base}${}", self.counter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_are_unique_and_marked() {
        let mut f = FreshNames::new();
        let a = f.fresh("enumVar");
        let b = f.fresh("enumVar");
        assert_ne!(a, b);
        assert!(a.as_str().contains('$'));
        assert!(a.as_str().starts_with("enumVar$"));
    }
}
