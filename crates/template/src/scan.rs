//! Unquote scanning: template body tokens → pattern input with slot leaves.

use maya_ast::NodeKind;
use maya_lexer::{DelimTree, Span, Symbol, TokenKind, TokenTree};
use maya_parser::trace::PatTree;
use maya_parser::{Input, NtSel, ParseError};
use std::rc::Rc;

/// Where a slot's value comes from at instantiation.
#[derive(Clone, Debug)]
pub enum SlotSource {
    /// `$name`: a named value supplied by the Mayan.
    Named(Symbol),
    /// `$( tokens… )`: an expression evaluated in the Mayan's body (used by
    /// interpreted Mayans; native Mayans pass values directly).
    Expr(Vec<TokenTree>),
}

/// One unquote slot: its source and the grammar symbol it stands for.
#[derive(Clone, Debug)]
pub struct SlotInfo {
    pub source: SlotSource,
    pub kind: NodeKind,
    pub span: Span,
}

/// Resolves slot grammar symbols: "An unquote expression's grammar symbol
/// is determined by its static type or an explicit coercion operator"
/// (paper §4.2). `named` types `$name` slots; `expr` types `$(expr)` slots
/// without a coercion.
pub trait SlotKinds {
    /// The node kind of a named slot, or `None` if unknown.
    fn named(&mut self, name: Symbol) -> Option<NodeKind>;

    /// The node kind of an expression slot (from its static type).
    fn expr(&mut self, tokens: &[TokenTree]) -> Option<NodeKind>;
}

/// Scans a template body, replacing unquotes with nonterminal leaves.
/// Returns the pattern input plus the slot table (leaf `index` `i` refers to
/// `slots[i]`).
///
/// # Errors
///
/// Reports malformed unquotes and slots whose grammar symbol cannot be
/// determined.
pub fn scan_unquotes(
    body: &DelimTree,
    kinds: &mut dyn SlotKinds,
) -> Result<(Vec<Input<PatTree>>, Vec<SlotInfo>), ParseError> {
    let mut slots = Vec::new();
    let input = scan_seq(&body.trees, kinds, &mut slots)?;
    Ok((input, slots))
}

fn scan_seq(
    trees: &[TokenTree],
    kinds: &mut dyn SlotKinds,
    slots: &mut Vec<SlotInfo>,
) -> Result<Vec<Input<PatTree>>, ParseError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            TokenTree::Token(t) if t.kind == TokenKind::Dollar => {
                let span = t.span;
                let (info, consumed) = match trees.get(i + 1) {
                    Some(TokenTree::Token(id)) if id.kind == TokenKind::Ident => {
                        let kind = kinds.named(id.text).ok_or_else(|| {
                            ParseError::new(
                                format!("cannot determine the grammar symbol of ${}", id.text),
                                id.span,
                            )
                        })?;
                        (
                            SlotInfo {
                                source: SlotSource::Named(id.text),
                                kind,
                                span: span.to(id.span),
                            },
                            2,
                        )
                    }
                    Some(TokenTree::Delim(d)) if d.delim == maya_lexer::Delim::Paren => {
                        (parse_expr_slot(d, kinds, span)?, 2)
                    }
                    _ => {
                        return Err(ParseError::new(
                            "`$` must be followed by an identifier or a parenthesized \
                             expression",
                            span,
                        ))
                    }
                };
                let index = slots.len();
                let kind = info.kind;
                let slot_span = info.span;
                slots.push(info);
                out.push(Input::Nt(
                    NtSel::Kind(kind),
                    PatTree::leaf(NtSel::Kind(kind), index, slot_span),
                    slot_span,
                ));
                i += consumed;
            }
            TokenTree::Token(t) => {
                out.push(Input::Tok(*t));
                i += 1;
            }
            TokenTree::Delim(d) => {
                let inner = scan_seq(&d.trees, kinds, slots)?;
                out.push(Input::Tree(d.clone(), Some(Rc::new(inner))));
                i += 1;
            }
        }
    }
    Ok(out)
}

/// Parses `$( … )`: either `(as Kind tokens…)` or `(tokens…)`.
fn parse_expr_slot(
    d: &DelimTree,
    kinds: &mut dyn SlotKinds,
    dollar_span: Span,
) -> Result<SlotInfo, ParseError> {
    let span = dollar_span.to(d.span());
    let mut toks = d.trees.as_slice();
    let mut explicit_kind = None;
    if let [TokenTree::Token(as_tok), TokenTree::Token(kind_tok), rest @ ..] = toks {
        if as_tok.is_ident("as") && kind_tok.kind == TokenKind::Ident {
            let kind = NodeKind::from_symbol(kind_tok.text).ok_or_else(|| {
                ParseError::new(
                    format!("unknown node kind {} in `as` coercion", kind_tok.text),
                    kind_tok.span,
                )
            })?;
            explicit_kind = Some(kind);
            toks = rest;
        }
    }
    if toks.is_empty() {
        return Err(ParseError::new("empty unquote expression", span));
    }
    let kind = match explicit_kind {
        Some(k) => k,
        None => kinds.expr(toks).ok_or_else(|| {
            ParseError::new(
                "cannot determine the grammar symbol of this unquote; use `$(as Kind …)`",
                span,
            )
        })?,
    };
    Ok(SlotInfo {
        source: SlotSource::Expr(toks.to_vec()),
        kind,
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::{sym, tree_lex_str, Delim};

    struct FixedKinds;

    impl SlotKinds for FixedKinds {
        fn named(&mut self, name: Symbol) -> Option<NodeKind> {
            match name.as_str() {
                "e" => Some(NodeKind::Expression),
                "body" => Some(NodeKind::Statement),
                _ => None,
            }
        }

        fn expr(&mut self, _tokens: &[TokenTree]) -> Option<NodeKind> {
            Some(NodeKind::Expression)
        }
    }

    fn body(src: &str) -> DelimTree {
        let trees = tree_lex_str(&format!("{{ {src} }}")).unwrap();
        trees[0].as_delim().unwrap().clone()
    }

    #[test]
    fn named_slots() {
        let (input, slots) = scan_unquotes(&body("x = $e ;"), &mut FixedKinds).unwrap();
        assert_eq!(slots.len(), 1);
        assert!(matches!(slots[0].source, SlotSource::Named(n) if n == sym("e")));
        assert_eq!(slots[0].kind, NodeKind::Expression);
        // x, =, <slot>, ;
        assert_eq!(input.len(), 4);
        assert!(matches!(input[2], Input::Nt(..)));
    }

    #[test]
    fn expr_and_coerced_slots() {
        let (_, slots) =
            scan_unquotes(&body("$(f(1)) ; $(as Statement mk()) ;"), &mut FixedKinds).unwrap();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].kind, NodeKind::Expression);
        assert_eq!(slots[1].kind, NodeKind::Statement);
        assert!(matches!(slots[1].source, SlotSource::Expr(ref t) if !t.is_empty()));
    }

    #[test]
    fn nested_trees_keep_pattern_contents() {
        let (input, slots) = scan_unquotes(&body("f ( $e ) ;"), &mut FixedKinds).unwrap();
        assert_eq!(slots.len(), 1);
        match &input[1] {
            Input::Tree(d, Some(inner)) => {
                assert_eq!(d.delim, Delim::Paren);
                assert!(matches!(inner[0], Input::Nt(..)));
            }
            other => panic!("expected pattern tree, got {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(scan_unquotes(&body("$unknown ;"), &mut FixedKinds).is_err());
        assert!(scan_unquotes(&body("$ ;"), &mut FixedKinds).is_err());
        assert!(scan_unquotes(&body("$() ;"), &mut FixedKinds).is_err());
        assert!(scan_unquotes(&body("$(as Bogus x) ;"), &mut FixedKinds).is_err());
    }
}
