//! Grammar-aware differential fuzzing (`cargo xtask fuzz`).
//!
//! The generator derives structurally valid MayaJava programs — and
//! random Mayan extensions — directly from the base grammar's
//! productions, then layers splice/truncate/duplicate mutations on top
//! for the invalid-input half. Every case runs through six differential
//! oracles, each an invariant the system already promises:
//!
//! * **engine** — all three execution tiers must produce byte-identical
//!   outcomes: the bytecode VM (default), the lowered tree walker
//!   (`Interp::set_bytecode(false)`, the in-process face of
//!   `MAYA_NO_BYTECODE`), and the legacy tree walker
//!   (`Interp::set_lowering(false)`, the face of `MAYA_NO_LOWER`);
//! * **warm/post-edit** — a persistent [`Session`] (the `mayad` shape)
//!   fed hundreds of unrelated programs must match a cold batch compile,
//!   including after an edit/revert cycle through the same session;
//! * **jobs** — `--jobs=1` vs `--jobs=4` must be byte-identical;
//! * **pool** — a campaign-persistent 4-worker [`CompilePool`] (the
//!   concurrent `mayad` service shape, Arc-shared warm tiers) answers
//!   each case for a rotating client and must match the cold batch
//!   compile byte for byte;
//! * **store** — a fresh session populating an empty persistent artifact
//!   store and a second fresh session hydrating from it (the
//!   cold-process-with-warm-`--cache-dir` shape) must both be
//!   byte-identical to a store-less cold compile;
//! * **faults** — under a sampled `MAYA_FAULTS`-style injection, armed
//!   identically on all three engines, diagnostics may differ from the
//!   clean run but the engines must still agree, and no panic may escape
//!   the driver boundary.
//!
//! Coverage feedback comes from the telemetry counters and cache gauges
//! that already exist: a case that lights a (counter, log2-magnitude)
//! pair never seen before is kept as a seed for later mutation. Any
//! diverging or panicking case is auto-minimized by a delta-debugging
//! pass at file and line (≈ statement/member/extension) granularity;
//! real divergences land under `tests/corpus/regressions/`, induced ones
//! (`--induce`, used to prove the minimizer end to end) stay in
//! `target/fuzz/`. Everything is summarized in `BENCH_fuzz.json`; the
//! whole run is deterministic for a given seed.

use crate::XorShift;
use maya::ast::NodeKind;
use maya::core::json::{parse_json, Json};
use maya::core::service::{CompilePool, PoolConfig, PoolRequest};
use maya::grammar::{Action, BuiltinAction, NtId, Sym, Terminal};
use maya::lexer::{Delim, TokenKind};
use maya::telemetry::{self, json_string, CacheId, Counter};
use maya::{CompileOptions, Compiler, Outcome, RequestOpts, Session};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::Arc;

pub(crate) const DEFAULT_CASES: usize = 300;
pub(crate) const DEFAULT_SEED: u64 = 7;

/// Hard cap on minimizer predicate evaluations per divergence (each
/// evaluation is a handful of compiles).
const MAX_MIN_EVALS: usize = 250;

pub(crate) struct FuzzConfig {
    pub cases: usize,
    pub seed: u64,
    /// Wall-clock budget; generation stops early when exceeded.
    pub budget_secs: Option<u64>,
    /// Arm a one-sided fault on the legacy engine every few cases to
    /// *induce* divergences — proves detection + minimization end to end.
    pub induce: bool,
}

// ---- grammar-derived generation ----------------------------------------------

/// Derives token text straight from the base grammar's productions, the
/// same tables the pattern parser runs on.
struct GrammarGen {
    grammar: maya::grammar::Grammar,
    /// Derivable production indices per LHS nonterminal (goal-marker and
    /// start plumbing excluded).
    by_nt: Vec<Vec<usize>>,
    /// Minimum derivation cost (symbols expanded) per nonterminal;
    /// `u64::MAX` marks nonterminals with no terminal derivation.
    cost: Vec<u64>,
}

/// Identifier pool; the `main` prelude declares the first few so grammar
/// derivations have semantically live names to land on.
const IDENTS: &[&str] = &["a", "b", "s", "v", "t", "u"];

impl GrammarGen {
    fn new() -> GrammarGen {
        let base = maya::core::Base::cached();
        let grammar = base.grammar.clone();
        let prods = grammar.productions();
        let n = grammar.nt_count();
        let mut by_nt = vec![Vec::new(); n];
        for (i, p) in prods.iter().enumerate() {
            let internal = matches!(p.action, Action::Builtin(BuiltinAction::StartAccept))
                || p.rhs.iter().any(|s| {
                    matches!(
                        s,
                        Sym::T(Terminal::Goal(_) | Terminal::EndOf(_) | Terminal::End)
                    )
                });
            if !internal {
                by_nt[p.lhs.0 as usize].push(i);
            }
        }
        // Min-cost fixpoint: cost(nt) = min over its productions of
        // 1 + Σ cost(sym), terminals costing 1. Nonterminals that never
        // converge (production-less markers) keep MAX and derive as ε.
        let mut cost = vec![u64::MAX; n];
        loop {
            let mut changed = false;
            for (nt, options) in by_nt.iter().enumerate() {
                let mut best = u64::MAX;
                for &pi in options {
                    best = best.min(prod_cost(&prods[pi].rhs, &cost));
                }
                if best < cost[nt] {
                    cost[nt] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        GrammarGen { grammar, by_nt, cost }
    }

    fn nt(&self, kind: NodeKind) -> NtId {
        self.grammar
            .nt_for_kind(kind)
            .unwrap_or_else(|| panic!("base grammar registers {}", kind.name()))
    }

    /// Appends one derivation of `nt` to `out`. `budget` bounds the
    /// derivation size; at or below the nonterminal's minimum cost the
    /// cheapest production is forced, so recursion always terminates.
    fn derive(&self, rng: &mut XorShift, nt: NtId, budget: u64, out: &mut String) {
        let options = &self.by_nt[nt.0 as usize];
        if options.is_empty() || self.cost[nt.0 as usize] == u64::MAX {
            return; // production-less marker: derive ε
        }
        let prods = self.grammar.productions();
        let eb = budget.max(self.cost[nt.0 as usize]);
        let within: Vec<usize> = options
            .iter()
            .copied()
            .filter(|&pi| prod_cost(&prods[pi].rhs, &self.cost) <= eb)
            .collect();
        let pi = if within.is_empty() {
            // Unreachable given eb >= cost[nt], but stay total.
            *options
                .iter()
                .min_by_key(|&&pi| prod_cost(&prods[pi].rhs, &self.cost))
                .expect("non-empty options")
        } else {
            within[rng.below(within.len())]
        };
        let p = &prods[pi];
        let mut slack = eb.saturating_sub(prod_cost(&p.rhs, &self.cost));

        // Subtree helpers carry their goal in the action; the single
        // Tree terminal is rendered as delimiters around a goal derivation.
        if let Action::Builtin(
            BuiltinAction::ParseSubtree { goal } | BuiltinAction::LazySubtree { goal, .. },
        ) = p.action
        {
            if let Some(Sym::T(Terminal::Tree(d))) = p.rhs.first() {
                let (open, close) = delim_chars(*d);
                out.push(open);
                out.push(' ');
                self.derive(rng, goal, self.cost.get(goal.0 as usize).copied().unwrap_or(0).saturating_add(slack), out);
                out.push(close);
                out.push(' ');
                return;
            }
        }

        for sym in &p.rhs {
            match sym {
                Sym::T(t) => self.render_terminal(rng, *t, out),
                Sym::N(child) => {
                    let extra = if slack == 0 { 0 } else { rng.next() % (slack + 1) };
                    slack -= extra;
                    let child_min = self.cost.get(child.0 as usize).copied().unwrap_or(0);
                    let child_budget = if child_min == u64::MAX {
                        0
                    } else {
                        child_min.saturating_add(extra)
                    };
                    self.derive(rng, *child, child_budget, out);
                }
            }
        }
    }

    fn render_terminal(&self, rng: &mut XorShift, t: Terminal, out: &mut String) {
        match t {
            Terminal::Tok(k) => {
                match k {
                    TokenKind::Ident => out.push_str(IDENTS[rng.below(IDENTS.len())]),
                    TokenKind::IntLit => {
                        let _ = write!(out, "{}", rng.below(10));
                    }
                    TokenKind::LongLit => {
                        let _ = write!(out, "{}L", rng.below(10));
                    }
                    TokenKind::FloatLit => {
                        let _ = write!(out, "{}.5f", rng.below(4));
                    }
                    TokenKind::DoubleLit => {
                        let _ = write!(out, "{}.25", rng.below(4));
                    }
                    TokenKind::CharLit => out.push_str("'x'"),
                    TokenKind::StringLit => {
                        let _ = write!(out, "\"s{}\"", rng.below(4));
                    }
                    // Keywords and punctuators name themselves.
                    _ => out.push_str(k.name()),
                }
                out.push(' ');
            }
            Terminal::Word(w) => {
                out.push_str(w.as_str());
                out.push(' ');
            }
            // A raw delimiter tree with no goal (`(...)` expressions,
            // `[...]` array syntax): fill with something token-shaped.
            Terminal::Tree(d) => {
                let (open, close) = delim_chars(d);
                out.push(open);
                out.push(' ');
                match rng.below(3) {
                    0 => {}
                    1 => {
                        let _ = write!(out, "{} ", rng.below(10));
                    }
                    _ => {
                        out.push_str(IDENTS[rng.below(IDENTS.len())]);
                        out.push(' ');
                    }
                }
                out.push(close);
                out.push(' ');
            }
            Terminal::Goal(_) | Terminal::EndOf(_) | Terminal::End => {}
        }
    }
}

fn prod_cost(rhs: &[Sym], cost: &[u64]) -> u64 {
    let mut total = 1u64;
    for s in rhs {
        total = total.saturating_add(match s {
            Sym::T(_) => 1,
            Sym::N(nt) => cost.get(nt.0 as usize).copied().unwrap_or(u64::MAX),
        });
    }
    total
}

fn delim_chars(d: Delim) -> (char, char) {
    match d {
        Delim::Paren => ('(', ')'),
        Delim::Brace => ('{', '}'),
        Delim::Brack => ('[', ']'),
    }
}

// ---- generated Mayan extensions ----------------------------------------------

/// One pattern item of a generated extension. The same items render three
/// ways — abstract production RHS, concrete Mayan parameter list, and
/// use-site text — so the loop is closed by construction: whatever
/// pattern the generator declares, it also exercises.
enum ExtItem {
    /// `Expression[:java.lang.String] <name>` — a node parameter,
    /// optionally specialized on a static type.
    Expr { name: String, typed: bool },
    /// `(Formal <name>)` — a delimiter subtree around a formal.
    FormalSub { name: String },
    /// `lazy(BraceTree, BlockStmts) <name>` — a lazily parsed body.
    Lazy { name: String },
    /// A literal `;` terminator.
    Semi,
}

struct ExtSpec {
    /// Mayan name (`Gx3`), what the application `use`s.
    name: String,
    /// Leading contextual keyword; unique per extension so generated
    /// productions never collide in the LALR tables.
    marker: String,
    items: Vec<ExtItem>,
    /// Splice the lazy body twice (when present) — exercises template
    /// re-instantiation of the same lazy subtree.
    twice: bool,
    /// Drop every parameter: the body expands to `;`, so lazily parsed
    /// arguments must never be forced.
    drop_all: bool,
}

impl ExtSpec {
    fn gen(rng: &mut XorShift, tag: usize) -> ExtSpec {
        let mut items = Vec::new();
        let n_mid = 1 + rng.below(2);
        for k in 0..n_mid {
            match rng.below(3) {
                0 => items.push(ExtItem::Expr { name: format!("pe{k}"), typed: false }),
                1 => items.push(ExtItem::Expr { name: format!("pe{k}"), typed: true }),
                _ => items.push(ExtItem::FormalSub { name: format!("pf{k}") }),
            }
        }
        let lazy_tail = rng.below(5) != 0;
        if lazy_tail {
            items.push(ExtItem::Lazy { name: "body".to_owned() });
        } else {
            items.push(ExtItem::Semi);
        }
        ExtSpec {
            name: format!("Gx{tag}"),
            marker: format!("gxm{tag}"),
            items,
            twice: lazy_tail && rng.below(3) == 0,
            drop_all: rng.below(6) == 0,
        }
    }

    /// The extension-library source: abstract production + concrete Mayan.
    fn decl_source(&self) -> String {
        let mut rhs = vec![self.marker.clone()];
        let mut params = vec![self.marker.clone()];
        for item in &self.items {
            match item {
                ExtItem::Expr { name, typed } => {
                    rhs.push("Expression".to_owned());
                    params.push(if *typed {
                        format!("Expression:java.lang.String {name}")
                    } else {
                        format!("Expression {name}")
                    });
                }
                ExtItem::FormalSub { name } => {
                    rhs.push("(Formal)".to_owned());
                    params.push(format!("(Formal {name})"));
                }
                ExtItem::Lazy { name } => {
                    rhs.push("lazy(BraceTree, BlockStmts)".to_owned());
                    params.push(format!("lazy(BraceTree, BlockStmts) {name}"));
                }
                ExtItem::Semi => {
                    rhs.push(";".to_owned());
                    params.push(";".to_owned());
                }
            }
        }
        let mut body_stmts = Vec::new();
        if !self.drop_all {
            for item in &self.items {
                match item {
                    ExtItem::Expr { name, .. } => {
                        body_stmts.push(format!("System.out.println(${name});"));
                    }
                    ExtItem::FormalSub { name } => {
                        body_stmts.push(format!("$(DeclStmt.make({name}))"));
                    }
                    ExtItem::Lazy { name } => {
                        body_stmts.push(format!("${name}"));
                        if self.twice {
                            body_stmts.push(format!("${name}"));
                        }
                    }
                    ExtItem::Semi => {}
                }
            }
        }
        let body = if body_stmts.is_empty() {
            "    return new Statement { ; };".to_owned()
        } else {
            format!(
                "    return new Statement {{ {{ {} }} }};",
                body_stmts.join(" ")
            )
        };
        format!(
            "abstract Statement syntax({});\n\nStatement syntax\n{}({})\n{{\n{body}\n}}\n",
            rhs.join(" "),
            self.name,
            params.join(" ")
        )
    }

    /// One use-site statement matching the declared pattern.
    fn use_site(&self, rng: &mut XorShift, gen: &GrammarGen) -> String {
        let mut out = self.marker.clone();
        out.push(' ');
        for (k, item) in self.items.iter().enumerate() {
            match item {
                ExtItem::Expr { typed, .. } => {
                    if *typed {
                        let _ = write!(out, "\"x{}\" ", rng.below(4));
                    } else {
                        match rng.below(3) {
                            0 => {
                                let _ = write!(out, "{} + {} ", rng.below(5), rng.below(5));
                            }
                            1 => out.push_str("a "),
                            _ => {
                                let _ = write!(out, "\"y{}\" ", rng.below(4));
                            }
                        }
                    }
                }
                ExtItem::FormalSub { .. } => {
                    let _ = write!(out, "(int q{k}) ");
                }
                ExtItem::Lazy { .. } => {
                    out.push_str("{ ");
                    match rng.below(3) {
                        0 => out.push_str("System.out.println(\"in\"); "),
                        1 => out.push_str("a = a + 1; "),
                        _ => {
                            let snt = gen.nt(NodeKind::Statement);
                            gen.derive(rng, snt, 8, &mut out);
                        }
                    }
                    out.push_str("} ");
                }
                ExtItem::Semi => out.push_str("; "),
            }
        }
        out
    }
}

// ---- case generation ---------------------------------------------------------

struct Case {
    sources: Vec<(String, String)>,
    /// Number of generated Mayan extensions in this case.
    extensions: usize,
}

fn gen_case(rng: &mut XorShift, gen: &GrammarGen, tag: usize) -> Case {
    let with_ext = rng.below(100) < 40;
    let mut sources = Vec::new();
    let mut ext_specs = Vec::new();
    if with_ext {
        let n = if rng.below(10) == 0 { 2 } else { 1 };
        let mut ext_src = String::new();
        for k in 0..n {
            let spec = ExtSpec::gen(rng, tag * 4 + k);
            ext_src.push_str(&spec.decl_source());
            ext_src.push('\n');
            ext_specs.push(spec);
        }
        sources.push(("fuzz_ext.maya".to_owned(), ext_src));
    }

    // The application: a Main with grammar-derived members and statements
    // over a small declared-local prelude, plus use sites for every
    // generated extension.
    let mut app = String::from("class Main {\n");
    let dnt = gen.nt(NodeKind::Declaration);
    if rng.below(10) < 3 {
        app.push_str("    ");
        let budget = 10 + rng.next() % 12;
        gen.derive(rng, dnt, budget, &mut app);
        app.push('\n');
    }
    app.push_str("    static void main() {\n");
    app.push_str("        int a = 1; int b = 2; String s = \"seed\";\n");
    let snt = gen.nt(NodeKind::Statement);
    for _ in 0..1 + rng.below(5) {
        app.push_str("        ");
        // Half the statements come from a semantically valid pool over
        // the prelude locals, so a good share of cases type-check and
        // actually reach both interpreters; the grammar-derived half
        // covers the front half of the pipeline.
        if rng.below(2) == 0 {
            app.push_str(VALID_STMTS[rng.below(VALID_STMTS.len())]);
            app.push(' ');
        } else {
            let budget = 6 + rng.next() % 18;
            gen.derive(rng, snt, budget, &mut app);
        }
        app.push('\n');
    }
    for spec in &ext_specs {
        let _ = writeln!(app, "        use {};", spec.name);
        app.push_str("        ");
        app.push_str(&spec.use_site(rng, gen));
        app.push('\n');
    }
    app.push_str("    }\n}\n");
    sources.push(("fuzz_app.maya".to_owned(), app));

    // Mutation layer: the invalid-input half. Token splices, line
    // duplication/deletion, tail truncation.
    if rng.below(100) < 35 {
        mutate(rng, &mut sources);
    }
    Case { sources, extensions: ext_specs.len() }
}

/// Statements that type-check and run over the `main` prelude locals
/// (`int a`, `int b`, `String s`): interleaved with grammar-derived
/// statements so a healthy share of cases reaches both interpreters.
const VALID_STMTS: &[&str] = &[
    "a = a + 1;",
    "b = a * 2 + b;",
    "s = s + \"!\";",
    "System.out.println(s);",
    "System.out.println(a + b);",
    "if (a > b) { a = a - b; } else { b = b - 1; }",
    "while (a < 5) { a = a + 1; }",
    "for (int i = 0; i < 3; i = i + 1) { b = b + i; }",
    "{ int c = a; a = b; b = c; }",
    "if (s != null) { System.out.println(\"ok\"); }",
];

/// Raw fragments spliced in by the corruption pass.
const SPLICE: &[&str] = &["@", "$", ";", "}", "{", "(", "class", "syntax", "=", "use", "\\.", "abstract"];

fn mutate(rng: &mut XorShift, sources: &mut [(String, String)]) {
    let which = rng.below(sources.len());
    let src = &mut sources[which].1;
    for _ in 0..1 + rng.below(3) {
        match rng.below(4) {
            0 => {
                // Splice raw tokens at a char boundary.
                let mut at = rng.below(src.len().max(1));
                while at > 0 && !src.is_char_boundary(at) {
                    at -= 1;
                }
                src.insert_str(at, SPLICE[rng.below(SPLICE.len())]);
            }
            1 => {
                // Duplicate a random line.
                let lines: Vec<&str> = src.lines().collect();
                if !lines.is_empty() {
                    let l = lines[rng.below(lines.len())].to_owned();
                    let mut rebuilt: Vec<String> =
                        lines.iter().map(|s| (*s).to_owned()).collect();
                    rebuilt.insert(rng.below(rebuilt.len() + 1), l);
                    *src = rebuilt.join("\n");
                    src.push('\n');
                }
            }
            2 => {
                // Delete a random line.
                let mut lines: Vec<String> = src.lines().map(str::to_owned).collect();
                if lines.len() > 1 {
                    lines.remove(rng.below(lines.len()));
                    *src = lines.join("\n");
                    src.push('\n');
                }
            }
            _ => {
                // Truncate the tail.
                let mut at = src.len() / 2 + rng.below(src.len() / 2 + 1);
                while at > 0 && !src.is_char_boundary(at) {
                    at -= 1;
                }
                src.truncate(at);
            }
        }
    }
}

// ---- differential driver -----------------------------------------------------

fn fuzz_options(jobs: usize) -> CompileOptions {
    CompileOptions {
        echo_output: false,
        jobs,
        max_expand_depth: 50,
        expand_fuel: 500_000,
        interp_step_limit: 500_000,
        interp_stack_limit: 64,
        ..Default::default()
    }
}

/// One execution tier of the interpreter (see `maya_interp`): the engine
/// oracle requires all three to be observationally identical.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    /// Legacy tree walker (`MAYA_NO_LOWER=1`).
    Legacy,
    /// Lowered fast runtime on the tree walker (`MAYA_NO_BYTECODE=1`).
    Lowered,
    /// Lowered + compiled register bytecode — the default tier.
    Bytecode,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Legacy => "legacy",
            Engine::Lowered => "lowered",
            Engine::Bytecode => "bytecode",
        }
    }
}

fn installer(engine: Engine) -> Rc<dyn Fn(&Compiler)> {
    Rc::new(move |c: &Compiler| {
        maya::macrolib::install(c);
        maya::multijava::install(c);
        // Explicit on both axes so ambient MAYA_NO_LOWER/MAYA_NO_BYTECODE
        // can't skew the differential.
        let i = c.interp();
        match engine {
            Engine::Legacy => {
                i.set_lowering(false);
            }
            Engine::Lowered => {
                i.set_lowering(true);
                i.set_bytecode(false);
            }
            Engine::Bytecode => {
                i.set_lowering(true);
                i.set_bytecode(true);
            }
        }
    })
}

fn fresh_session(engine: Engine, jobs: usize) -> Session {
    Session::new(fuzz_options(jobs), Some(installer(engine)))
}

fn req_opts() -> RequestOpts {
    RequestOpts::default()
}

/// A worker pool with exactly the fuzzer's compile options on the
/// bytecode tier — so a pool reply must be byte-identical to
/// [`run_fresh`] on the same case.
fn fuzz_pool(workers: usize) -> CompilePool {
    let o = fuzz_options(1);
    CompilePool::start(PoolConfig {
        workers,
        queue_cap: 64,
        jobs: o.jobs,
        fuel: o.expand_fuel,
        max_expand_depth: o.max_expand_depth,
        interp_step_limit: o.interp_step_limit,
        interp_stack_limit: o.interp_stack_limit,
        installer: Some(Arc::new(|c: &Compiler| {
            maya::macrolib::install(c);
            maya::multijava::install(c);
            let i = c.interp();
            i.set_lowering(true);
            i.set_bytecode(true);
        })),
        ..PoolConfig::default()
    })
}

/// Submits one case to `pool` for `client` and decodes the reply into an
/// outcome signature. `Err` carries a protocol-level failure (refusal,
/// dropped reply, non-JSON) — always a divergence.
fn pool_sig(
    pool: &CompilePool,
    client: &str,
    sources: &[(String, String)],
) -> Result<(bool, String, String), String> {
    let request = PoolRequest::Sources { sources: sources.to_vec(), opts: req_opts() };
    let reply = pool
        .submit(client, request)
        .recv()
        .unwrap_or_else(|_| "worker pool dropped the reply".to_owned());
    let j = parse_json(&reply).map_err(|e| format!("pool reply is not JSON ({e}): {reply}"))?;
    if j.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("pool refused the request: {reply}"));
    }
    Ok((
        j.get("success").and_then(Json::as_bool).unwrap_or(false),
        j.get("stdout").and_then(Json::as_str).unwrap_or_default().to_owned(),
        j.get("stderr").and_then(Json::as_str).unwrap_or_default().to_owned(),
    ))
}

/// The pool oracle's comparison: cold baseline vs one pool reply.
fn compare_pool(
    cold: &Outcome,
    pool: &CompilePool,
    client: &str,
    sources: &[(String, String)],
) -> Option<String> {
    match pool_sig(pool, client, sources) {
        Err(detail) => Some(detail),
        Ok((success, stdout, stderr)) => {
            if (success, stdout.as_str(), stderr.as_str()) == outcome_sig(cold) {
                None
            } else {
                Some(format!(
                    "--- cold: success={} ---\nstdout:\n{}stderr:\n{}\
                     --- pool ({client}): success={success} ---\nstdout:\n{stdout}stderr:\n{stderr}",
                    cold.success, cold.stdout, cold.stderr
                ))
            }
        }
    }
}

fn outcome_sig(o: &Outcome) -> (bool, &str, &str) {
    (o.success, o.stdout.as_str(), o.stderr.as_str())
}

/// Compiles `sources` in a fresh session. `Err` means a panic escaped
/// the driver boundary — the invariant violation the fuzzer hunts for.
fn run_fresh(
    sources: &[(String, String)],
    engine: Engine,
    jobs: usize,
    fault: Option<&str>,
) -> Result<Outcome, String> {
    let r = maya::core::catch_ice(AssertUnwindSafe(|| {
        if let Some(spec) = fault {
            maya::core::faults::arm(spec);
        }
        let mut s = fresh_session(engine, jobs);
        s.compile_sources(sources, &req_opts())
    }));
    maya::core::faults::disarm();
    r
}

/// The engine oracle's pairwise sweep: the bytecode tier (the default)
/// against each other tier, under an optional shared fault.  Returns the
/// first divergence.
fn compare_engines(sources: &[(String, String)], fault: Option<&str>) -> Option<String> {
    let suffix = if fault.is_some() { "+fault" } else { "" };
    let bc = run_fresh(sources, Engine::Bytecode, 1, fault);
    for other in [Engine::Legacy, Engine::Lowered] {
        let detail = compare(
            bc.clone(),
            run_fresh(sources, other, 1, fault),
            &format!("bytecode{suffix}"),
            &format!("{}{suffix}", other.name()),
        );
        if detail.is_some() {
            return detail;
        }
    }
    None
}

fn diff_block(an: &str, a: &Outcome, bn: &str, b: &Outcome) -> String {
    format!(
        "--- {an}: success={} ---\nstdout:\n{}stderr:\n{}\
         --- {bn}: success={} ---\nstdout:\n{}stderr:\n{}",
        a.success, a.stdout, a.stderr, b.success, b.stdout, b.stderr
    )
}

fn compare(
    a: Result<Outcome, String>,
    b: Result<Outcome, String>,
    an: &str,
    bn: &str,
) -> Option<String> {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            if outcome_sig(&x) == outcome_sig(&y) {
                None
            } else {
                Some(diff_block(an, &x, bn, &y))
            }
        }
        (Err(m), _) => Some(format!("{an} panicked out of the driver: {m}")),
        (_, Err(m)) => Some(format!("{bn} panicked out of the driver: {m}")),
    }
}

/// Which invariant a divergence violated — also the stateless reproduction
/// recipe the minimizer re-runs.
#[derive(Clone)]
enum Oracle {
    /// A fresh bytecode-tier compile panicked out of the driver.
    Panic,
    /// Three-engine sweep: bytecode VM vs legacy tree walker and vs the
    /// lowered runtime.
    Engine,
    /// Same session, same input, compiled twice: replay must match.
    WarmReplay,
    /// Edit then revert through one session vs the original outcome.
    PostEdit,
    /// `--jobs=1` vs `--jobs=4`.
    Jobs,
    /// A fresh 4-worker pool vs a fresh cold compile.
    Pool,
    /// Fresh sessions against an empty then a prewarmed persistent
    /// artifact store vs a store-less cold compile.
    Store,
    /// All three engines under the same armed fault.
    Faults(String),
    /// Fault armed on the legacy side only (`--induce`): a guaranteed
    /// divergence that proves the minimizer.
    Induced(String),
}

impl Oracle {
    fn name(&self) -> &'static str {
        match self {
            Oracle::Panic => "panic",
            Oracle::Engine => "engine",
            Oracle::WarmReplay => "warm_replay",
            Oracle::PostEdit => "post_edit",
            Oracle::Jobs => "jobs",
            Oracle::Pool => "pool",
            Oracle::Store => "store",
            Oracle::Faults(_) => "faults",
            Oracle::Induced(_) => "induced",
        }
    }
}

/// Oracle::Store, statelessly: a store-less cold compile, a fresh
/// session populating an empty artifact store, and another fresh session
/// hydrating from the now-warm store must be byte-identical. The store
/// is installed on this thread only for the two store-backed runs and
/// its directory is removed afterwards, so neither the campaign nor a
/// minimization step can see stale artifacts.
fn store_check(sources: &[(String, String)]) -> Option<String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "maya-fuzz-store-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = match maya::core::store::ArtifactStore::open(&dir, None) {
        Ok(s) => s,
        Err(e) => return Some(format!("cannot open fuzz store {}: {e}", dir.display())),
    };
    let cold = run_fresh(sources, Engine::Bytecode, 1, None);
    maya::core::store::install_thread(Some(store));
    let populate = run_fresh(sources, Engine::Bytecode, 1, None);
    let warm = run_fresh(sources, Engine::Bytecode, 1, None);
    maya::core::store::install_thread(None);
    let _ = std::fs::remove_dir_all(&dir);
    compare(cold.clone(), populate, "store-off", "store-populate")
        .or_else(|| compare(cold, warm, "store-off", "warm-store"))
}

/// Stateless check: does `sources` still violate `oracle`? Returns the
/// divergence detail when it does. Everything runs in fresh sessions so a
/// minimization step can't poison campaign state.
fn diverges(sources: &[(String, String)], oracle: &Oracle) -> Option<String> {
    match oracle {
        Oracle::Panic => run_fresh(sources, Engine::Bytecode, 1, None)
            .err()
            .map(|m| format!("panic escaped the driver: {m}")),
        Oracle::Engine => compare_engines(sources, None),
        Oracle::Jobs => compare(
            run_fresh(sources, Engine::Bytecode, 1, None),
            run_fresh(sources, Engine::Bytecode, 4, None),
            "jobs=1",
            "jobs=4",
        ),
        Oracle::Pool => match run_fresh(sources, Engine::Bytecode, 1, None) {
            Err(m) => Some(format!("cold baseline panicked: {m}")),
            Ok(cold) => compare_pool(&cold, &fuzz_pool(4), "min", sources),
        },
        Oracle::Store => store_check(sources),
        Oracle::Faults(spec) => compare_engines(sources, Some(spec)),
        Oracle::Induced(spec) => compare(
            run_fresh(sources, Engine::Bytecode, 1, None),
            run_fresh(sources, Engine::Legacy, 1, Some(spec)),
            "bytecode",
            "legacy+fault",
        ),
        Oracle::WarmReplay => {
            let r = maya::core::catch_ice(AssertUnwindSafe(|| {
                let mut s = fresh_session(Engine::Bytecode, 1);
                let first = s.compile_sources(sources, &req_opts());
                let replay = s.compile_sources(sources, &req_opts());
                (first, replay)
            }));
            match r {
                Err(m) => Some(format!("warm replay panicked: {m}")),
                Ok((first, replay)) => {
                    if outcome_sig(&first) == outcome_sig(&replay) {
                        None
                    } else {
                        Some(diff_block("first", &first, "replay", &replay))
                    }
                }
            }
        }
        Oracle::PostEdit => {
            let r = maya::core::catch_ice(AssertUnwindSafe(|| {
                let mut s = fresh_session(Engine::Bytecode, 1);
                let first = s.compile_sources(sources, &req_opts());
                let mut edited = sources.to_vec();
                if let Some(last) = edited.last_mut() {
                    last.1.push_str("\nclass ZZFuzzEdit { }\n");
                }
                s.compile_sources(&edited, &req_opts());
                let back = s.compile_sources(sources, &req_opts());
                (first, back)
            }));
            match r {
                Err(m) => Some(format!("post-edit cycle panicked: {m}")),
                Ok((first, back)) => {
                    if outcome_sig(&first) == outcome_sig(&back) {
                        None
                    } else {
                        Some(diff_block("original", &first, "post-edit revert", &back))
                    }
                }
            }
        }
    }
}

// ---- minimization ------------------------------------------------------------

/// Delta-debugs `sources` down while `oracle` still diverges: whole files
/// first, then ddmin over each file's lines (one generated statement,
/// member, or extension item per line). Bounded by `MAX_MIN_EVALS`
/// predicate evaluations.
fn minimize(mut sources: Vec<(String, String)>, oracle: &Oracle) -> Vec<(String, String)> {
    let mut evals = 0usize;
    let check = |cand: &[(String, String)], evals: &mut usize| -> bool {
        if *evals >= MAX_MIN_EVALS {
            return false;
        }
        *evals += 1;
        diverges(cand, oracle).is_some()
    };

    // File granularity.
    let mut i = 0;
    while sources.len() > 1 && i < sources.len() {
        let mut cand = sources.clone();
        cand.remove(i);
        if check(&cand, &mut evals) {
            sources = cand;
        } else {
            i += 1;
        }
    }

    // Line granularity (ddmin) per file.
    for fi in 0..sources.len() {
        let mut lines: Vec<String> = sources[fi].1.lines().map(str::to_owned).collect();
        let mut n = 2usize;
        while lines.len() >= 2 && n <= lines.len() && evals < MAX_MIN_EVALS {
            let chunk = lines.len().div_ceil(n);
            let mut removed_any = false;
            let mut start = 0;
            while start < lines.len() {
                let end = (start + chunk).min(lines.len());
                let mut cand_lines = lines.clone();
                cand_lines.drain(start..end);
                let mut cand = sources.clone();
                cand[fi].1 = format!("{}\n", cand_lines.join("\n"));
                if check(&cand, &mut evals) {
                    lines = cand_lines;
                    sources = cand;
                    removed_any = true;
                    // Same start now addresses the next chunk.
                } else {
                    start = end;
                }
            }
            if removed_any {
                n = n.saturating_sub(1).max(2);
            } else {
                n *= 2;
            }
        }
    }
    sources
}

// ---- coverage signal ---------------------------------------------------------

/// Buckets a per-case telemetry report into (dimension, log2-magnitude)
/// pairs. A case is kept as a corpus seed iff it lights a pair no earlier
/// case lit — counters answer "did new machinery run", the magnitude
/// bucket answers "did it run at a new order of magnitude".
fn coverage_pairs(r: &telemetry::Report) -> Vec<(u16, u8)> {
    let mut pairs = Vec::new();
    for (i, c) in Counter::ALL.iter().enumerate() {
        let v = r.counter(*c);
        if v > 0 {
            pairs.push((i as u16, v.ilog2() as u8));
        }
    }
    let base = Counter::ALL.len() as u16;
    for (i, id) in CacheId::ALL.iter().enumerate() {
        let cs = r.cache(*id);
        if cs.hits > 0 {
            pairs.push((base + i as u16, cs.hits.ilog2() as u8));
        }
        if cs.misses > 0 {
            pairs.push((base + 64 + i as u16, cs.misses.ilog2() as u8));
        }
    }
    pairs
}

// ---- the campaign ------------------------------------------------------------

struct DivergenceReport {
    oracle: &'static str,
    case_index: usize,
    induced: bool,
    /// The stateless predicate reproduced the divergence and ddmin ran.
    minimized: bool,
    files: Vec<(String, String)>,
    detail: String,
}

#[derive(Default)]
struct Stats {
    cases: usize,
    clean: usize,
    diagnosed: usize,
    extension_cases: usize,
    generated_extensions: usize,
    escaped_panics: usize,
    corpus_kept: usize,
    engine_runs: usize,
    warm_runs: usize,
    post_edit_runs: usize,
    jobs_runs: usize,
    pool_runs: usize,
    store_runs: usize,
    fault_runs: usize,
}

pub(crate) fn run(cfg: &FuzzConfig) -> ExitCode {
    let started = std::time::Instant::now();
    let root = crate::repo_root();
    let gen = GrammarGen::new();
    let opts = req_opts();

    // The persistent trio: one session per execution tier, all living
    // across the whole campaign like a long-running `mayad` fed hundreds
    // of unrelated requests.
    let mut warm = fresh_session(Engine::Bytecode, 1);
    let mut lowered = fresh_session(Engine::Lowered, 1);
    let mut legacy = fresh_session(Engine::Legacy, 1);
    // ... plus the concurrent face of the same shape: a 4-worker pool fed
    // every case for a rotating client, like `mayad --workers=4` serving
    // four long-lived clients at once.
    let pool = fuzz_pool(4);

    let mut stats = Stats::default();
    let mut seen_pairs: HashSet<(u16, u8)> = HashSet::new();
    let mut corpus: Vec<Vec<(String, String)>> = Vec::new();
    let mut reports: Vec<DivergenceReport> = Vec::new();

    let fault_pool = [
        "lex:error",
        "lex:panic",
        "parse:error",
        "parse:panic",
        "dispatch:error",
        "dispatch:panic",
        "template:error",
        "template:panic",
        "type_check:error",
        "type_check:panic",
        "interp:error",
        "interp:panic",
        "dispatch:loop",
        "interp:loop",
    ];

    let record = |oracle: Oracle,
                      case_index: usize,
                      sources: &[(String, String)],
                      detail: String,
                      reports: &mut Vec<DivergenceReport>,
                      stats: &mut Stats| {
        let induced = matches!(oracle, Oracle::Induced(_));
        if matches!(oracle, Oracle::Panic) {
            stats.escaped_panics += 1;
        }
        eprintln!(
            "xtask fuzz: case {case_index}: {} divergence{}",
            oracle.name(),
            if induced { " (induced)" } else { "" }
        );
        // Reproduce statelessly, then shrink.
        let reproduced = diverges(sources, &oracle).is_some();
        let (files, minimized) = if reproduced {
            (minimize(sources.to_vec(), &oracle), true)
        } else {
            (sources.to_vec(), false)
        };
        let final_detail = if minimized {
            diverges(&files, &oracle).unwrap_or(detail)
        } else {
            detail
        };
        reports.push(DivergenceReport {
            oracle: oracle.name(),
            case_index,
            induced,
            minimized,
            files,
            detail: final_detail,
        });
    };

    for i in 0..cfg.cases {
        if let Some(limit) = cfg.budget_secs {
            if started.elapsed().as_secs() >= limit {
                eprintln!("xtask fuzz: budget exhausted after {i} cases");
                break;
            }
        }
        stats.cases += 1;
        let mut rng = XorShift::new(cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));

        // Generate: fresh from the grammar, or mutate a kept seed.
        let case = if !corpus.is_empty() && rng.below(100) < 20 {
            let mut sources = corpus[rng.below(corpus.len())].clone();
            mutate(&mut rng, &mut sources);
            Case { sources, extensions: 0 }
        } else {
            gen_case(&mut rng, &gen, i)
        };
        if case.extensions > 0 {
            stats.extension_cases += 1;
            stats.generated_extensions += case.extensions;
        }
        let sources = &case.sources;
        if std::env::var_os("MAYA_FUZZ_DUMP").is_some() {
            for (name, src) in sources {
                eprintln!("=== case {i}: {name} ===\n{src}");
            }
        }

        let t = telemetry::Session::start(telemetry::Config::default());

        // Baseline: a cold batch compile (fresh session, bytecode tier).
        let cold = run_fresh(sources, Engine::Bytecode, 1, None);
        let cold = match cold {
            Err(m) => {
                record(
                    Oracle::Panic,
                    i,
                    sources,
                    format!("panic escaped the driver: {m}"),
                    &mut reports,
                    &mut stats,
                );
                t.finish();
                continue;
            }
            Ok(o) => o,
        };
        if cold.success {
            stats.clean += 1;
        } else {
            stats.diagnosed += 1;
        }

        // Oracle: warm persistent session must match the cold batch.
        stats.warm_runs += 1;
        let warm_out = maya::core::catch_ice(AssertUnwindSafe(|| {
            warm.compile_sources(sources, &opts)
        }));
        if let Some(detail) = compare(Ok(cold.clone()), warm_out, "cold", "warm session") {
            warm.reset();
            record(Oracle::WarmReplay, i, sources, detail, &mut reports, &mut stats);
        }

        // Oracle: the other two tiers (persistent sessions) must match the
        // bytecode baseline byte for byte.
        stats.engine_runs += 1;
        let legacy_out = maya::core::catch_ice(AssertUnwindSafe(|| {
            legacy.compile_sources(sources, &opts)
        }));
        if let Some(detail) = compare(Ok(cold.clone()), legacy_out, "bytecode", "legacy") {
            legacy.reset();
            record(Oracle::Engine, i, sources, detail, &mut reports, &mut stats);
        }
        let lowered_out = maya::core::catch_ice(AssertUnwindSafe(|| {
            lowered.compile_sources(sources, &opts)
        }));
        if let Some(detail) = compare(Ok(cold.clone()), lowered_out, "bytecode", "lowered") {
            lowered.reset();
            record(Oracle::Engine, i, sources, detail, &mut reports, &mut stats);
        }

        // Oracle: --jobs=N must be byte-identical.
        stats.jobs_runs += 1;
        if let Some(detail) =
            compare(Ok(cold.clone()), run_fresh(sources, Engine::Bytecode, 4, None), "jobs=1", "jobs=4")
        {
            record(Oracle::Jobs, i, sources, detail, &mut reports, &mut stats);
        }

        // Oracle: the persistent worker pool must answer with exactly the
        // cold outcome, whichever of its four clients (and thus worker
        // threads and Arc-shared warm tiers) the case lands on.
        stats.pool_runs += 1;
        if let Some(detail) = compare_pool(&cold, &pool, &format!("c{}", i % 4), sources) {
            record(Oracle::Pool, i, sources, detail, &mut reports, &mut stats);
        }

        // Oracle: a session populating a fresh persistent store, then a
        // session hydrating from it, must both match the store-less cold
        // compile byte for byte.
        stats.store_runs += 1;
        if let Some(detail) = store_check(sources) {
            record(Oracle::Store, i, sources, detail, &mut reports, &mut stats);
        }

        // Oracle: edit + revert through the warm session lands back on the
        // cold outcome (the invalidation cone must be exact both ways).
        stats.post_edit_runs += 1;
        let back = maya::core::catch_ice(AssertUnwindSafe(|| {
            let mut edited = sources.to_vec();
            if let Some(last) = edited.last_mut() {
                last.1.push_str("\nclass ZZFuzzEdit { }\n");
            }
            warm.compile_sources(&edited, &opts);
            warm.compile_sources(sources, &opts)
        }));
        if let Some(detail) = compare(Ok(cold.clone()), back, "cold", "post-edit revert") {
            warm.reset();
            record(Oracle::PostEdit, i, sources, detail, &mut reports, &mut stats);
        }

        // Oracle: sampled fault injection, armed identically on all three
        // engines. Diagnostics may differ from the clean run; the engines
        // must still agree, and no panic may escape.
        if i % 4 == 0 {
            stats.fault_runs += 1;
            let spec = fault_pool[rng.below(fault_pool.len())].to_owned();
            let oracle = Oracle::Faults(spec.clone());
            if let Some(detail) = diverges(sources, &oracle) {
                if detail.contains("panicked out of the driver") {
                    stats.escaped_panics += 1;
                }
                record(oracle, i, sources, detail, &mut reports, &mut stats);
            }
        }

        // Induced divergence (--induce): fault the legacy side only, so a
        // divergence is guaranteed whenever the site is reached — proves
        // the detector and the minimizer against a known-bad world.
        if cfg.induce && i % 10 == 5 {
            let oracle = Oracle::Induced("dispatch:error".to_owned());
            if let Some(detail) = diverges(sources, &oracle) {
                record(oracle, i, sources, detail, &mut reports, &mut stats);
            }
        }

        // Coverage: keep the case as a seed iff it lit a new
        // (counter, magnitude) pair.
        let report = t.finish();
        let mut new_pair = false;
        for p in coverage_pairs(&report) {
            if seen_pairs.insert(p) {
                new_pair = true;
            }
        }
        if new_pair {
            corpus.push(sources.clone());
            stats.corpus_kept += 1;
        }
    }

    // Land minimized real divergences as regression cases; induced ones
    // are the minimizer's proof and stay out of the committed tree.
    let real: Vec<&DivergenceReport> = reports.iter().filter(|r| !r.induced).collect();
    let induced: Vec<&DivergenceReport> = reports.iter().filter(|r| r.induced).collect();
    for (k, r) in real.iter().enumerate() {
        let dir = root.join("tests/corpus/regressions").join(format!(
            "{}_seed{}_case{}_{k}",
            r.oracle, cfg.seed, r.case_index
        ));
        if let Err(e) = write_divergence(&dir, r) {
            eprintln!("xtask fuzz: cannot write {}: {e}", dir.display());
        } else {
            eprintln!("xtask fuzz: minimized case written to {}", dir.display());
        }
    }
    for (k, r) in induced.iter().enumerate() {
        let dir = root
            .join("target/fuzz/minimized")
            .join(format!("{}_seed{}_case{}_{k}", r.oracle, cfg.seed, r.case_index));
        let _ = write_divergence(&dir, r);
    }

    let elapsed = started.elapsed().as_secs_f64();
    let unminimized = reports.iter().filter(|r| !r.minimized).count();
    let doc = render_report(cfg, &stats, &reports, unminimized, elapsed);
    let out_path = root.join("BENCH_fuzz.json");
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("xtask fuzz: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }

    println!(
        "xtask fuzz: {} cases (seed {}) in {elapsed:.1}s: {} clean, {} diagnosed, \
         {} with generated extensions ({} extensions), {} corpus seeds kept",
        stats.cases,
        cfg.seed,
        stats.clean,
        stats.diagnosed,
        stats.extension_cases,
        stats.generated_extensions,
        stats.corpus_kept
    );
    println!(
        "xtask fuzz: oracle runs: engine {}, warm {}, post-edit {}, jobs {}, pool {}, \
         store {}, faults {}",
        stats.engine_runs,
        stats.warm_runs,
        stats.post_edit_runs,
        stats.jobs_runs,
        stats.pool_runs,
        stats.store_runs,
        stats.fault_runs
    );
    println!(
        "xtask fuzz: {} escaped panics, {} divergences ({} induced), {} unminimized; \
         report at {}",
        stats.escaped_panics,
        reports.len(),
        induced.len(),
        unminimized,
        out_path.display()
    );

    // Gates. Real divergences and escaped panics always fail; induced
    // divergences are expected under --induce but must all have minimized.
    let mut failed = false;
    if stats.escaped_panics > 0 {
        eprintln!("xtask fuzz: FAILED: {} panics escaped the driver", stats.escaped_panics);
        failed = true;
    }
    if !real.is_empty() {
        eprintln!("xtask fuzz: FAILED: {} real divergences (see BENCH_fuzz.json)", real.len());
        failed = true;
    }
    if unminimized > 0 {
        eprintln!("xtask fuzz: FAILED: {unminimized} divergences could not be minimized");
        failed = true;
    }
    if cfg.induce && induced.is_empty() {
        eprintln!("xtask fuzz: FAILED: --induce produced no divergence (detector is blind)");
        failed = true;
    }
    if stats.cases >= 10 && stats.extension_cases * 10 < stats.cases {
        eprintln!(
            "xtask fuzz: FAILED: only {}/{} cases carried a generated Mayan extension \
             (need at least 1 in 10)",
            stats.extension_cases, stats.cases
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_divergence(dir: &Path, r: &DivergenceReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, src) in &r.files {
        std::fs::write(dir.join(name), src)?;
    }
    let mut repro = String::new();
    let _ = writeln!(repro, "oracle: {}", r.oracle);
    let _ = writeln!(repro, "case: {}", r.case_index);
    let _ = writeln!(repro, "induced: {}", r.induced);
    let _ = writeln!(repro, "minimized: {}", r.minimized);
    let _ = writeln!(repro, "\n{}", r.detail);
    std::fs::write(dir.join("REPRO.txt"), repro)
}

fn render_report(
    cfg: &FuzzConfig,
    s: &Stats,
    reports: &[DivergenceReport],
    unminimized: usize,
    elapsed: f64,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"maya-fuzz/1\",");
    let _ = writeln!(out, "  \"cases\": {},", s.cases);
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"induce\": {},", cfg.induce);
    let _ = writeln!(out, "  \"clean\": {},", s.clean);
    let _ = writeln!(out, "  \"diagnosed\": {},", s.diagnosed);
    let _ = writeln!(out, "  \"extension_cases\": {},", s.extension_cases);
    let _ = writeln!(out, "  \"generated_extensions\": {},", s.generated_extensions);
    let _ = writeln!(out, "  \"oracle_runs\": {{");
    let _ = writeln!(out, "    \"engine\": {},", s.engine_runs);
    let _ = writeln!(out, "    \"warm_replay\": {},", s.warm_runs);
    let _ = writeln!(out, "    \"post_edit\": {},", s.post_edit_runs);
    let _ = writeln!(out, "    \"jobs\": {},", s.jobs_runs);
    let _ = writeln!(out, "    \"pool\": {},", s.pool_runs);
    let _ = writeln!(out, "    \"store\": {},", s.store_runs);
    let _ = writeln!(out, "    \"faults\": {}", s.fault_runs);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"escaped_panics\": {},", s.escaped_panics);
    let _ = writeln!(out, "  \"divergences\": {},", reports.len());
    let _ = writeln!(
        out,
        "  \"induced_divergences\": {},",
        reports.iter().filter(|r| r.induced).count()
    );
    let _ = writeln!(out, "  \"unminimized_divergences\": {unminimized},");
    let _ = writeln!(out, "  \"corpus_kept\": {},", s.corpus_kept);
    let _ = writeln!(out, "  \"elapsed_secs\": {elapsed:.1},");
    out.push_str("  \"divergence_reports\": [");
    let blocks: Vec<String> = reports
        .iter()
        .map(|r| {
            let files: Vec<String> = r
                .files
                .iter()
                .map(|(n, src)| {
                    format!(
                        "        {{\"name\": {}, \"source\": {}}}",
                        json_string(n),
                        json_string(src)
                    )
                })
                .collect();
            format!(
                "\n    {{\n      \"oracle\": {},\n      \"case\": {},\n      \
                 \"induced\": {},\n      \"minimized\": {},\n      \"detail\": {},\n      \
                 \"files\": [\n{}\n      ]\n    }}",
                json_string(r.oracle),
                r.case_index,
                r.induced,
                r.minimized,
                json_string(&r.detail),
                files.join(",\n")
            )
        })
        .collect();
    out.push_str(&blocks.join(","));
    if !reports.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}
