//! Repo automation (`cargo xtask <command>`).
//!
//! `cargo xtask telemetry` runs the example workloads under a telemetry
//! session, writes the counter snapshot to `BENCH_telemetry.json` at the
//! repo root, and **fails** if the dispatch-test or forced-lazy-node
//! totals regressed by more than 20% against the committed snapshot —
//! catching "the compiler silently started doing much more work" before
//! it lands. It also enforces the paper's laziness claim on the
//! source-extension workload: forced lazy nodes must stay strictly below
//! created lazy nodes.
//!
//! `cargo xtask fuzz-lite [--cases=N] [--seed=S]` drives seeded random
//! (often corrupt) sources through the full multi-error pipeline and
//! fails if any input panics out of the driver boundary instead of
//! producing a diagnostic or a clean run. Resource guards are tightened
//! so pathological inputs terminate quickly; the whole run is
//! deterministic for a given seed. Part of the pre-merge verify flow.

use maya::telemetry::{self, json_counter, json_string, Counter};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Counter totals gated against the committed baseline.
const GATED: [Counter; 2] = [Counter::DispatchTests, Counter::LazyNodesForced];
/// Allowed relative growth before the gate fails.
const TOLERANCE: f64 = 0.20;

struct WorkloadRun {
    name: &'static str,
    counters: Vec<(Counter, u64)>,
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

fn run_workload(name: &'static str, f: impl FnOnce()) -> WorkloadRun {
    let s = telemetry::Session::start(telemetry::Config::default());
    f();
    let r = s.finish();
    WorkloadRun {
        name,
        counters: Counter::ALL.iter().map(|c| (*c, r.counter(*c))).collect(),
    }
}

fn source_extension_workload(root: &Path) {
    let ext = std::fs::read_to_string(root.join("examples/maya/eforeach_ext.maya"))
        .expect("examples/maya/eforeach_ext.maya");
    let app = std::fs::read_to_string(root.join("examples/maya/eforeach_app.maya"))
        .expect("examples/maya/eforeach_app.maya");
    let c = maya::Compiler::new();
    c.add_source("eforeach_ext.maya", &ext).expect("extension compiles");
    c.add_source("eforeach_app.maya", &app).expect("application parses");
    c.compile().expect("application compiles");
    c.run_main("Main").expect("application runs");
}

fn macrolib_foreach_workload() {
    let c = maya::macrolib::compiler_with_macros();
    c.compile_and_run(
        "Main.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("a");
                v.addElement("b");
                use Foreach;
                v.elements().foreach(String st) {
                    System.out.println(st);
                }
            }
        }
        "#,
        "Main",
    )
    .expect("macrolib workload runs");
}

fn multijava_workload() {
    let c = maya::multijava::compiler_with_multijava();
    c.compile_and_run(
        "Main.maya",
        r#"
        use MultiJava;
        class Shape { }
        class Circle extends Shape { }
        class Rect extends Shape { }
        class Intersect {
            int test(Shape a, Shape b) { return 0; }
            int test(Shape@Circle a, Shape@Rect b) { return 1; }
            int test(Shape@Rect a, Shape@Circle b) { return 2; }
        }
        class Main {
            static void main() {
                Intersect it = new Intersect();
                Shape c = new Circle();
                Shape r = new Rect();
                System.out.println(it.test(c, r) + it.test(r, c) + it.test(c, c));
            }
        }
        "#,
        "Main",
    )
    .expect("multijava workload runs");
}

/// Renders the snapshot. Totals come first so [`json_counter`] (first
/// match wins) reads the aggregate, not a per-workload value.
fn render(runs: &[WorkloadRun]) -> String {
    let mut totals = vec![0u64; Counter::ALL.len()];
    for run in runs {
        for (i, (_, v)) in run.counters.iter().enumerate() {
            totals[i] += v;
        }
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"maya-telemetry-bench/1\",");
    out.push_str("  \"totals\": {\n");
    let lines: Vec<String> = Counter::ALL
        .iter()
        .zip(&totals)
        .map(|(c, v)| format!("    \"{}\": {v}", c.name()))
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"workloads\": {\n");
    let blocks: Vec<String> = runs
        .iter()
        .map(|run| {
            let lines: Vec<String> = run
                .counters
                .iter()
                .map(|(c, v)| format!("      \"{}\": {v}", c.name()))
                .collect();
            format!("    {}: {{\n{}\n    }}", json_string(run.name), lines.join(",\n"))
        })
        .collect();
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

fn telemetry_gate() -> ExitCode {
    let root = repo_root();
    let runs = vec![
        run_workload("source_extension", || source_extension_workload(&root)),
        run_workload("macrolib_foreach", macrolib_foreach_workload),
        run_workload("multijava", multijava_workload),
    ];

    // Laziness invariant on the source-extension workload (paper §4): the
    // unused Mayan body must never be forced.
    let src_ext = &runs[0];
    let get = |run: &WorkloadRun, c: Counter| {
        run.counters.iter().find(|(k, _)| *k == c).map_or(0, |(_, v)| *v)
    };
    let created = get(src_ext, Counter::LazyNodesCreated);
    let forced = get(src_ext, Counter::LazyNodesForced);
    if forced >= created {
        eprintln!(
            "xtask telemetry: laziness regression: source_extension forced {forced} of \
             {created} lazy nodes (must be strictly fewer)"
        );
        return ExitCode::FAILURE;
    }

    let doc = render(&runs);
    let baseline_path = root.join("BENCH_telemetry.json");
    let mut failed = false;
    match std::fs::read_to_string(&baseline_path) {
        Ok(baseline) => {
            for c in GATED {
                let old = json_counter(&baseline, c.name());
                let new = json_counter(&doc, c.name()).expect("freshly rendered key");
                let Some(old) = old else {
                    println!("xtask telemetry: {} has no baseline yet (new counter)", c.name());
                    continue;
                };
                let limit = (old as f64 * (1.0 + TOLERANCE)).ceil() as u64;
                let status = if new > limit { "REGRESSED" } else { "ok" };
                println!(
                    "xtask telemetry: {:<22} baseline {old:>8}  now {new:>8}  (limit {limit})  {status}",
                    c.name()
                );
                if new > limit {
                    failed = true;
                }
            }
        }
        Err(_) => {
            println!("xtask telemetry: no committed baseline; writing the first snapshot");
        }
    }
    if failed {
        eprintln!(
            "xtask telemetry: counters regressed >{:.0}% vs {}; baseline left untouched",
            TOLERANCE * 100.0,
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }
    std::fs::write(&baseline_path, &doc).expect("write BENCH_telemetry.json");
    println!(
        "xtask telemetry: snapshot written to {} (lazy: {forced}/{created} forced on source_extension)",
        baseline_path.display()
    );
    ExitCode::SUCCESS
}

// ---- fuzz-lite ---------------------------------------------------------------

/// xorshift64: tiny, deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<T: Copy>(&mut self, pool: &[T]) -> T {
        pool[self.below(pool.len())]
    }
}

/// Statement fragments, valid and broken alike.
const STMTS: &[&str] = &[
    "int x = 1;",
    "int x = ;",
    "System.out.println(\"s\");",
    "x = x + 1;",
    "int y = @;",
    "if (x > 0) { x = x - 1; }",
    "while (false) { }",
    "boolean b = $;",
    "use Foreach;",
    "return;",
    "for (int i = 0; i < 3; i = i + 1) { x = x + i; }",
    "String s = null",
    "{ int z = 2; z = z; }",
    ";",
    "} {",
];

/// Member fragments (some nonsense).
const MEMBERS: &[&str] = &[
    "static int f() { return 1; }",
    "int field = 3;",
    "void g(int a) { a = a + 1; }",
    "static int broken() { return ; }",
    "int = ;",
    "syntax garbage here",
];

/// Raw tokens spliced in by the mutation pass.
const SPLICE: &[&str] = &["@", "$", ";", "}", "{", "(", "class", "int", "=", "use", "\\."];

/// One random MayaJava source: a `Main` class with random members and a
/// `main` made of random statement fragments, then (sometimes) a raw
/// token-splice corruption pass.
fn gen_source(rng: &mut XorShift) -> String {
    let mut src = String::from("class Main {\n");
    for _ in 0..rng.below(3) {
        src.push_str("    ");
        src.push_str(rng.pick(MEMBERS));
        src.push('\n');
    }
    src.push_str("    static void main() {\n        int x = 0;\n");
    for _ in 0..1 + rng.below(5) {
        src.push_str("        ");
        src.push_str(rng.pick(STMTS));
        src.push('\n');
    }
    src.push_str("    }\n}\n");
    // Corruption pass: splice raw tokens at random char boundaries.
    if rng.below(2) == 0 {
        for _ in 0..1 + rng.below(3) {
            let mut at = rng.below(src.len());
            while !src.is_char_boundary(at) {
                at -= 1;
            }
            src.insert_str(at, rng.pick(SPLICE));
        }
    }
    // Truncation pass: chop the tail off.
    if rng.below(4) == 0 {
        let mut at = src.len() / 2 + rng.below(src.len() / 2);
        while !src.is_char_boundary(at) {
            at -= 1;
        }
        src.truncate(at);
    }
    src
}

/// Runs one source through the full multi-error driver with tight resource
/// guards. `Ok(true)` = clean run, `Ok(false)` = diagnosed, `Err` = a panic
/// escaped the driver boundary (the invariant violation fuzzing hunts for).
fn fuzz_one(src: &str) -> Result<bool, String> {
    maya::core::catch_ice(|| {
        let c = maya::Compiler::with_options(maya::CompileOptions {
            echo_output: false,
            uses: vec![],
            max_expand_depth: 50,
            expand_fuel: 500_000,
            interp_step_limit: 500_000,
            interp_stack_limit: 64,
        });
        maya::macrolib::install(&c);
        let diags = maya::core::Diagnostics::with_limits(10, false);
        c.add_source_diags("fuzz.maya", src, &diags);
        c.compile_diags(&diags);
        if !diags.should_fail() {
            c.run_main_diags("Main", &diags);
        }
        !diags.should_fail()
    })
}

fn fuzz_lite(cases: usize, seed: u64) -> ExitCode {
    let started = std::time::Instant::now();
    let mut rng = XorShift::new(seed);
    let (mut clean, mut diagnosed) = (0usize, 0usize);
    for i in 0..cases {
        let src = gen_source(&mut rng);
        match fuzz_one(&src) {
            Ok(true) => clean += 1,
            Ok(false) => diagnosed += 1,
            Err(panic_msg) => {
                eprintln!(
                    "xtask fuzz-lite: PANIC escaped the driver on case {i} (seed {seed}): \
                     {panic_msg}\n--- input ---\n{src}\n-------------"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "xtask fuzz-lite: {cases} cases (seed {seed}) in {:.1}s: {clean} clean, \
         {diagnosed} diagnosed, 0 panics",
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("telemetry") => telemetry_gate(),
        Some("fuzz-lite") => {
            let mut cases = 300usize;
            let mut seed = 0x6d61_7961_2d72_7321u64; // "maya-rs!"
            for a in &args[1..] {
                if let Some(n) = a.strip_prefix("--cases=") {
                    match n.parse() {
                        Ok(n) => cases = n,
                        Err(_) => {
                            eprintln!("xtask fuzz-lite: bad --cases value {n:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else if let Some(s) = a.strip_prefix("--seed=") {
                    match s.parse() {
                        Ok(s) => seed = s,
                        Err(_) => {
                            eprintln!("xtask fuzz-lite: bad --seed value {s:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    eprintln!("xtask fuzz-lite: unknown option {a}");
                    return ExitCode::FAILURE;
                }
            }
            fuzz_lite(cases, seed)
        }
        Some(other) => {
            eprintln!("xtask: unknown command {other}");
            eprintln!("usage: cargo xtask telemetry | fuzz-lite [--cases=N] [--seed=S]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask telemetry | fuzz-lite [--cases=N] [--seed=S]");
            ExitCode::FAILURE
        }
    }
}
