//! Repo automation (`cargo xtask <command>`).
//!
//! `cargo xtask telemetry` runs the example workloads under a telemetry
//! session, writes the counter snapshot to `BENCH_telemetry.json` at the
//! repo root, and **fails** if the dispatch-test or forced-lazy-node
//! totals regressed by more than 20% against the committed snapshot —
//! catching "the compiler silently started doing much more work" before
//! it lands. It also enforces the paper's laziness claim on the
//! source-extension workload: forced lazy nodes must stay strictly below
//! created lazy nodes. Two more gates ride along: the Chrome trace
//! emitted by the span layer must validate (complete events, per-track
//! nesting, phase coverage), and the interp_hot workload run with
//! telemetry fully disabled must stay within 2% (+10ms) of the committed
//! snapshot — instrumentation may not tax the common case.
//!
//! `cargo xtask profile [--top=N]` runs the interp_hot corpus under the
//! interpreter profiler and prints the phase table, the hottest methods
//! by exclusive time, per-call-site inline-cache hit rates, and the hot
//! nested binary-op pairs.
//!
//! `cargo xtask perf` times every workload with the fast paths (table
//! cache, dispatch index) off and on, writes `BENCH_perf.json` at the
//! repo root, and fails if (a) warm runs do not skip table builds, (b)
//! indexed dispatch does not beat the seed's 782/470 tests-per-reduction
//! linear scan, or (c) any fast-path run's wall clock regressed more than
//! 20% against the committed snapshot. It also times the `interp_hot`
//! workload (the interpreter-bound corpus programs) through the legacy
//! tree walker and the lowered fast runtime, and fails unless the lowered
//! runtime is at least 3x faster with a >= 90% inline-cache hit rate.
//! The `service` bench drives concurrent clients through the worker-pool
//! service (`mayad --workers=8`) and fails unless it delivers at least 4x
//! the compiles/sec of a stateless single-worker loop (fresh session per
//! request) at concurrency 8, with p99 client-observed latency gated
//! against the committed snapshot at concurrency 8 and 64. The `store`
//! bench runs the conformance corpus through real `mayac` processes
//! cold, populating, and against the prewarmed persistent artifact
//! store (`--cache-dir`), requires every store-backed run to be
//! byte-identical to the cold run, and fails unless the warm-store pass
//! is at least 3x faster. Part of the pre-merge verify flow.
//!
//! `cargo xtask fuzz-lite [--cases=N] [--seed=S]` drives seeded random
//! (often corrupt) sources through the full multi-error pipeline and
//! fails if any input panics out of the driver boundary instead of
//! producing a diagnostic or a clean run. Resource guards are tightened
//! so pathological inputs terminate quickly; the whole run is
//! deterministic for a given seed. The corpus replay runs every program
//! through two compile-server sessions — lowered runtime and legacy tree
//! walker — and fails on any output divergence between them. Part of the
//! pre-merge verify flow.
//!
//! `cargo xtask fuzz [--cases=N] [--seed=S] [--budget=SECS] [--induce]`
//! is the grammar-aware differential layer (see `fuzz.rs`): programs and
//! Mayan extensions derived from the base grammar's productions, five
//! oracles (engines, warm/post-edit session, jobs, worker pool, faults),
//! telemetry-driven coverage seeds, and auto-minimization of any
//! divergence into `tests/corpus/regressions/`. Writes `BENCH_fuzz.json`.
//!
//! `cargo xtask verify` chains telemetry → perf → fuzz-lite →
//! `fuzz --cases=300 --seed=7`, each in its own process, then re-asserts
//! the zero-panic / zero-divergence gates from the written
//! `BENCH_fuzz.json`.

use maya::telemetry::{self, json_counter, json_string, Counter};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod fuzz;

/// Counter totals gated against the committed baseline.
const GATED: [Counter; 2] = [Counter::DispatchTests, Counter::LazyNodesForced];
/// Allowed relative growth before the gate fails.
const TOLERANCE: f64 = 0.20;
/// Allowed relative growth of the disabled-telemetry interp_hot wall
/// clock against the committed snapshot: instrumentation added to hot
/// paths must stay behind the one-bool-load early exit.
const OVERHEAD_TOLERANCE: f64 = 0.02;
/// Absolute slack added to the overhead limit so scheduler noise on a
/// ~100ms workload cannot fail a 2% relative gate by itself.
const OVERHEAD_FLOOR_MS: f64 = 10.0;
/// Best-of reps for the overhead measurement.
const OVERHEAD_REPS: usize = 5;

struct WorkloadRun {
    name: &'static str,
    counters: Vec<(Counter, u64)>,
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

fn run_workload(name: &'static str, f: impl FnOnce()) -> WorkloadRun {
    let s = telemetry::Session::start(telemetry::Config::default());
    f();
    let r = s.finish();
    WorkloadRun {
        name,
        counters: Counter::ALL.iter().map(|c| (*c, r.counter(*c))).collect(),
    }
}

fn source_extension_workload(root: &Path) {
    let ext = std::fs::read_to_string(root.join("examples/maya/eforeach_ext.maya"))
        .expect("examples/maya/eforeach_ext.maya");
    let app = std::fs::read_to_string(root.join("examples/maya/eforeach_app.maya"))
        .expect("examples/maya/eforeach_app.maya");
    let c = maya::Compiler::new();
    c.add_source("eforeach_ext.maya", &ext).expect("extension compiles");
    c.add_source("eforeach_app.maya", &app).expect("application parses");
    c.compile().expect("application compiles");
    c.run_main("Main").expect("application runs");
}

fn macrolib_foreach_workload() {
    let c = maya::macrolib::compiler_with_macros();
    c.compile_and_run(
        "Main.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("a");
                v.addElement("b");
                use Foreach;
                v.elements().foreach(String st) {
                    System.out.println(st);
                }
            }
        }
        "#,
        "Main",
    )
    .expect("macrolib workload runs");
}

fn multijava_workload() {
    let c = maya::multijava::compiler_with_multijava();
    c.compile_and_run(
        "Main.maya",
        r#"
        use MultiJava;
        class Shape { }
        class Circle extends Shape { }
        class Rect extends Shape { }
        class Intersect {
            int test(Shape a, Shape b) { return 0; }
            int test(Shape@Circle a, Shape@Rect b) { return 1; }
            int test(Shape@Rect a, Shape@Circle b) { return 2; }
        }
        class Main {
            static void main() {
                Intersect it = new Intersect();
                Shape c = new Circle();
                Shape r = new Rect();
                System.out.println(it.test(c, r) + it.test(r, c) + it.test(c, c));
            }
        }
        "#,
        "Main",
    )
    .expect("multijava workload runs");
}

/// Renders the snapshot. Totals come first so [`json_counter`] (first
/// match wins) reads the aggregate, not a per-workload value.
fn render(runs: &[WorkloadRun], trace: &TraceCheck, disabled_ms: f64) -> String {
    let mut totals = vec![0u64; Counter::ALL.len()];
    for run in runs {
        for (i, (_, v)) in run.counters.iter().enumerate() {
            totals[i] += v;
        }
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"maya-telemetry-bench/1\",");
    out.push_str("  \"totals\": {\n");
    let lines: Vec<String> = Counter::ALL
        .iter()
        .zip(&totals)
        .map(|(c, v)| format!("    \"{}\": {v}", c.name()))
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"workloads\": {\n");
    let blocks: Vec<String> = runs
        .iter()
        .map(|run| {
            let lines: Vec<String> = run
                .counters
                .iter()
                .map(|(c, v)| format!("      \"{}\": {v}", c.name()))
                .collect();
            format!("    {}: {{\n{}\n    }}", json_string(run.name), lines.join(",\n"))
        })
        .collect();
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"trace\": {\n");
    let _ = writeln!(out, "    \"events\": {},", trace.events);
    let _ = writeln!(out, "    \"phases_covered\": {}", trace.phases_covered);
    out.push_str("  },\n");
    out.push_str("  \"overhead\": {\n");
    let _ = writeln!(out, "    \"interp_hot_disabled_ms\": {disabled_ms:.2},");
    let _ = writeln!(
        out,
        "    \"gate_tolerance_pct\": {:.1}",
        OVERHEAD_TOLERANCE * 100.0
    );
    out.push_str("  }\n}\n");
    out
}

/// What trace validation measured, for the snapshot.
struct TraceCheck {
    events: usize,
    phases_covered: usize,
}

/// Validates a Chrome trace-event document produced by `--trace-out` /
/// [`telemetry::Report::chrome_trace_json`]: well-formed JSON, complete
/// ("X") events with every required field, per-tid intervals that nest
/// properly, and span coverage of the pipeline phases that ran.
fn validate_trace(doc: &str) -> Result<TraceCheck, String> {
    use maya::core::json::{parse_json, Json};
    let parsed = parse_json(doc).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace has no traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let num = |e: &Json, k: &str| -> Result<f64, String> {
        match e.get(k) {
            Some(Json::Num(n)) if *n >= 0.0 => Ok(*n),
            other => Err(format!("event field {k:?} must be a non-negative number, got {other:?}")),
        }
    };
    // (tid, ts, ts+dur, name) sorted by track then start time.
    let mut intervals: Vec<(u64, f64, f64, String)> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for e in events {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event without a name")?;
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(format!("event {name:?} is not a complete (\"X\") event"));
        }
        let ts = num(e, "ts")?;
        let dur = num(e, "dur")?;
        num(e, "pid")?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {name:?} has no integral tid"))?;
        intervals.push((tid, ts, ts + dur, name.to_owned()));
        names.push(name.to_owned());
    }
    // On each track, spans opened in a stack discipline: sorted by start,
    // a later span either starts after the previous one ends or lies
    // inside it. 2ns of slack absorbs the µs-with-3-decimals rounding.
    const EPS: f64 = 0.002;
    intervals.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite"));
    let mut stack: Vec<(f64, String)> = Vec::new();
    let mut track = u64::MAX;
    for (tid, ts, end, name) in &intervals {
        if *tid != track {
            track = *tid;
            stack.clear();
        }
        while let Some((open_end, _)) = stack.last() {
            if ts + EPS >= *open_end {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some((open_end, open_name)) = stack.last() {
            if *end > open_end + EPS {
                return Err(format!(
                    "span {name:?} [{ts:.3}, {end:.3}] overlaps {open_name:?} \
                     (ends {open_end:.3}) on tid {tid} without nesting"
                ));
            }
        }
        stack.push((*end, name.clone()));
    }
    for required in ["lex_file", "parse", "interp"] {
        if !names.iter().any(|n| n == required) {
            return Err(format!("trace covers no {required:?} span"));
        }
    }
    let phases_covered = telemetry::Phase::ALL
        .iter()
        .filter(|p| names.iter().any(|n| n == p.name()))
        .count();
    Ok(TraceCheck {
        events: events.len(),
        phases_covered,
    })
}

/// Best-of-N wall clock for the interp_hot pass with **no** telemetry
/// session active: every instrumentation hook takes its disabled early
/// exit. Gated against the committed snapshot so new hooks can't tax the
/// common case.
fn disabled_interp_hot_ms(root: &Path) -> f64 {
    assert!(
        !telemetry::enabled() && !telemetry::spans_enabled(),
        "overhead probe must run with telemetry disabled"
    );
    let mut best = f64::INFINITY;
    for _ in 0..OVERHEAD_REPS {
        best = best.min(interp_hot_pass(root, true, true));
    }
    best
}

/// First `"key": <float>` in `doc` (enough for the snapshot's own keys).
fn json_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn telemetry_gate() -> ExitCode {
    let root = repo_root();
    let runs = vec![
        run_workload("source_extension", || source_extension_workload(&root)),
        run_workload("macrolib_foreach", macrolib_foreach_workload),
        run_workload("multijava", multijava_workload),
    ];

    // Laziness invariant on the source-extension workload (paper §4): the
    // unused Mayan body must never be forced.
    let src_ext = &runs[0];
    let get = |run: &WorkloadRun, c: Counter| {
        run.counters.iter().find(|(k, _)| *k == c).map_or(0, |(_, v)| *v)
    };
    let created = get(src_ext, Counter::LazyNodesCreated);
    let forced = get(src_ext, Counter::LazyNodesForced);
    if forced >= created {
        eprintln!(
            "xtask telemetry: laziness regression: source_extension forced {forced} of \
             {created} lazy nodes (must be strictly fewer)"
        );
        return ExitCode::FAILURE;
    }

    // The span layer end to end: capture a trace of the source-extension
    // workload and validate it the way a Chrome trace viewer would.
    let s = telemetry::Session::start(telemetry::Config {
        capture_spans: true,
        ..telemetry::Config::default()
    });
    source_extension_workload(&root);
    let trace_report = s.finish();
    let trace = match validate_trace(&trace_report.chrome_trace_json()) {
        Ok(t) => {
            println!(
                "xtask telemetry: trace valid ({} events, {}/{} phases covered)",
                t.events,
                t.phases_covered,
                telemetry::Phase::ALL.len()
            );
            t
        }
        Err(e) => {
            eprintln!("xtask telemetry: invalid Chrome trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The price of saying no: interp_hot with telemetry fully disabled.
    let disabled_ms = disabled_interp_hot_ms(&root);

    let doc = render(&runs, &trace, disabled_ms);
    let baseline_path = root.join("BENCH_telemetry.json");
    let mut failed = false;
    match std::fs::read_to_string(&baseline_path) {
        Ok(baseline) => {
            for c in GATED {
                let old = json_counter(&baseline, c.name());
                let new = json_counter(&doc, c.name()).expect("freshly rendered key");
                let Some(old) = old else {
                    println!("xtask telemetry: {} has no baseline yet (new counter)", c.name());
                    continue;
                };
                let limit = (old as f64 * (1.0 + TOLERANCE)).ceil() as u64;
                let status = if new > limit { "REGRESSED" } else { "ok" };
                println!(
                    "xtask telemetry: {:<22} baseline {old:>8}  now {new:>8}  (limit {limit})  {status}",
                    c.name()
                );
                if new > limit {
                    failed = true;
                }
            }
            match json_f64(&baseline, "interp_hot_disabled_ms") {
                Some(old) => {
                    let limit = old * (1.0 + OVERHEAD_TOLERANCE) + OVERHEAD_FLOOR_MS;
                    let status = if disabled_ms > limit { "REGRESSED" } else { "ok" };
                    println!(
                        "xtask telemetry: disabled-path interp_hot baseline {old:>8.2}ms  \
                         now {disabled_ms:>8.2}ms  (limit {limit:.2}ms)  {status}"
                    );
                    if disabled_ms > limit {
                        eprintln!(
                            "xtask telemetry: disabled telemetry must stay within {:.0}% \
                             (+{OVERHEAD_FLOOR_MS:.0}ms) of the snapshot on interp_hot",
                            OVERHEAD_TOLERANCE * 100.0
                        );
                        failed = true;
                    }
                }
                None => println!(
                    "xtask telemetry: no disabled-path baseline yet \
                     (measured {disabled_ms:.2}ms)"
                ),
            }
        }
        Err(_) => {
            println!("xtask telemetry: no committed baseline; writing the first snapshot");
        }
    }
    if failed {
        eprintln!(
            "xtask telemetry: regressed vs {}; baseline left untouched",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }
    std::fs::write(&baseline_path, &doc).expect("write BENCH_telemetry.json");
    println!(
        "xtask telemetry: snapshot written to {} (lazy: {forced}/{created} forced on source_extension)",
        baseline_path.display()
    );
    ExitCode::SUCCESS
}

/// `cargo xtask profile [--top=N]`: the interp_hot corpus under the
/// interpreter profiler — phase table, hot methods with inclusive /
/// exclusive time, inline-cache hit rates per call site, hot binary-op
/// pairs.
fn profile_report(top: usize) -> ExitCode {
    let root = repo_root();
    let s = telemetry::Session::start(telemetry::Config {
        profile_interp: Some(top),
        ..telemetry::Config::default()
    });
    interp_hot_pass(&root, true, true);
    let r = s.finish();
    print!("{}", r.time_passes_table());
    match &r.interp_profile {
        Some(p) => print!("{}", p.render()),
        None => {
            eprintln!("xtask profile: session produced no interpreter profile");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

// ---- perf --------------------------------------------------------------------

/// Counters reported per perf run (the fast-path machinery plus the work
/// it is supposed to eliminate).
const PERF_COUNTERS: [Counter; 7] = [
    Counter::TablesBuilt,
    Counter::TableCacheHits,
    Counter::TableCacheMisses,
    Counter::DispatchReductions,
    Counter::DispatchTests,
    Counter::DispatchIndexHits,
    Counter::DispatchIndexMisses,
];
/// Wall-clock reps per configuration; best-of is reported.
const PERF_REPS: usize = 3;
/// Allowed relative wall-clock growth of a fast-path run before the gate
/// fails (self-relative, against the committed BENCH_perf.json).
const PERF_TOLERANCE: f64 = 0.20;
/// Absolute slack added on top of `PERF_TOLERANCE`. The warm runs it
/// guards are sub-millisecond, where 20% is smaller than scheduler
/// jitter on this container; the floor keeps the gate about real
/// regressions instead of timer noise (same idiom as the telemetry
/// overhead gate's `OVERHEAD_FLOOR_MS`).
const PERF_FLOOR_MS: f64 = 0.5;
/// The seed's dispatch cost: 782 tests over 470 reductions. The indexed
/// dispatcher must stay strictly below this ratio.
const SEED_TESTS_PER_REDUCTION: f64 = 782.0 / 470.0;

struct PerfMeasure {
    /// Best wall-clock over the reps, in milliseconds.
    ms: f64,
    /// Every rep's wall clock, in measurement order — committed to the
    /// snapshot so a reviewer can judge the spread behind the min.
    samples: Vec<f64>,
    /// Counters from the last rep (reps are deterministic per configuration).
    counters: Vec<(Counter, u64)>,
}

fn perf_measure(reps: usize, f: &dyn Fn()) -> PerfMeasure {
    let mut best = f64::INFINITY;
    let mut samples = Vec::with_capacity(reps);
    let mut counters = Vec::new();
    for _ in 0..reps {
        let s = telemetry::Session::start(telemetry::Config::default());
        let started = std::time::Instant::now();
        f();
        let ms = started.elapsed().as_secs_f64() * 1e3;
        let r = s.finish();
        best = best.min(ms);
        samples.push(ms);
        counters = PERF_COUNTERS.iter().map(|c| (*c, r.counter(*c))).collect();
    }
    PerfMeasure { ms: best, samples, counters }
}

struct PerfRow {
    name: &'static str,
    seed: PerfMeasure,
    fast_cold: PerfMeasure,
    fast_warm: PerfMeasure,
}

impl PerfRow {
    fn speedup(&self) -> f64 {
        self.seed.ms / self.fast_warm.ms.max(1e-9)
    }
}

/// Measures one workload three ways: with the fast paths off (the seed's
/// behaviour), with them on but every cache cold, and with them on after
/// the caches warmed up.
fn perf_workload(name: &'static str, f: &dyn Fn()) -> PerfRow {
    maya::grammar::set_table_cache_enabled(false);
    maya::dispatch::set_dispatch_index_enabled(false);
    maya::grammar::clear_table_cache();
    let seed = perf_measure(PERF_REPS, f);

    maya::grammar::set_table_cache_enabled(true);
    maya::dispatch::set_dispatch_index_enabled(true);
    maya::grammar::clear_table_cache();
    let fast_cold = perf_measure(1, f);
    let fast_warm = perf_measure(PERF_REPS, f);
    PerfRow { name, seed, fast_cold, fast_warm }
}

/// The extension-heavy workload: many small compilations that all import
/// the same source extension, so the same extended grammar is demanded
/// over and over — the case the table cache exists for.
fn extension_heavy_workload(root: &Path) {
    let ext = std::fs::read_to_string(root.join("examples/maya/eforeach_ext.maya"))
        .expect("examples/maya/eforeach_ext.maya");
    let app = std::fs::read_to_string(root.join("examples/maya/eforeach_app.maya"))
        .expect("examples/maya/eforeach_app.maya");
    for _ in 0..8 {
        let c = maya::Compiler::new();
        c.add_source("eforeach_ext.maya", &ext).expect("extension compiles");
        c.add_source("eforeach_app.maya", &app).expect("application parses");
        c.compile().expect("application compiles");
        c.run_main("Main").expect("application runs");
    }
}

// ---- compile-server bench ----------------------------------------------------

/// Warm single-file recompiles through the session must beat a cold
/// compile of the whole workload by at least this factor.
const SERVER_MIN_SPEEDUP: f64 = 5.0;

/// The `tests/scale.rs` forty-class workload split one class per file, so
/// a single-file edit leaves a large reusable remainder — the compile
/// server's bread-and-butter shape.
fn server_workload_sources() -> Vec<(String, String)> {
    let mut files = Vec::new();
    for i in 0..40 {
        let mut src = format!("class C{i} {{\n    int id() {{ return {i}; }}\n");
        if i > 0 {
            let _ = writeln!(src, "    int chained() {{ return new C{}().id() + id(); }}", i - 1);
        }
        for m in 0..8 {
            let _ =
                writeln!(src, "    int m{m}(int a) {{ int t = a * {m} + id(); return t - a; }}");
        }
        src.push_str("}\n");
        files.push((format!("c{i:02}.maya"), src));
    }
    files.push((
        "main.maya".to_owned(),
        "class Main { static void main() { System.out.println(new C39().chained()); } }\n"
            .to_owned(),
    ));
    files
}

struct ServerBench {
    cold_ms: f64,
    warm_recompile_ms: f64,
    full_reuse_ms: f64,
}

impl ServerBench {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.warm_recompile_ms.max(1e-9)
    }
}

fn server_session() -> maya::Session {
    maya::Session::new(
        maya::CompileOptions { echo_output: false, jobs: 1, ..Default::default() },
        None,
    )
}

/// Times the compile-server path three ways on the scale workload: a cold
/// compile on a fresh thread (fresh thread-local table memo and AST cache,
/// i.e. what a standalone `mayac` process pays), a warm single-file
/// recompile through a live session, and a full-reuse round trip.
fn server_bench() -> ServerBench {
    let sources = server_workload_sources();
    let opts = maya::RequestOpts::default();

    let mut cold_ms = f64::INFINITY;
    for _ in 0..PERF_REPS {
        let srcs = sources.clone();
        let ms = std::thread::spawn(move || {
            let started = std::time::Instant::now();
            let mut s = server_session();
            let out = s.compile_sources(&srcs, &maya::RequestOpts::default());
            assert!(out.success, "cold server workload failed:\n{}", out.stderr);
            assert_eq!(out.stdout, "77\n");
            started.elapsed().as_secs_f64() * 1e3
        })
        .join()
        .expect("cold bench thread");
        cold_ms = cold_ms.min(ms);
    }

    let mut session = server_session();
    let mut edited = sources.clone();
    assert!(session.compile_sources(&edited, &opts).success);

    let mut warm_recompile_ms = f64::INFINITY;
    for rep in 0..PERF_REPS {
        // Append a fresh class to one middle file each rep so every rep is
        // a genuine one-file recompile, never a cached round trip.
        let _ = writeln!(edited[20].1, "class Warm{rep} {{ }}");
        let started = std::time::Instant::now();
        let out = session.compile_sources(&edited, &opts);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(out.success, "{}", out.stderr);
        assert_eq!(out.stdout, "77\n");
        assert_eq!(
            (out.files_changed, out.files_recompiled, out.files_reused),
            (1, 1, 40),
            "warm rep must recompile exactly the edited file"
        );
        warm_recompile_ms = warm_recompile_ms.min(ms);
    }

    let mut full_reuse_ms = f64::INFINITY;
    for _ in 0..PERF_REPS {
        let started = std::time::Instant::now();
        let out = session.compile_sources(&edited, &opts);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(out.full_reuse, "identical request must be a full reuse");
        full_reuse_ms = full_reuse_ms.min(ms);
    }

    ServerBench { cold_ms, warm_recompile_ms, full_reuse_ms }
}

// ---- concurrent service bench ------------------------------------------------

/// The worker pool must beat a stateless single-worker loop (fresh
/// session per request, the `mayac`-process-per-compile model `mayad`
/// replaces) by at least this factor in compiles/sec on the interleaved
/// 8-client edit stream. The win is architectural, not parallel — this
/// container has one core — the pool keeps one warm session per client,
/// so each edit is a single-file recompile where the stateless loop
/// re-shapes and re-checks the client's whole project.
const SERVICE_MIN_SPEEDUP: f64 = 4.0;
/// Measured edit rounds per client at concurrency 8.
const SERVICE_ROUNDS_8: usize = 10;
/// Measured edit rounds per client at concurrency 64.
const SERVICE_ROUNDS_64: usize = 4;
/// Absolute slack for the self-relative p99 gates, one per concurrency
/// level. On a one-core container a tail request waits behind up to
/// concurrency-1 timesharing neighbours, so p99 noise scales with
/// concurrency times per-compile cost: measured run-to-run spread is
/// ~25ms at 8 clients and ~350ms at 64. These floors absorb that noise
/// while still catching a real latency regression (which moves every
/// request, not just the tail).
const SERVICE_P99_FLOOR_8_MS: f64 = 40.0;
const SERVICE_P99_FLOOR_64_MS: f64 = 400.0;

/// One client's file set at one edit round: thirty classes plus a main
/// (the `server_bench` project shape), names disjoint per client so no
/// cross-client sharing can blur the comparison, and one fresh appended
/// class per round so a warm per-client session does exactly one
/// single-file recompile per request.
fn service_client_sources(client: usize, round: usize) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for i in 0..30 {
        let mut src = format!("class K{client}x{i} {{\n    int id() {{ return {i}; }}\n");
        if i > 0 {
            let _ = writeln!(
                src,
                "    int chained() {{ return new K{client}x{}().id() + id(); }}",
                i - 1
            );
        }
        for m in 0..8 {
            let _ =
                writeln!(src, "    int m{m}(int a) {{ int t = a * {m} + id(); return t - a; }}");
        }
        src.push_str("}\n");
        files.push((format!("k{client}_{i:02}.maya"), src));
    }
    let _ = writeln!(files[5].1, "class E{client}r{round} {{ }}");
    files.push((
        format!("main{client}.maya"),
        format!(
            "class Main {{ static void main() {{ \
             System.out.println(new K{client}x29().id() + {client}); }} }}\n"
        ),
    ));
    files
}

fn service_expected_stdout(client: usize) -> String {
    format!("{}\n", 29 + client)
}

struct ServicePhase {
    requests: usize,
    compiles_per_sec: f64,
    p99_ms: f64,
    mean_ms: f64,
}

fn service_phase(mut latencies_ms: Vec<f64>, total_secs: f64) -> ServicePhase {
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let n = latencies_ms.len();
    let p99_idx = ((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1;
    ServicePhase {
        requests: n,
        compiles_per_sec: n as f64 / total_secs.max(1e-9),
        p99_ms: latencies_ms[p99_idx],
        mean_ms: latencies_ms.iter().sum::<f64>() / n as f64,
    }
}

struct ServiceBench {
    /// The stateless shape: a single-worker loop that builds a fresh
    /// session per request, fed the interleaved 8-client stream serially.
    baseline: ServicePhase,
    /// 8 concurrent clients against an 8-worker pool.
    pool8: ServicePhase,
    /// 64 concurrent clients against the same 8-worker pool.
    pool64: ServicePhase,
}

impl ServiceBench {
    fn speedup(&self) -> f64 {
        self.pool8.compiles_per_sec / self.baseline.compiles_per_sec.max(1e-9)
    }
}

/// Drives `clients` concurrent client threads through one 8-worker pool:
/// a warmup round per client (untimed), then `rounds` sequential
/// edit-recompile requests each, measuring client-observed latency
/// (submit to reply) and aggregate throughput.
fn service_pool_phase(clients: usize, rounds: usize) -> ServicePhase {
    use maya::core::json::{parse_json, Json};
    use maya::core::service::{CompilePool, PoolConfig, PoolRequest};

    let pool = CompilePool::start(PoolConfig { workers: 8, queue_cap: 64, ..PoolConfig::default() });
    let opts = maya::RequestOpts::default();
    let request = |c: usize, r: usize| -> String {
        pool.submit(
            &format!("c{c}"),
            PoolRequest::Sources { sources: service_client_sources(c, r), opts: opts.clone() },
        )
        .recv()
        .expect("pool dropped a reply")
    };
    let check = |c: usize, reply: &str, warm: bool| {
        let j = parse_json(reply).expect("pool reply is JSON");
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true), "refused: {reply}");
        assert_eq!(j.get("success").and_then(Json::as_bool), Some(true), "failed: {reply}");
        assert_eq!(
            j.get("stdout").and_then(Json::as_str),
            Some(service_expected_stdout(c).as_str()),
            "client {c} got the wrong program output: {reply}"
        );
        if warm {
            // The per-client session must have stayed warm across the
            // concurrent schedule: one file recompiled, the rest reused.
            assert!(
                j.get("files_reused").and_then(Json::as_u64) >= Some(10),
                "client {c} lost its warm state: {reply}"
            );
        }
    };

    let request = &request;
    let check = &check;
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || check(c, &request(c, 0), false));
        }
    });

    let started = std::time::Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(rounds);
                    for r in 1..=rounds {
                        let t0 = std::time::Instant::now();
                        let reply = request(c, r);
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        check(c, &reply, true);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let total = started.elapsed().as_secs_f64();
    pool.shutdown();
    service_phase(latencies, total)
}

/// The pre-service shape: a single-worker loop with no session state
/// between requests — each request builds a fresh session, the way a
/// `mayac` process per compile would. It keeps the thread-local grammar
/// table memo warm (one untimed request first), so the gap it measures
/// against the pool is session reuse alone: per-client sessions answer
/// an edit with a one-file recompile where the stateless loop re-shapes
/// and re-checks every file of every request.
fn service_baseline_phase(clients: usize, rounds: usize) -> ServicePhase {
    let opts = maya::RequestOpts::default();
    let warm = server_session().compile_sources(&service_client_sources(0, 0), &opts);
    assert!(warm.success, "baseline warmup failed:\n{}", warm.stderr);
    let started = std::time::Instant::now();
    let mut latencies = Vec::with_capacity(clients * rounds);
    for r in 1..=rounds {
        for c in 0..clients {
            let t0 = std::time::Instant::now();
            let out = server_session().compile_sources(&service_client_sources(c, r), &opts);
            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            assert!(out.success, "baseline round failed:\n{}", out.stderr);
            assert_eq!(out.stdout, service_expected_stdout(c));
        }
    }
    let total = started.elapsed().as_secs_f64();
    service_phase(latencies, total)
}

fn service_bench() -> ServiceBench {
    ServiceBench {
        baseline: service_baseline_phase(8, SERVICE_ROUNDS_8),
        pool8: service_pool_phase(8, SERVICE_ROUNDS_8),
        pool64: service_pool_phase(64, SERVICE_ROUNDS_64),
    }
}

// ---- interpreter bench -------------------------------------------------------

/// The bytecode VM tier must beat the legacy tree walker by at least this
/// factor on the interpreter-bound workload. Raised from 2.75 (the
/// lowered tree walker's floor) when the register-bytecode tier landed:
/// flat dispatch, superinstructions, and polymorphic inline caches
/// measure ~6.2x (min of {PERF_REPS} interleaved reps) on this
/// container, so 6.0 fails any real slowdown of the VM loop while
/// tolerating the run-to-run frequency lottery.
const INTERP_MIN_SPEEDUP: f64 = 6.0;
/// Minimum inline-cache hit rate over the interp_hot workload.
const INTERP_MIN_IC_HIT_RATE: f64 = 0.90;
/// Minimum polymorphic-inline-cache hit rate in the bytecode tier: the
/// monomorphic-to-lightly-polymorphic call sites of the hot corpus must
/// stay pinned in their PIC rows after warmup.
const INTERP_MIN_PIC_HIT_RATE: f64 = 0.95;

/// The interpreter-bound corpus programs and their expected output; the
/// bench asserts the output so a wrong-but-fast runtime can never pass.
const INTERP_HOT_PROGRAMS: [(&str, &str); 3] = [
    ("interp_hot_arith.maya", "total=2808302378\ncheck=1116585465\nfold=14/3\n"),
    ("interp_hot_calls.maya", "total=1478800\nsquare=99 rect=47\n"),
    ("interp_hot_strings.maya", "letters=6000\nlast=a:901234567890|b:78901234\n"),
];

struct InterpBench {
    /// Best wall-clock for one pass over the programs, legacy tree walker.
    seed_ms: f64,
    /// Best wall-clock for one pass, lowered runtime with bytecode off.
    lowered_ms: f64,
    /// Best wall-clock for one pass, bytecode VM tier (the default).
    fast_ms: f64,
    /// Every rep's wall clock per configuration, in measurement order.
    seed_samples: Vec<f64>,
    lowered_samples: Vec<f64>,
    fast_samples: Vec<f64>,
    ic_hits: u64,
    ic_misses: u64,
    pic_hits: u64,
    pic_misses: u64,
    pic_evictions: u64,
    bc_compiled: u64,
    bc_superinsts: u64,
    slots_resolved: u64,
    consts_folded: u64,
}

impl InterpBench {
    fn speedup(&self) -> f64 {
        self.seed_ms / self.fast_ms.max(1e-9)
    }

    fn ic_hit_rate(&self) -> f64 {
        let total = self.ic_hits + self.ic_misses;
        if total == 0 {
            0.0
        } else {
            self.ic_hits as f64 / total as f64
        }
    }

    fn pic_hit_rate(&self) -> f64 {
        let total = self.pic_hits + self.pic_misses;
        if total == 0 {
            0.0
        } else {
            self.pic_hits as f64 / total as f64
        }
    }
}

/// One pass over the interp_hot programs: compile untimed, then time only
/// `run_main` — the compile front end is identical in both configurations,
/// so timing it would just dilute the interpreter speedup being measured.
fn interp_hot_pass(root: &Path, lowering: bool, bytecode: bool) -> f64 {
    let mut ms = 0.0;
    for (name, expected) in INTERP_HOT_PROGRAMS {
        let src = std::fs::read_to_string(root.join("tests/corpus").join(name))
            .unwrap_or_else(|e| panic!("tests/corpus/{name}: {e}"));
        let c = maya::Compiler::with_options(maya::CompileOptions {
            echo_output: false,
            jobs: 1,
            ..Default::default()
        });
        c.interp().set_lowering(lowering);
        c.interp().set_bytecode(bytecode);
        c.add_source(name, &src).expect("interp_hot program compiles");
        c.compile().expect("interp_hot program compiles");
        let started = std::time::Instant::now();
        let out = c.run_main("Main").expect("interp_hot program runs");
        let one = started.elapsed().as_secs_f64() * 1e3;
        if std::env::var("XTASK_INTERP_DEBUG").is_ok() {
            eprintln!("  {name} lowering={lowering}: {one:.2}ms");
        }
        ms += one;
        assert_eq!(out, expected, "{name}: wrong output (lowering={lowering})");
    }
    ms
}

/// Times the interpreter-bound workload through the legacy tree walker and
/// the lowered fast runtime, capturing the lowering/IC counters from the
/// fast configuration.
fn interp_bench(root: &Path) -> InterpBench {
    // Counter capture first, untimed: a live telemetry collector taxes every
    // counter bump, so the wall-clock reps below run without a session and
    // all configurations pay identical instrumentation costs (none). Two
    // passes because the tiers shadow each other's counters: the bytecode
    // tier drives PICs (its call sites never reach the tree walker's
    // inline caches), so IC health is read from a lowered-only pass.
    let s = telemetry::Session::start(telemetry::Config::default());
    interp_hot_pass(root, true, true);
    let r = s.finish();
    let s = telemetry::Session::start(telemetry::Config::default());
    interp_hot_pass(root, true, false);
    let rl = s.finish();

    // Interleaved reps: a background load spike lands on every
    // configuration instead of skewing the ratios one way.
    let mut seed_samples = Vec::with_capacity(PERF_REPS);
    let mut lowered_samples = Vec::with_capacity(PERF_REPS);
    let mut fast_samples = Vec::with_capacity(PERF_REPS);
    for _ in 0..PERF_REPS {
        seed_samples.push(interp_hot_pass(root, false, false));
        lowered_samples.push(interp_hot_pass(root, true, false));
        fast_samples.push(interp_hot_pass(root, true, true));
    }
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    InterpBench {
        seed_ms: min(&seed_samples),
        lowered_ms: min(&lowered_samples),
        fast_ms: min(&fast_samples),
        seed_samples,
        lowered_samples,
        fast_samples,
        ic_hits: rl.counter(Counter::IcHits),
        ic_misses: rl.counter(Counter::IcMisses),
        pic_hits: r.counter(Counter::PicHits),
        pic_misses: r.counter(Counter::PicMisses),
        pic_evictions: r.counter(Counter::PicEvictions),
        bc_compiled: r.counter(Counter::BcCompiled),
        bc_superinsts: r.counter(Counter::BcSuperinsts),
        slots_resolved: rl.counter(Counter::SlotsResolved),
        consts_folded: rl.counter(Counter::ConstsFolded),
    }
}

// ---- persistent store bench --------------------------------------------------

/// A cold *process* against a prewarmed artifact store must beat a true
/// cold process by this factor on the conformance corpus (total wall
/// clock over real `mayac` children).
const STORE_MIN_SPEEDUP: f64 = 3.0;

struct StoreBench {
    cold_ms: f64,
    warm_ms: f64,
    programs: usize,
    entries: u64,
    bytes: u64,
}

impl StoreBench {
    fn speedup(&self) -> f64 {
        if self.warm_ms <= 0.0 {
            0.0
        } else {
            self.cold_ms / self.warm_ms
        }
    }
}

/// Locates the `mayac` binary next to this xtask binary, building it
/// (same profile) when missing.
fn mayac_exe() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("xtask binary has no parent directory")?;
    let mayac = dir.join("mayac");
    if !mayac.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut cmd = std::process::Command::new(cargo);
        cmd.args(["build", "-q", "--bin", "mayac"]).current_dir(repo_root());
        if dir.file_name().and_then(|n| n.to_str()) == Some("release") {
            cmd.arg("--release");
        }
        match cmd.status() {
            Ok(st) if st.success() && mayac.exists() => {}
            Ok(st) => return Err(format!("cargo build --bin mayac failed ({st})")),
            Err(e) => return Err(format!("cannot spawn cargo build: {e}")),
        }
    }
    Ok(mayac)
}

/// One full pass over the corpus, one `mayac` child per program; returns
/// the total wall clock and each program's (success, stdout, stderr).
fn store_pass(
    mayac: &Path,
    corpus: &Path,
    names: &[String],
    cache: Option<&Path>,
) -> Result<(f64, Vec<(bool, Vec<u8>, Vec<u8>)>), String> {
    let started = std::time::Instant::now();
    let mut outs = Vec::with_capacity(names.len());
    for name in names {
        let mut cmd = std::process::Command::new(mayac);
        // A stray MAYA_CACHE_DIR in the environment would warm the
        // "cold" pass; only the explicit flag decides.
        cmd.arg(corpus.join(name)).env_remove("MAYA_CACHE_DIR");
        if let Some(c) = cache {
            cmd.arg(format!("--cache-dir={}", c.display()));
        }
        let out = cmd.output().map_err(|e| format!("{name}: spawn mayac: {e}"))?;
        outs.push((out.status.success(), out.stdout, out.stderr));
    }
    Ok((started.elapsed().as_secs_f64() * 1e3, outs))
}

/// Three corpus passes in child processes: true cold (no store), a
/// prewarm pass that populates a fresh store, and a cold-process /
/// warm-store pass. Both store-on passes must be byte-identical to the
/// store-off pass, program by program.
fn store_bench(root: &Path) -> Result<StoreBench, String> {
    let mayac = mayac_exe()?;
    let corpus = root.join("tests/corpus");
    let mut names: Vec<String> = std::fs::read_dir(&corpus)
        .map_err(|e| format!("read {}: {e}", corpus.display()))?
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.ends_with(".maya").then_some(name)
        })
        .collect();
    names.sort();
    let cache = std::env::temp_dir().join(format!("maya-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    let (cold_ms, cold) = store_pass(&mayac, &corpus, &names, None)?;
    let (_, first) = store_pass(&mayac, &corpus, &names, Some(&cache))?;
    let (warm_ms, warm) = store_pass(&mayac, &corpus, &names, Some(&cache))?;
    for (i, name) in names.iter().enumerate() {
        for (pass, got) in [("store-population", &first[i]), ("warm-store", &warm[i])] {
            if *got != cold[i] {
                let _ = std::fs::remove_dir_all(&cache);
                return Err(format!(
                    "{name}: {pass} run diverged from the store-off run\n\
                     --- store-off stdout ---\n{}\n--- {pass} stdout ---\n{}\n\
                     --- store-off stderr ---\n{}\n--- {pass} stderr ---\n{}",
                    String::from_utf8_lossy(&cold[i].1),
                    String::from_utf8_lossy(&got.1),
                    String::from_utf8_lossy(&cold[i].2),
                    String::from_utf8_lossy(&got.2),
                ));
            }
        }
    }

    let (mut entries, mut bytes) = (0u64, 0u64);
    for e in std::fs::read_dir(&cache).map_err(|e| format!("read {}: {e}", cache.display()))? {
        let e = e.map_err(|e| format!("scan cache: {e}"))?;
        if let Ok(m) = e.metadata() {
            if m.is_file() {
                entries += 1;
                bytes += m.len();
            }
        }
    }
    let _ = std::fs::remove_dir_all(&cache);
    Ok(StoreBench { cold_ms, warm_ms, programs: names.len(), entries, bytes })
}

fn json_samples(v: &[f64]) -> String {
    let parts: Vec<String> = v.iter().map(|ms| format!("{ms:.2}")).collect();
    format!("[{}]", parts.join(", "))
}

fn perf_counter(m: &PerfMeasure, c: Counter) -> u64 {
    m.counters.iter().find(|(k, _)| *k == c).map_or(0, |(_, v)| *v)
}

fn render_perf(
    rows: &[PerfRow],
    server: &ServerBench,
    service: &ServiceBench,
    interp: &InterpBench,
    store: &StoreBench,
) -> String {
    let counter_block = |m: &PerfMeasure, indent: &str| {
        let lines: Vec<String> = m
            .counters
            .iter()
            .map(|(c, v)| format!("{indent}  \"{}\": {v}", c.name()))
            .collect();
        format!("{{\n{}\n{indent}}}", lines.join(",\n"))
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"maya-perf-bench/1\",");
    out.push_str("  \"workloads\": {\n");
    let blocks: Vec<String> = rows
        .iter()
        .map(|row| {
            let tests = perf_counter(&row.fast_warm, Counter::DispatchTests);
            let reds = perf_counter(&row.fast_warm, Counter::DispatchReductions);
            format!(
                "    {}: {{\n      \"seed_ms\": {:.2},\n      \"fast_cold_ms\": {:.2},\n      \
                 \"fast_warm_ms\": {:.2},\n      \"speedup\": {:.2},\n      \
                 \"seed_samples_ms\": {},\n      \"fast_warm_samples_ms\": {},\n      \
                 \"fast_warm_tests_per_reduction\": {:.3},\n      \
                 \"seed_counters\": {},\n      \"fast_warm_counters\": {}\n    }}",
                json_string(row.name),
                row.seed.ms,
                row.fast_cold.ms,
                row.fast_warm.ms,
                row.speedup(),
                json_samples(&row.seed.samples),
                json_samples(&row.fast_warm.samples),
                if reds == 0 { 0.0 } else { tests as f64 / reds as f64 },
                counter_block(&row.seed, "      "),
                counter_block(&row.fast_warm, "      "),
            )
        })
        .collect();
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  },\n");
    let _ = writeln!(
        out,
        "  \"server\": {{\n    \"cold_ms\": {:.2},\n    \"warm_recompile_ms\": {:.2},\n    \
         \"full_reuse_ms\": {:.2},\n    \"warm_speedup\": {:.2}\n  }},",
        server.cold_ms,
        server.warm_recompile_ms,
        server.full_reuse_ms,
        server.speedup(),
    );
    let _ = writeln!(
        out,
        "  \"service\": {{\n    \"baseline_requests\": {},\n    \
         \"baseline_compiles_per_sec\": {:.1},\n    \"baseline_p99_ms\": {:.2},\n    \
         \"baseline_mean_ms\": {:.2},\n    \"pool8_requests\": {},\n    \
         \"pool8_compiles_per_sec\": {:.1},\n    \"pool8_p99_ms\": {:.2},\n    \
         \"pool8_mean_ms\": {:.2},\n    \"pool8_speedup\": {:.2},\n    \
         \"pool64_requests\": {},\n    \"pool64_compiles_per_sec\": {:.1},\n    \
         \"pool64_p99_ms\": {:.2},\n    \"pool64_mean_ms\": {:.2}\n  }},",
        service.baseline.requests,
        service.baseline.compiles_per_sec,
        service.baseline.p99_ms,
        service.baseline.mean_ms,
        service.pool8.requests,
        service.pool8.compiles_per_sec,
        service.pool8.p99_ms,
        service.pool8.mean_ms,
        service.speedup(),
        service.pool64.requests,
        service.pool64.compiles_per_sec,
        service.pool64.p99_ms,
        service.pool64.mean_ms,
    );
    let _ = writeln!(
        out,
        "  \"store\": {{\n    \"cold_ms\": {:.2},\n    \"warm_store_ms\": {:.2},\n    \
         \"speedup\": {:.2},\n    \"programs\": {},\n    \"entries\": {},\n    \
         \"bytes\": {}\n  }},",
        store.cold_ms,
        store.warm_ms,
        store.speedup(),
        store.programs,
        store.entries,
        store.bytes,
    );
    let _ = writeln!(
        out,
        "  \"interp_hot\": {{\n    \"interp_seed_ms\": {:.2},\n    \"interp_lowered_ms\": {:.2},\n    \
         \"interp_fast_ms\": {:.2},\n    \"speedup\": {:.2},\n    \
         \"seed_samples_ms\": {},\n    \"lowered_samples_ms\": {},\n    \
         \"fast_samples_ms\": {},\n    \"ic_hits\": {},\n    \"ic_misses\": {},\n    \
         \"ic_hit_rate\": {:.4},\n    \"pic_hits\": {},\n    \"pic_misses\": {},\n    \
         \"pic_hit_rate\": {:.4},\n    \"pic_evictions\": {},\n    \"bc_compiled\": {},\n    \
         \"bc_superinsts\": {},\n    \"slots_resolved\": {},\n    \"consts_folded\": {}\n  }}",
        interp.seed_ms,
        interp.lowered_ms,
        interp.fast_ms,
        interp.speedup(),
        json_samples(&interp.seed_samples),
        json_samples(&interp.lowered_samples),
        json_samples(&interp.fast_samples),
        interp.ic_hits,
        interp.ic_misses,
        interp.ic_hit_rate(),
        interp.pic_hits,
        interp.pic_misses,
        interp.pic_hit_rate(),
        interp.pic_evictions,
        interp.bc_compiled,
        interp.bc_superinsts,
        interp.slots_resolved,
        interp.consts_folded,
    );
    out.push_str("}\n");
    out
}

/// Pulls `"field": <number>` out of `doc`, scoped to the named workload
/// object (first occurrence after the workload key).
fn perf_baseline_ms(doc: &str, workload: &str, field: &str) -> Option<f64> {
    let at = doc.find(&format!("{}:", json_string(workload)))?;
    let rest = &doc[at..];
    let key = format!("\"{field}\":");
    let at = rest.find(&key)?;
    let rest = rest[at + key.len()..].trim_start();
    let end = rest.find(|c: char| c != '.' && !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn perf_gate() -> ExitCode {
    let root = repo_root();
    let workloads: Vec<(&'static str, Box<dyn Fn()>)> = {
        let r1 = root.clone();
        let r2 = root.clone();
        vec![
            ("source_extension", Box::new(move || source_extension_workload(&r1))),
            ("macrolib_foreach", Box::new(macrolib_foreach_workload)),
            ("multijava", Box::new(multijava_workload)),
            ("extension_heavy", Box::new(move || extension_heavy_workload(&r2))),
        ]
    };
    let rows: Vec<PerfRow> =
        workloads.iter().map(|(name, f)| perf_workload(name, f.as_ref())).collect();
    // Leave the thread the way we found it: fast paths on.
    maya::grammar::set_table_cache_enabled(true);
    maya::dispatch::set_dispatch_index_enabled(true);
    maya::grammar::clear_table_cache();

    let mut failed = false;
    for row in &rows {
        println!(
            "xtask perf: {:<18} seed {:>8.2}ms  fast cold {:>8.2}ms  warm {:>8.2}ms  ({:.2}x)",
            row.name,
            row.seed.ms,
            row.fast_cold.ms,
            row.fast_warm.ms,
            row.speedup()
        );
    }

    // Gate 1 (deterministic): warm runs must actually skip table builds.
    let seed_built: u64 = rows.iter().map(|r| perf_counter(&r.seed, Counter::TablesBuilt)).sum();
    let warm_built: u64 =
        rows.iter().map(|r| perf_counter(&r.fast_warm, Counter::TablesBuilt)).sum();
    if warm_built >= seed_built {
        eprintln!(
            "xtask perf: table cache ineffective: {warm_built} tables built warm vs \
             {seed_built} without the cache"
        );
        failed = true;
    }

    // Gate 2 (deterministic): indexed dispatch must test fewer candidates
    // per reduction than the seed's linear scan (782 tests / 470 reductions).
    let tests: u64 = rows.iter().map(|r| perf_counter(&r.fast_warm, Counter::DispatchTests)).sum();
    let reds: u64 =
        rows.iter().map(|r| perf_counter(&r.fast_warm, Counter::DispatchReductions)).sum();
    let ratio = if reds == 0 { 0.0 } else { tests as f64 / reds as f64 };
    println!(
        "xtask perf: dispatch {tests} tests / {reds} reductions = {ratio:.3} per reduction \
         (seed baseline {SEED_TESTS_PER_REDUCTION:.3})"
    );
    if reds == 0 || ratio >= SEED_TESTS_PER_REDUCTION {
        eprintln!("xtask perf: dispatch index ineffective (ratio must be strictly below the seed)");
        failed = true;
    }

    // Gate 3 (absolute): warm single-file recompiles through the compile
    // server must beat a cold whole-workload compile by SERVER_MIN_SPEEDUP.
    let server = server_bench();
    println!(
        "xtask perf: server             cold {:>8.2}ms  warm recompile {:>8.2}ms  \
         full reuse {:>8.2}ms  ({:.2}x)",
        server.cold_ms,
        server.warm_recompile_ms,
        server.full_reuse_ms,
        server.speedup()
    );
    if server.speedup() < SERVER_MIN_SPEEDUP {
        eprintln!(
            "xtask perf: compile server too slow: warm recompile only {:.2}x faster than \
             cold (need {SERVER_MIN_SPEEDUP:.1}x)",
            server.speedup()
        );
        failed = true;
    }

    // Gate 3b (absolute): the concurrent worker-pool service must beat
    // the stateless single-worker loop by SERVICE_MIN_SPEEDUP in
    // compiles/sec on the interleaved 8-client edit stream.
    let service = service_bench();
    println!(
        "xtask perf: service            baseline {:>7.1}/s (p99 {:>7.2}ms)  \
         pool@8 {:>7.1}/s (p99 {:>7.2}ms)  pool@64 {:>7.1}/s (p99 {:>7.2}ms)  ({:.2}x)",
        service.baseline.compiles_per_sec,
        service.baseline.p99_ms,
        service.pool8.compiles_per_sec,
        service.pool8.p99_ms,
        service.pool64.compiles_per_sec,
        service.pool64.p99_ms,
        service.speedup()
    );
    if service.speedup() < SERVICE_MIN_SPEEDUP {
        eprintln!(
            "xtask perf: worker pool too slow: only {:.2}x the stateless single-worker \
             loop's compiles/sec at concurrency 8 (need {SERVICE_MIN_SPEEDUP:.1}x)",
            service.speedup()
        );
        failed = true;
    }

    // Gate 4 (absolute): the bytecode VM tier must beat the legacy tree
    // walker on the interpreter-bound workload, with healthy inline-cache
    // and PIC hit rates (the fast paths must actually be taken, not just
    // exist).
    let interp = interp_bench(&root);
    println!(
        "xtask perf: interp_hot         seed {:>8.2}ms  lowered {:>8.2}ms  bytecode {:>8.2}ms  \
         ({:.2}x)  IC {}/{} hits ({:.1}%)  PIC {}/{} hits ({:.1}%)",
        interp.seed_ms,
        interp.lowered_ms,
        interp.fast_ms,
        interp.speedup(),
        interp.ic_hits,
        interp.ic_hits + interp.ic_misses,
        interp.ic_hit_rate() * 100.0,
        interp.pic_hits,
        interp.pic_hits + interp.pic_misses,
        interp.pic_hit_rate() * 100.0,
    );
    if interp.speedup() < INTERP_MIN_SPEEDUP {
        eprintln!(
            "xtask perf: lowered runtime too slow: only {:.2}x faster than the legacy \
             tree walker (need {INTERP_MIN_SPEEDUP:.1}x)",
            interp.speedup()
        );
        failed = true;
    }
    if interp.ic_hit_rate() < INTERP_MIN_IC_HIT_RATE {
        eprintln!(
            "xtask perf: inline caches ineffective: hit rate {:.1}% (need {:.0}%)",
            interp.ic_hit_rate() * 100.0,
            INTERP_MIN_IC_HIT_RATE * 100.0
        );
        failed = true;
    }
    if interp.pic_hit_rate() < INTERP_MIN_PIC_HIT_RATE {
        eprintln!(
            "xtask perf: polymorphic inline caches ineffective: hit rate {:.1}% (need {:.0}%)",
            interp.pic_hit_rate() * 100.0,
            INTERP_MIN_PIC_HIT_RATE * 100.0
        );
        failed = true;
    }

    // Gate 5 (absolute): a cold process against a prewarmed artifact
    // store must beat a true cold process by STORE_MIN_SPEEDUP on the
    // conformance corpus, byte-identical program by program (store_bench
    // fails on any divergence).
    let store = match store_bench(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask perf: store bench FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "xtask perf: store              cold {:>8.2}ms  warm store {:>8.2}ms  ({:.2}x over \
         {} programs, {} entries, {} KiB)",
        store.cold_ms,
        store.warm_ms,
        store.speedup(),
        store.programs,
        store.entries,
        store.bytes / 1024,
    );
    if store.speedup() < STORE_MIN_SPEEDUP {
        eprintln!(
            "xtask perf: persistent store ineffective: cold process with warm store only \
             {:.2}x faster than true cold (need {STORE_MIN_SPEEDUP:.1}x)",
            store.speedup()
        );
        failed = true;
    }

    // Gate 6 (wall clock, self-relative): no fast-path run may regress more
    // than PERF_TOLERANCE against the committed snapshot, and the service
    // tail latencies may not regress against their committed baselines.
    let doc = render_perf(&rows, &server, &service, &interp, &store);
    let baseline_path = root.join("BENCH_perf.json");
    match std::fs::read_to_string(&baseline_path) {
        Ok(baseline) => {
            for row in &rows {
                let Some(old) = perf_baseline_ms(&baseline, row.name, "fast_warm_ms") else {
                    println!("xtask perf: {} has no baseline yet (new workload)", row.name);
                    continue;
                };
                let limit = old * (1.0 + PERF_TOLERANCE) + PERF_FLOOR_MS;
                if row.fast_warm.ms > limit {
                    eprintln!(
                        "xtask perf: {} REGRESSED: warm {:.2}ms vs baseline {old:.2}ms \
                         (limit {limit:.2}ms)",
                        row.name, row.fast_warm.ms
                    );
                    failed = true;
                }
            }
            for (key, now, floor) in [
                ("pool8_p99_ms", service.pool8.p99_ms, SERVICE_P99_FLOOR_8_MS),
                ("pool64_p99_ms", service.pool64.p99_ms, SERVICE_P99_FLOOR_64_MS),
            ] {
                let Some(old) = perf_baseline_ms(&baseline, "service", key) else {
                    println!("xtask perf: service {key} has no baseline yet");
                    continue;
                };
                let limit = old * (1.0 + PERF_TOLERANCE) + floor;
                if now > limit {
                    eprintln!(
                        "xtask perf: service {key} REGRESSED: {now:.2}ms vs baseline \
                         {old:.2}ms (limit {limit:.2}ms)"
                    );
                    failed = true;
                }
            }
        }
        Err(_) => println!("xtask perf: no committed baseline; writing the first snapshot"),
    }

    if failed {
        eprintln!("xtask perf: FAILED; baseline left untouched");
        return ExitCode::FAILURE;
    }
    std::fs::write(&baseline_path, &doc).expect("write BENCH_perf.json");
    let best = rows.iter().map(PerfRow::speedup).fold(0.0f64, f64::max);
    println!(
        "xtask perf: snapshot written to {} (best speedup {best:.2}x)",
        baseline_path.display()
    );
    ExitCode::SUCCESS
}

// ---- fuzz-lite ---------------------------------------------------------------

/// xorshift64: tiny, deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<T: Copy>(&mut self, pool: &[T]) -> T {
        pool[self.below(pool.len())]
    }
}

/// Statement fragments, valid and broken alike.
const STMTS: &[&str] = &[
    "int x = 1;",
    "int x = ;",
    "System.out.println(\"s\");",
    "x = x + 1;",
    "int y = @;",
    "if (x > 0) { x = x - 1; }",
    "while (false) { }",
    "boolean b = $;",
    "use Foreach;",
    "return;",
    "for (int i = 0; i < 3; i = i + 1) { x = x + i; }",
    "String s = null",
    "{ int z = 2; z = z; }",
    ";",
    "} {",
];

/// Member fragments (some nonsense).
const MEMBERS: &[&str] = &[
    "static int f() { return 1; }",
    "int field = 3;",
    "void g(int a) { a = a + 1; }",
    "static int broken() { return ; }",
    "int = ;",
    "syntax garbage here",
];

/// Raw tokens spliced in by the mutation pass.
const SPLICE: &[&str] = &["@", "$", ";", "}", "{", "(", "class", "int", "=", "use", "\\."];

/// One random MayaJava source: a `Main` class with random members and a
/// `main` made of random statement fragments, then (sometimes) a raw
/// token-splice corruption pass.
fn gen_source(rng: &mut XorShift) -> String {
    let mut src = String::from("class Main {\n");
    for _ in 0..rng.below(3) {
        src.push_str("    ");
        src.push_str(rng.pick(MEMBERS));
        src.push('\n');
    }
    src.push_str("    static void main() {\n        int x = 0;\n");
    for _ in 0..1 + rng.below(5) {
        src.push_str("        ");
        src.push_str(rng.pick(STMTS));
        src.push('\n');
    }
    src.push_str("    }\n}\n");
    // Corruption pass: splice raw tokens at random char boundaries.
    if rng.below(2) == 0 {
        for _ in 0..1 + rng.below(3) {
            let mut at = rng.below(src.len());
            while !src.is_char_boundary(at) {
                at -= 1;
            }
            src.insert_str(at, rng.pick(SPLICE));
        }
    }
    // Truncation pass: chop the tail off.
    if rng.below(4) == 0 {
        let mut at = src.len() / 2 + rng.below(src.len() / 2);
        while !src.is_char_boundary(at) {
            at -= 1;
        }
        src.truncate(at);
    }
    src
}

/// Runs one source through the full multi-error driver with tight resource
/// guards. `Ok(true)` = clean run, `Ok(false)` = diagnosed, `Err` = a panic
/// escaped the driver boundary (the invariant violation fuzzing hunts for).
fn fuzz_one(src: &str) -> Result<bool, String> {
    maya::core::catch_ice(|| {
        let c = maya::Compiler::with_options(maya::CompileOptions {
            echo_output: false,
            uses: vec![],
            max_expand_depth: 50,
            expand_fuel: 500_000,
            interp_step_limit: 500_000,
            interp_stack_limit: 64,
            jobs: 1,
            ..Default::default()
        });
        maya::macrolib::install(&c);
        let diags = maya::core::Diagnostics::with_limits(10, false);
        c.add_source_diags("fuzz.maya", src, &diags);
        c.compile_diags(&diags);
        if !diags.should_fail() {
            c.run_main_diags("Main", &diags);
        }
        !diags.should_fail()
    })
}

/// Replays the conformance corpus through the compile-server path: each
/// program cold, warm (must be a byte-identical full reuse), through a
/// second session pinned to the legacy tree-walking interpreter (must be
/// byte-identical to the lowered run), and after an appended-class edit,
/// all inside the ICE boundary. A panic escaping a session, a warm replay
/// diverging from its cold run, or the lowered runtime diverging from the
/// legacy one fails the fuzz run — the same invariants the random cases
/// hunt for, on real programs.
fn fuzz_corpus_server(root: &Path) -> Result<(usize, usize), String> {
    let dir = root.join("tests/corpus");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.ends_with(".maya").then_some(name)
        })
        .collect();
    names.sort();
    let installer: std::rc::Rc<dyn Fn(&maya::Compiler)> = std::rc::Rc::new(|c| {
        maya::macrolib::install(c);
        maya::multijava::install(c);
    });
    // Same extensions, but every compiler the session creates runs the
    // legacy tree walker instead of the lowered fast runtime.
    let legacy_installer: std::rc::Rc<dyn Fn(&maya::Compiler)> = std::rc::Rc::new(|c| {
        maya::macrolib::install(c);
        maya::multijava::install(c);
        c.interp().set_lowering(false);
    });
    let session_opts = maya::CompileOptions { echo_output: false, jobs: 1, ..Default::default() };
    let mut session = maya::Session::new(session_opts.clone(), Some(installer));
    let mut legacy_session = maya::Session::new(session_opts, Some(legacy_installer));
    let opts = maya::RequestOpts::default();
    let (mut clean, mut diagnosed) = (0usize, 0usize);
    for name in &names {
        let src = std::fs::read_to_string(dir.join(name)).map_err(|e| format!("{name}: {e}"))?;
        let noedit = src.lines().any(|l| l.trim() == "// noedit");
        let sources = vec![(name.clone(), src.clone())];
        let replay = maya::core::catch_ice(std::panic::AssertUnwindSafe(|| {
            let cold = session.compile_sources(&sources, &opts);
            let warm = session.compile_sources(&sources, &opts);
            if !warm.full_reuse || warm.stdout != cold.stdout || warm.stderr != cold.stderr {
                return Err(format!("{name}: warm server replay diverged from cold run"));
            }
            let legacy = legacy_session.compile_sources(&sources, &opts);
            if legacy.success != cold.success
                || legacy.stdout != cold.stdout
                || legacy.stderr != cold.stderr
            {
                return Err(format!(
                    "{name}: lowered runtime diverged from the legacy tree walker\n\
                     --- lowered stdout ---\n{}\n--- legacy stdout ---\n{}\n\
                     --- lowered stderr ---\n{}\n--- legacy stderr ---\n{}",
                    cold.stdout, legacy.stdout, cold.stderr, legacy.stderr
                ));
            }
            if !noedit {
                let edited = vec![(name.clone(), format!("{src}\nclass ZZFuzz {{ }}\n"))];
                session.compile_sources(&edited, &opts);
            }
            Ok(cold.success)
        }))
        .map_err(|panic_msg| format!("{name}: PANIC escaped the compile server: {panic_msg}"))??;
        if replay {
            clean += 1;
        } else {
            diagnosed += 1;
        }
    }
    Ok((clean, diagnosed))
}

fn fuzz_lite(cases: usize, seed: u64) -> ExitCode {
    let started = std::time::Instant::now();
    let mut rng = XorShift::new(seed);
    let (mut clean, mut diagnosed) = (0usize, 0usize);
    for i in 0..cases {
        let src = gen_source(&mut rng);
        match fuzz_one(&src) {
            Ok(true) => clean += 1,
            Ok(false) => diagnosed += 1,
            Err(panic_msg) => {
                eprintln!(
                    "xtask fuzz-lite: PANIC escaped the driver on case {i} (seed {seed}): \
                     {panic_msg}\n--- input ---\n{src}\n-------------"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "xtask fuzz-lite: {cases} cases (seed {seed}) in {:.1}s: {clean} clean, \
         {diagnosed} diagnosed, 0 panics",
        started.elapsed().as_secs_f64()
    );
    match fuzz_corpus_server(&repo_root()) {
        Ok((clean, diagnosed)) => {
            println!(
                "xtask fuzz-lite: corpus server replay: {} programs ({clean} clean, \
                 {diagnosed} diagnosed), warm == cold, lowered == legacy, 0 panics",
                clean + diagnosed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask fuzz-lite: corpus server replay FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---- verify ------------------------------------------------------------------

/// Reads a top-level `"key": <integer>` field out of a hand-rendered
/// JSON report. Good enough for the documents xtask itself writes.
fn json_uint_field(doc: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc[at..].trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// The pre-merge gauntlet: every gate command in sequence, each in its
/// own process so one command's global state (telemetry collectors,
/// armed faults, env) cannot leak into the next. After the bounded fuzz
/// smoke, the `BENCH_fuzz.json` it wrote is re-read and the robustness
/// gates re-asserted from the committed artifact itself.
fn verify() -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xtask verify: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let steps: &[&[&str]] = &[
        &["telemetry"],
        &["perf"],
        &["fuzz-lite"],
        &["fuzz", "--cases=300", "--seed=7"],
    ];
    for step in steps {
        println!("xtask verify: running {}", step.join(" "));
        match std::process::Command::new(&exe).args(*step).status() {
            Ok(st) if st.success() => {}
            Ok(st) => {
                eprintln!("xtask verify: FAILED at `{}` ({st})", step.join(" "));
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask verify: cannot spawn `{}`: {e}", step.join(" "));
                return ExitCode::FAILURE;
            }
        }
    }
    let report_path = repo_root().join("BENCH_fuzz.json");
    let doc = match std::fs::read_to_string(&report_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask verify: fuzz ran but left no {}: {e}", report_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for (key, want) in [("escaped_panics", 0), ("divergences", 0), ("unminimized_divergences", 0)] {
        match json_uint_field(&doc, key) {
            Some(v) if v == want => {}
            Some(v) => {
                eprintln!("xtask verify: FAILED: BENCH_fuzz.json has {key} = {v}, want {want}");
                ok = false;
            }
            None => {
                eprintln!("xtask verify: FAILED: BENCH_fuzz.json is missing {key}");
                ok = false;
            }
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    println!("xtask verify: all gates green");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("telemetry") => telemetry_gate(),
        Some("perf") => perf_gate(),
        Some("profile") => {
            let mut top = 10usize;
            for a in &args[1..] {
                if let Some(n) = a.strip_prefix("--top=") {
                    match n.parse() {
                        Ok(n) if n > 0 => top = n,
                        _ => {
                            eprintln!("xtask profile: bad --top value {n:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    eprintln!("xtask profile: unknown option {a}");
                    return ExitCode::FAILURE;
                }
            }
            profile_report(top)
        }
        Some("fuzz-lite") => {
            let mut cases = 300usize;
            let mut seed = 0x6d61_7961_2d72_7321u64; // "maya-rs!"
            for a in &args[1..] {
                if let Some(n) = a.strip_prefix("--cases=") {
                    match n.parse() {
                        Ok(n) => cases = n,
                        Err(_) => {
                            eprintln!("xtask fuzz-lite: bad --cases value {n:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else if let Some(s) = a.strip_prefix("--seed=") {
                    match s.parse() {
                        Ok(s) => seed = s,
                        Err(_) => {
                            eprintln!("xtask fuzz-lite: bad --seed value {s:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    eprintln!("xtask fuzz-lite: unknown option {a}");
                    return ExitCode::FAILURE;
                }
            }
            fuzz_lite(cases, seed)
        }
        Some("fuzz") => {
            let mut cfg = fuzz::FuzzConfig {
                cases: fuzz::DEFAULT_CASES,
                seed: fuzz::DEFAULT_SEED,
                budget_secs: None,
                induce: false,
            };
            for a in &args[1..] {
                if let Some(n) = a.strip_prefix("--cases=") {
                    match n.parse() {
                        Ok(n) => cfg.cases = n,
                        Err(_) => {
                            eprintln!("xtask fuzz: bad --cases value {n:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else if let Some(s) = a.strip_prefix("--seed=") {
                    match s.parse() {
                        Ok(s) => cfg.seed = s,
                        Err(_) => {
                            eprintln!("xtask fuzz: bad --seed value {s:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else if let Some(b) = a.strip_prefix("--budget=") {
                    match b.parse() {
                        Ok(b) => cfg.budget_secs = Some(b),
                        Err(_) => {
                            eprintln!("xtask fuzz: bad --budget value {b:?}");
                            return ExitCode::FAILURE;
                        }
                    }
                } else if a == "--induce" {
                    cfg.induce = true;
                } else {
                    eprintln!("xtask fuzz: unknown option {a}");
                    return ExitCode::FAILURE;
                }
            }
            fuzz::run(&cfg)
        }
        Some("verify") => verify(),
        Some(other) => {
            eprintln!("xtask: unknown command {other}");
            eprintln!(
                "usage: cargo xtask telemetry | perf | profile [--top=N] | \
                 fuzz-lite [--cases=N] [--seed=S] | \
                 fuzz [--cases=N] [--seed=S] [--budget=SECS] [--induce] | verify"
            );
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask telemetry | perf | profile [--top=N] | \
                 fuzz-lite [--cases=N] [--seed=S] | \
                 fuzz [--cases=N] [--seed=S] [--budget=SECS] [--induce] | verify"
            );
            ExitCode::FAILURE
        }
    }
}
