//! Repo automation (`cargo xtask <command>`).
//!
//! `cargo xtask telemetry` runs the example workloads under a telemetry
//! session, writes the counter snapshot to `BENCH_telemetry.json` at the
//! repo root, and **fails** if the dispatch-test or forced-lazy-node
//! totals regressed by more than 20% against the committed snapshot —
//! catching "the compiler silently started doing much more work" before
//! it lands. It also enforces the paper's laziness claim on the
//! source-extension workload: forced lazy nodes must stay strictly below
//! created lazy nodes.

use maya::telemetry::{self, json_counter, json_string, Counter};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Counter totals gated against the committed baseline.
const GATED: [Counter; 2] = [Counter::DispatchTests, Counter::LazyNodesForced];
/// Allowed relative growth before the gate fails.
const TOLERANCE: f64 = 0.20;

struct WorkloadRun {
    name: &'static str,
    counters: Vec<(Counter, u64)>,
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the repo root")
        .to_path_buf()
}

fn run_workload(name: &'static str, f: impl FnOnce()) -> WorkloadRun {
    let s = telemetry::Session::start(telemetry::Config::default());
    f();
    let r = s.finish();
    WorkloadRun {
        name,
        counters: Counter::ALL.iter().map(|c| (*c, r.counter(*c))).collect(),
    }
}

fn source_extension_workload(root: &Path) {
    let ext = std::fs::read_to_string(root.join("examples/maya/eforeach_ext.maya"))
        .expect("examples/maya/eforeach_ext.maya");
    let app = std::fs::read_to_string(root.join("examples/maya/eforeach_app.maya"))
        .expect("examples/maya/eforeach_app.maya");
    let c = maya::Compiler::new();
    c.add_source("eforeach_ext.maya", &ext).expect("extension compiles");
    c.add_source("eforeach_app.maya", &app).expect("application parses");
    c.compile().expect("application compiles");
    c.run_main("Main").expect("application runs");
}

fn macrolib_foreach_workload() {
    let c = maya::macrolib::compiler_with_macros();
    c.compile_and_run(
        "Main.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("a");
                v.addElement("b");
                use Foreach;
                v.elements().foreach(String st) {
                    System.out.println(st);
                }
            }
        }
        "#,
        "Main",
    )
    .expect("macrolib workload runs");
}

fn multijava_workload() {
    let c = maya::multijava::compiler_with_multijava();
    c.compile_and_run(
        "Main.maya",
        r#"
        use MultiJava;
        class Shape { }
        class Circle extends Shape { }
        class Rect extends Shape { }
        class Intersect {
            int test(Shape a, Shape b) { return 0; }
            int test(Shape@Circle a, Shape@Rect b) { return 1; }
            int test(Shape@Rect a, Shape@Circle b) { return 2; }
        }
        class Main {
            static void main() {
                Intersect it = new Intersect();
                Shape c = new Circle();
                Shape r = new Rect();
                System.out.println(it.test(c, r) + it.test(r, c) + it.test(c, c));
            }
        }
        "#,
        "Main",
    )
    .expect("multijava workload runs");
}

/// Renders the snapshot. Totals come first so [`json_counter`] (first
/// match wins) reads the aggregate, not a per-workload value.
fn render(runs: &[WorkloadRun]) -> String {
    let mut totals = vec![0u64; Counter::ALL.len()];
    for run in runs {
        for (i, (_, v)) in run.counters.iter().enumerate() {
            totals[i] += v;
        }
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"maya-telemetry-bench/1\",");
    out.push_str("  \"totals\": {\n");
    let lines: Vec<String> = Counter::ALL
        .iter()
        .zip(&totals)
        .map(|(c, v)| format!("    \"{}\": {v}", c.name()))
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"workloads\": {\n");
    let blocks: Vec<String> = runs
        .iter()
        .map(|run| {
            let lines: Vec<String> = run
                .counters
                .iter()
                .map(|(c, v)| format!("      \"{}\": {v}", c.name()))
                .collect();
            format!("    {}: {{\n{}\n    }}", json_string(run.name), lines.join(",\n"))
        })
        .collect();
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

fn telemetry_gate() -> ExitCode {
    let root = repo_root();
    let runs = vec![
        run_workload("source_extension", || source_extension_workload(&root)),
        run_workload("macrolib_foreach", macrolib_foreach_workload),
        run_workload("multijava", multijava_workload),
    ];

    // Laziness invariant on the source-extension workload (paper §4): the
    // unused Mayan body must never be forced.
    let src_ext = &runs[0];
    let get = |run: &WorkloadRun, c: Counter| {
        run.counters.iter().find(|(k, _)| *k == c).map_or(0, |(_, v)| *v)
    };
    let created = get(src_ext, Counter::LazyNodesCreated);
    let forced = get(src_ext, Counter::LazyNodesForced);
    if forced >= created {
        eprintln!(
            "xtask telemetry: laziness regression: source_extension forced {forced} of \
             {created} lazy nodes (must be strictly fewer)"
        );
        return ExitCode::FAILURE;
    }

    let doc = render(&runs);
    let baseline_path = root.join("BENCH_telemetry.json");
    let mut failed = false;
    match std::fs::read_to_string(&baseline_path) {
        Ok(baseline) => {
            for c in GATED {
                let old = json_counter(&baseline, c.name());
                let new = json_counter(&doc, c.name()).expect("freshly rendered key");
                let Some(old) = old else {
                    println!("xtask telemetry: {} has no baseline yet (new counter)", c.name());
                    continue;
                };
                let limit = (old as f64 * (1.0 + TOLERANCE)).ceil() as u64;
                let status = if new > limit { "REGRESSED" } else { "ok" };
                println!(
                    "xtask telemetry: {:<22} baseline {old:>8}  now {new:>8}  (limit {limit})  {status}",
                    c.name()
                );
                if new > limit {
                    failed = true;
                }
            }
        }
        Err(_) => {
            println!("xtask telemetry: no committed baseline; writing the first snapshot");
        }
    }
    if failed {
        eprintln!(
            "xtask telemetry: counters regressed >{:.0}% vs {}; baseline left untouched",
            TOLERANCE * 100.0,
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }
    std::fs::write(&baseline_path, &doc).expect("write BENCH_telemetry.json");
    println!(
        "xtask telemetry: snapshot written to {} (lazy: {forced}/{created} forced on source_extension)",
        baseline_path.display()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cmd = std::env::args().nth(1);
    match cmd.as_deref() {
        Some("telemetry") => telemetry_gate(),
        Some(other) => {
            eprintln!("xtask: unknown command {other}");
            eprintln!("usage: cargo xtask telemetry");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask telemetry");
            ExitCode::FAILURE
        }
    }
}
