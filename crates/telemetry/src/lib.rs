//! Compiler telemetry: phase timing, monotonic counters, and a structured
//! expansion trace.
//!
//! The paper's central performance claims — that lazy parsing interleaved
//! with lazy type checking avoids wasted work (§4), and that Mayan
//! multimethod dispatch is cheap enough to drive every grammar production
//! (§4.4) — are only checkable if the pipeline reports what it did. This
//! crate is the zero-dependency measurement substrate every other crate
//! reports through.
//!
//! # Design
//!
//! Telemetry is collected into a **thread-local session**. When no session
//! is active (the default), every instrumentation call is a single
//! thread-local boolean load and an early return, so the compiler pays no
//! measurable cost for being instrumented. A session is opened with
//! [`Session::start`] and closed with [`Session::finish`], which yields a
//! [`Report`]:
//!
//! ```
//! use maya_telemetry as telemetry;
//!
//! let session = telemetry::Session::start(telemetry::Config::default());
//! telemetry::add(telemetry::Counter::TokensLexed, 3);
//! {
//!     let _p = telemetry::phase(telemetry::Phase::Lex);
//!     // ... work ...
//! }
//! let report = session.finish();
//! assert_eq!(report.counter(telemetry::Counter::TokensLexed), 3);
//! assert_eq!(report.phase_calls(telemetry::Phase::Lex), 1);
//! ```
//!
//! Three consumers sit on top:
//!
//! * `mayac --time-passes` prints [`Report::time_passes_table`];
//! * `mayac --stats[=FILE]` emits [`Report::to_json`] (schema
//!   `maya-telemetry/1`, documented in README.md);
//! * `mayac --trace-expansion[=FILTER]` installs a streaming sink
//!   ([`Config::sink`]) that receives each [`TraceEvent`] as it happens.
//!
//! Phases nest (a parse forces a lazy node which parses which dispatches
//! which type-checks which parses …); a phase's wall-clock time is recorded
//! for the *outermost* activation only, so the per-phase times in a report
//! are true wall-clock totals, not double counted.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::{Duration, Instant};

mod caches;
mod hist;
mod jsonw;
mod profile;
mod spans;

pub use caches::{
    cache_eviction, cache_hit, cache_miss, cache_sized, cache_snapshot, cache_stats, CacheId,
    CacheStats, N_CACHES,
};
pub use hist::Histogram;
pub use jsonw::JsonWriter;
pub use profile::{
    prof_binop_pair, prof_enter, prof_exit, prof_opcode, prof_site, profiling, InterpProfile,
    MethodStat, SiteStat,
};
pub use spans::{SpanRec, NO_PARENT};

// ---- phases ------------------------------------------------------------------

/// A compiler phase, for `--time-passes` accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Scanning and token-tree construction.
    Lex,
    /// LALR(1) table construction (base grammar and every extension).
    TableBuild,
    /// Table-driven parsing (including pattern parses and forced re-parses).
    Parse,
    /// Mayan applicability testing and chain ordering.
    Dispatch,
    /// Forcing lazy nodes (parse-on-demand).
    Force,
    /// Static type checking.
    TypeCheck,
    /// Template compilation (pattern parse, hygiene analysis, recipe).
    TemplateCompile,
    /// Template instantiation (recipe replay).
    TemplateInstantiate,
    /// Interpreter execution (metaprograms and the final `main`).
    Interp,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 9] = [
        Phase::Lex,
        Phase::TableBuild,
        Phase::Parse,
        Phase::Dispatch,
        Phase::Force,
        Phase::TypeCheck,
        Phase::TemplateCompile,
        Phase::TemplateInstantiate,
        Phase::Interp,
    ];

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Lex => "lex",
            Phase::TableBuild => "table_build",
            Phase::Parse => "parse",
            Phase::Dispatch => "dispatch",
            Phase::Force => "force",
            Phase::TypeCheck => "type_check",
            Phase::TemplateCompile => "template_compile",
            Phase::TemplateInstantiate => "template_instantiate",
            Phase::Interp => "interp",
        }
    }

    fn idx(self) -> usize {
        match self {
            Phase::Lex => 0,
            Phase::TableBuild => 1,
            Phase::Parse => 2,
            Phase::Dispatch => 3,
            Phase::Force => 4,
            Phase::TypeCheck => 5,
            Phase::TemplateCompile => 6,
            Phase::TemplateInstantiate => 7,
            Phase::Interp => 8,
        }
    }
}

const N_PHASES: usize = Phase::ALL.len();

// ---- counters ----------------------------------------------------------------

/// A monotonic counter. The set mirrors the paper's cost model: lexing,
/// parsing (eager vs. lazy), dispatch, templates, hygiene, interpretation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Counter {
    /// Tokens produced by the scanner.
    TokensLexed,
    /// Delimiter subtrees built by the stream lexer.
    TokenTreesBuilt,
    /// Source files lexed.
    FilesLexed,
    /// LALR(1) table constructions (cache misses, not lookups).
    TablesBuilt,
    /// Grammar snapshots extended (one per syntax import).
    GrammarExtensions,
    /// Terminals/subtrees shifted by the parse engine.
    ParserShifts,
    /// Productions reduced by the parse engine.
    ParserReductions,
    /// Lazy nodes created (candidates for never being parsed).
    LazyNodesCreated,
    /// Lazy nodes actually forced. The paper's laziness claim is
    /// `LazyNodesForced < LazyNodesCreated` on real programs.
    LazyNodesForced,
    /// Reductions routed through Mayan dispatch (vs. builtin actions).
    DispatchReductions,
    /// Mayan candidates considered across all dispatched reductions.
    DispatchCandidates,
    /// Individual applicability tests (parameter matches, including
    /// substructure recursion) executed.
    DispatchTests,
    /// Static-type applicability tests specifically (the expensive kind:
    /// each may force lazy context).
    DispatchTypeTests,
    /// Mayan bodies actually run (winners plus `nextRewrite` chains).
    MayansFired,
    /// Templates compiled (pattern-parsed into recipes).
    TemplatesCompiled,
    /// Template instantiations (recipe replays).
    TemplatesInstantiated,
    /// Hygiene renames: binders given fresh `name$N` identities at
    /// instantiation.
    HygieneRenames,
    /// Interpreter method/constructor invocations.
    InterpCalls,
    /// Mayan bodies (or template instantiations) that panicked and were
    /// converted into diagnostics by the sandbox.
    MayanPanics,
    /// Expansions aborted by the expansion-depth limit.
    DepthLimitHits,
    /// Expansions aborted by the expansion-fuel limit.
    FuelLimitHits,
    /// Interpreter runs aborted by the step (or stack) limit.
    StepLimitHits,
    /// Import cycles detected and reported (`use A` → `use B` → `use A`).
    ImportCycles,
    /// Syntax/semantic errors the parser recovered from (panic-mode
    /// synchronization at statement/member boundaries).
    ParseRecoveries,
    /// LALR table requests answered from the content-hash cache (in-process
    /// or on-disk) without running table construction.
    TableCacheHits,
    /// LALR table requests that missed every cache layer and built tables.
    TableCacheMisses,
    /// Dispatched reductions answered from the `(production, argument
    /// signature) → ordered candidates` memo with zero applicability tests.
    DispatchIndexHits,
    /// Dispatched reductions that ran the full applicability scan (and, for
    /// memoizable productions, populated the memo).
    DispatchIndexMisses,
    /// Compile requests served by a persistent [`Session`] (the `mayad`
    /// server, `mayac --watch`, or the embedding API).
    ServerRequests,
    /// Session requests answered entirely from the previous outcome: no
    /// file changed (byte- or token-identical), so nothing was rebuilt.
    IncrFullReuses,
    /// Files whose token stream actually changed since the last request.
    IncrFilesChanged,
    /// Files re-lexed/re-parsed because they were in the invalidation cone
    /// of a changed file (including the changed files themselves).
    IncrFilesRecompiled,
    /// Files outside every invalidation cone whose cached token trees were
    /// reused (the front end never touches their text again).
    IncrFilesReused,
    /// Syntax imports whose resulting grammar content hash was already
    /// seen by this session — the LALR table memo serves them for free.
    IncrGrammarReuses,
    /// Lazy-body parses served from the session's force cache: the body's
    /// token trees were unchanged and its previous parse was provably
    /// pure, so the memoized AST is returned without re-parsing.
    ForceCacheHits,
    /// Whole-file compilation-unit parses served from the session's force
    /// cache: the file's token trees were unchanged and its previous
    /// parse was provably pure, so the AST is rebuilt from the memo (with
    /// fresh lazy cells) without re-parsing.
    UnitCacheHits,
    /// Class-body member-list parses served from the session's force
    /// cache (same purity regime as `UnitCacheHits`, applied to the
    /// deferred `ClassBody` parse that shapes a class's members).
    ClassBodyCacheHits,
    /// Virtual-call sites answered by their monomorphic inline cache
    /// (receiver class matched and the cached target re-verified).
    IcHits,
    /// Virtual-call sites that fell back to full by-name method
    /// selection (first execution, polymorphic receiver, or a class
    /// shape change since the cache was filled).
    IcMisses,
    /// Local/parameter references resolved to fixed frame slots by the
    /// runtime lowering pass.
    SlotsResolved,
    /// Expressions folded to constants by the lowering pre-pass
    /// (literal arithmetic, constant string concat, trivial tests).
    ConstsFolded,
    /// `mayad` requests that panicked outside the compile sandbox and
    /// were isolated by the server's request-level catch (the client got
    /// a JSON error response; the server kept running).
    ServerPanicsIsolated,
    /// Lowered bodies compiled to register bytecode by the VM tier.
    BcCompiled,
    /// Superinstructions emitted during bytecode compilation (fused
    /// load+load+op, compare+branch, local increment, store-fused ops).
    BcSuperinsts,
    /// Bytecode call sites answered by their polymorphic inline cache
    /// (receiver class and argument keys matched a cache entry).
    PicHits,
    /// Bytecode call sites that missed every polymorphic cache entry and
    /// ran full method selection.
    PicMisses,
    /// Polymorphic-cache entries evicted (LRU) to make room for a new
    /// receiver class at an already-full site.
    PicEvictions,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 47] = [
        Counter::TokensLexed,
        Counter::TokenTreesBuilt,
        Counter::FilesLexed,
        Counter::TablesBuilt,
        Counter::GrammarExtensions,
        Counter::ParserShifts,
        Counter::ParserReductions,
        Counter::LazyNodesCreated,
        Counter::LazyNodesForced,
        Counter::DispatchReductions,
        Counter::DispatchCandidates,
        Counter::DispatchTests,
        Counter::DispatchTypeTests,
        Counter::MayansFired,
        Counter::TemplatesCompiled,
        Counter::TemplatesInstantiated,
        Counter::HygieneRenames,
        Counter::InterpCalls,
        Counter::MayanPanics,
        Counter::DepthLimitHits,
        Counter::FuelLimitHits,
        Counter::StepLimitHits,
        Counter::ImportCycles,
        Counter::ParseRecoveries,
        Counter::TableCacheHits,
        Counter::TableCacheMisses,
        Counter::DispatchIndexHits,
        Counter::DispatchIndexMisses,
        Counter::ServerRequests,
        Counter::IncrFullReuses,
        Counter::IncrFilesChanged,
        Counter::IncrFilesRecompiled,
        Counter::IncrFilesReused,
        Counter::IncrGrammarReuses,
        Counter::ForceCacheHits,
        Counter::UnitCacheHits,
        Counter::ClassBodyCacheHits,
        Counter::IcHits,
        Counter::IcMisses,
        Counter::SlotsResolved,
        Counter::ConstsFolded,
        Counter::ServerPanicsIsolated,
        Counter::BcCompiled,
        Counter::BcSuperinsts,
        Counter::PicHits,
        Counter::PicMisses,
        Counter::PicEvictions,
    ];

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::TokensLexed => "tokens_lexed",
            Counter::TokenTreesBuilt => "token_trees_built",
            Counter::FilesLexed => "files_lexed",
            Counter::TablesBuilt => "tables_built",
            Counter::GrammarExtensions => "grammar_extensions",
            Counter::ParserShifts => "parser_shifts",
            Counter::ParserReductions => "parser_reductions",
            Counter::LazyNodesCreated => "lazy_nodes_created",
            Counter::LazyNodesForced => "lazy_nodes_forced",
            Counter::DispatchReductions => "dispatch_reductions",
            Counter::DispatchCandidates => "dispatch_candidates",
            Counter::DispatchTests => "dispatch_tests",
            Counter::DispatchTypeTests => "dispatch_type_tests",
            Counter::MayansFired => "mayans_fired",
            Counter::TemplatesCompiled => "templates_compiled",
            Counter::TemplatesInstantiated => "templates_instantiated",
            Counter::HygieneRenames => "hygiene_renames",
            Counter::InterpCalls => "interp_calls",
            Counter::MayanPanics => "mayan_panics",
            Counter::DepthLimitHits => "depth_limit_hits",
            Counter::FuelLimitHits => "fuel_limit_hits",
            Counter::StepLimitHits => "step_limit_hits",
            Counter::ImportCycles => "import_cycles",
            Counter::ParseRecoveries => "parse_recoveries",
            Counter::TableCacheHits => "table_cache_hits",
            Counter::TableCacheMisses => "table_cache_misses",
            Counter::DispatchIndexHits => "dispatch_index_hits",
            Counter::DispatchIndexMisses => "dispatch_index_misses",
            Counter::ServerRequests => "server_requests",
            Counter::IncrFullReuses => "incr_full_reuses",
            Counter::IncrFilesChanged => "incr_files_changed",
            Counter::IncrFilesRecompiled => "incr_files_recompiled",
            Counter::IncrFilesReused => "incr_files_reused",
            Counter::IncrGrammarReuses => "incr_grammar_reuses",
            Counter::ForceCacheHits => "force_cache_hits",
            Counter::UnitCacheHits => "unit_cache_hits",
            Counter::ClassBodyCacheHits => "class_body_cache_hits",
            Counter::IcHits => "ic_hits",
            Counter::IcMisses => "ic_misses",
            Counter::SlotsResolved => "slots_resolved",
            Counter::ConstsFolded => "consts_folded",
            Counter::ServerPanicsIsolated => "server_panics_isolated",
            Counter::BcCompiled => "bc_compiled",
            Counter::BcSuperinsts => "bc_superinsts",
            Counter::PicHits => "pic_hits",
            Counter::PicMisses => "pic_misses",
            Counter::PicEvictions => "pic_evictions",
        }
    }

    fn idx(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("counter listed in ALL")
    }
}

const N_COUNTERS: usize = Counter::ALL.len();

// ---- trace events ------------------------------------------------------------

/// What a trace event describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A production reduced through Mayan dispatch.
    Dispatch,
    /// A lazy node forced (parsed on demand).
    Force,
    /// A lazy node created.
    MakeLazy,
    /// A metaprogram imported (`use`, `-use`, or `use_over`).
    Import,
    /// A template compiled.
    TemplateCompile,
    /// A template instantiated.
    TemplateInstantiate,
    /// An LALR table built.
    TableBuild,
}

impl TraceKind {
    /// Stable name (the JSON `kind` value and the trace-line tag).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Dispatch => "dispatch",
            TraceKind::Force => "force",
            TraceKind::MakeLazy => "make-lazy",
            TraceKind::Import => "import",
            TraceKind::TemplateCompile => "template-compile",
            TraceKind::TemplateInstantiate => "template-instantiate",
            TraceKind::TableBuild => "table-build",
        }
    }
}

/// One structured expansion-trace event: what happened (`kind`), to what
/// (`target` — a production, node kind, or metaprogram name), and the
/// human-readable outcome (`detail`).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub kind: TraceKind,
    pub target: String,
    pub detail: String,
}

impl TraceEvent {
    /// Renders the event as one trace line.
    pub fn render(&self) -> String {
        if self.detail.is_empty() {
            format!("[{}] {}", self.kind.name(), self.target)
        } else {
            format!("[{}] {} — {}", self.kind.name(), self.target, self.detail)
        }
    }

    /// Case-sensitive substring filter over kind, target, and detail.
    pub fn matches(&self, filter: &str) -> bool {
        filter.is_empty()
            || self.kind.name().contains(filter)
            || self.target.contains(filter)
            || self.detail.contains(filter)
    }
}

/// A streaming consumer of trace events.
pub type TraceSink = Rc<dyn Fn(&TraceEvent)>;

// ---- the collector -----------------------------------------------------------

/// Session configuration.
#[derive(Clone)]
pub struct Config {
    /// Record [`TraceEvent`]s into the report (`--trace-expansion` and the
    /// JSON `events` array). Counters and phases are always recorded.
    pub capture_events: bool,
    /// Substring filter applied to captured/streamed events.
    pub event_filter: Option<String>,
    /// Streaming sink, invoked for each (filter-passing) event as it is
    /// recorded.
    pub sink: Option<TraceSink>,
    /// Record hierarchical [`SpanRec`]s (`--trace-out`, `--time-passes=tree`).
    /// Phase entries open spans automatically when this is on.
    pub capture_spans: bool,
    /// Span buffer cap; spans past it are counted in
    /// [`Report::spans_dropped`] rather than recorded.
    pub max_spans: usize,
    /// Enable the interpreter profiler, reporting the top N methods, call
    /// sites, and binary-op pairs (`--profile-interp[=N]`).
    pub profile_interp: Option<usize>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            capture_events: false,
            event_filter: None,
            sink: None,
            capture_spans: false,
            max_spans: 1_048_576,
            profile_interp: None,
        }
    }
}

struct Collector {
    phase_ns: [u64; N_PHASES],
    phase_calls: [u64; N_PHASES],
    phase_depth: [u32; N_PHASES],
    phase_start: [Option<Instant>; N_PHASES],
    counters: [u64; N_COUNTERS],
    events: Vec<TraceEvent>,
    spans: Vec<SpanRec>,
    /// Indices into `spans` of the currently open spans, innermost last.
    span_stack: Vec<u32>,
    spans_dropped: u64,
    hists: BTreeMap<&'static str, Histogram>,
    /// Cache-registry snapshot at session start; the report carries the
    /// delta (the registry itself is cumulative per thread).
    cache_base: [CacheStats; N_CACHES],
    config: Config,
    started: Instant,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    /// Span capture on/off — split from ACTIVE so the disabled-span fast
    /// path (a session collecting only counters) is one boolean load.
    static SPANS_ON: Cell<bool> = const { Cell::new(false) };
    /// Session generation, bumped by every `Session::start`. Span guards
    /// remember the generation they opened under so a guard that outlives
    /// its session (the session was replaced) cannot close a stranger's
    /// span.
    static GEN: Cell<u64> = const { Cell::new(0) };
    /// The stack of active phases, maintained even without a session so
    /// internal-compiler-error reports can name the phase that was running.
    static PHASE_STACK: RefCell<Vec<Phase>> = const { RefCell::new(Vec::new()) };
    /// The most recently *entered* phase, never cleared on exit. Errors are
    /// usually reported after the failing phase's guard has unwound; this
    /// still names it.
    static LAST_PHASE: Cell<Option<Phase>> = const { Cell::new(None) };
}

/// The most recently entered phase on this thread, sticky across phase
/// exits. [`current_phase`] is precise while a phase is active; this is the
/// fallback for error reports that fire after the stack has unwound.
pub fn last_phase() -> Option<Phase> {
    LAST_PHASE.with(|p| p.get())
}

/// The innermost phase currently active on this thread, if any. Unlike the
/// timing data this is tracked unconditionally (a push/pop per phase entry),
/// so diagnostics can name the failing phase without a session.
pub fn current_phase() -> Option<Phase> {
    PHASE_STACK.with(|s| s.borrow().last().copied())
}

/// True when a telemetry session is active on this thread. This is the
/// fast path every instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.with(|a| a.get())
}

fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    COLLECTOR.with(|c| c.borrow_mut().as_mut().map(f))
}

/// Adds `n` to a counter. No-op without a session.
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    with_collector(|col| col.counters[c.idx()] += n);
}

/// Increments a counter by one. No-op without a session.
#[inline]
pub fn count(c: Counter) {
    add(c, 1);
}

/// Records a structured trace event. The closure is only called when a
/// session is active, so building the strings costs nothing when disabled.
#[inline]
pub fn trace(kind: TraceKind, make: impl FnOnce() -> (String, String)) {
    if !enabled() {
        return;
    }
    let (target, detail) = make();
    let ev = TraceEvent {
        kind,
        target,
        detail,
    };
    let sink = with_collector(|col| {
        let passes = match &col.config.event_filter {
            Some(f) => ev.matches(f),
            None => true,
        };
        if !passes {
            return None;
        }
        if col.config.capture_events {
            col.events.push(ev.clone());
        }
        col.config.sink.clone()
    })
    .flatten();
    // Run the sink outside the collector borrow so a sink that itself uses
    // telemetry (or panics) cannot poison the session.
    if let Some(sink) = sink {
        sink(&ev);
    }
}

// ---- spans -------------------------------------------------------------------

/// True when the active session is capturing spans. The parallel front end
/// reads this on the driving thread to configure its worker sessions.
#[inline]
pub fn spans_enabled() -> bool {
    SPANS_ON.with(|s| s.get())
}

/// RAII guard for an open span; closes it (records the duration and pops
/// the span stack) on drop.
pub struct SpanGuard {
    /// Index into the collector's span vector; `None` when spans are off
    /// or the buffer cap was hit.
    idx: Option<u32>,
    gen: u64,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard { idx: None, gen: 0 };

    /// Attaches one key/value argument to the span. The closure only runs
    /// when the span is live.
    pub fn arg(&self, key: &'static str, make: impl FnOnce() -> String) {
        let Some(idx) = self.idx else { return };
        if GEN.with(|g| g.get()) != self.gen {
            return;
        }
        with_collector(|col| {
            if let Some(s) = col.spans.get_mut(idx as usize) {
                s.args.push((key, make()));
            }
        });
    }
}

fn open_span(name: Cow<'static, str>, args: Vec<(&'static str, String)>) -> SpanGuard {
    let idx = with_collector(|col| {
        if col.spans.len() >= col.config.max_spans {
            col.spans_dropped += 1;
            return None;
        }
        let idx = col.spans.len() as u32;
        let parent = col.span_stack.last().copied().unwrap_or(NO_PARENT);
        col.spans.push(SpanRec {
            name,
            start_ns: col.started.elapsed().as_nanos() as u64,
            dur_ns: 0,
            parent,
            tid: spans::current_tid(),
            args,
        });
        col.span_stack.push(idx);
        Some(idx)
    })
    .flatten();
    SpanGuard {
        idx,
        gen: GEN.with(|g| g.get()),
    }
}

/// Opens a span. One boolean load when spans are off.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard::INERT;
    }
    open_span(name.into(), Vec::new())
}

/// Opens a span with key/value arguments; the closure only runs when
/// spans are being captured.
#[inline]
pub fn span_with(
    name: impl Into<Cow<'static, str>>,
    make_args: impl FnOnce() -> Vec<(&'static str, String)>,
) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard::INERT;
    }
    open_span(name.into(), make_args())
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        if GEN.with(|g| g.get()) != self.gen {
            return; // session replaced under our feet
        }
        with_collector(|col| {
            let end = col.started.elapsed().as_nanos() as u64;
            if let Some(s) = col.spans.get_mut(idx as usize) {
                s.dur_ns = end.saturating_sub(s.start_ns);
            }
            // Truncate at our own stack entry: children leaked past their
            // parent close with it rather than dangling open.
            if let Some(at) = col.span_stack.iter().rposition(|&i| i == idx) {
                col.span_stack.truncate(at);
            }
        });
    }
}

/// Records one sample into a named session histogram (nanoseconds by
/// convention). No-op without a session.
#[inline]
pub fn record_hist(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_collector(|col| col.hists.entry(name).or_default().record(v));
}

/// Merges a finished worker [`Report`] into the session active on this
/// thread: counters add up, phase times and call counts add up, histograms
/// merge, and (when this session captures spans) the worker's span tree is
/// spliced in with its timestamps shifted onto this session's clock and its
/// thread ids preserved. The parallel front end runs one short-lived
/// session per lexer worker and folds each worker's report back into the
/// driving session here, so `--stats` totals and `--trace-out` trees are
/// identical whatever `--jobs` was. (Phase times from concurrent workers
/// sum, so `lex` may exceed wall clock under `--jobs>1`.) Cache-registry
/// gauges are *not* merged: the registry is per-thread and cumulative, and
/// the session caches live on the driving thread. No-op without a session.
pub fn absorb(r: &Report) {
    if !enabled() {
        return;
    }
    with_collector(|col| {
        for i in 0..N_COUNTERS {
            col.counters[i] += r.counters[i];
        }
        for i in 0..N_PHASES {
            col.phase_ns[i] += r.phase_ns[i];
            col.phase_calls[i] += r.phase_calls[i];
        }
        for (name, h) in &r.hists {
            col.hists.entry(name).or_default().merge(h);
        }
        col.spans_dropped += r.spans_dropped;
        if col.config.capture_spans && !r.spans.is_empty() {
            let base = col.spans.len() as u32;
            let shift = r
                .started
                .saturating_duration_since(col.started)
                .as_nanos() as u64;
            let room = col.config.max_spans.saturating_sub(col.spans.len());
            if r.spans.len() > room {
                col.spans_dropped += (r.spans.len() - room) as u64;
            }
            // Taking a prefix is safe: a parent always precedes its
            // children, so no retained span links past `room`.
            for s in r.spans.iter().take(room) {
                let mut s = s.clone();
                s.start_ns += shift;
                if s.parent != NO_PARENT {
                    s.parent += base;
                }
                col.spans.push(s);
            }
        }
    });
}

/// RAII guard for a phase activation; records elapsed time on drop.
pub struct PhaseGuard {
    phase: Phase,
    armed: bool,
    /// The phase's span when the session captures spans; closes with us.
    _span: SpanGuard,
}

/// Enters a phase. Nested activations of the same phase are counted but
/// only the outermost contributes wall-clock time. When the session
/// captures spans, every activation (nested ones included) also opens a
/// span named after the phase, so the span tree shows the real nesting
/// the flat table collapses.
#[inline]
pub fn phase(p: Phase) -> PhaseGuard {
    PHASE_STACK.with(|s| s.borrow_mut().push(p));
    LAST_PHASE.with(|l| l.set(Some(p)));
    if !enabled() {
        return PhaseGuard {
            phase: p,
            armed: false,
            _span: SpanGuard::INERT,
        };
    }
    with_collector(|col| {
        let i = p.idx();
        col.phase_calls[i] += 1;
        col.phase_depth[i] += 1;
        if col.phase_depth[i] == 1 {
            col.phase_start[i] = Some(Instant::now());
        }
    });
    PhaseGuard {
        phase: p,
        armed: true,
        _span: span(p.name()),
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        PHASE_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own entry; a stray restart cannot underflow this.
            if let Some(at) = s.iter().rposition(|p| *p == self.phase) {
                s.remove(at);
            }
        });
        if !self.armed {
            return;
        }
        with_collector(|col| {
            let i = self.phase.idx();
            if col.phase_depth[i] == 0 {
                return; // session restarted under our feet; ignore
            }
            col.phase_depth[i] -= 1;
            if col.phase_depth[i] == 0 {
                if let Some(t0) = col.phase_start[i].take() {
                    col.phase_ns[i] += t0.elapsed().as_nanos() as u64;
                }
            }
        });
    }
}

// ---- sessions ----------------------------------------------------------------

/// An active telemetry session on the current thread. Dropping the session
/// without calling [`Session::finish`] discards the data and disables
/// collection.
pub struct Session {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Session {
    /// Starts a session, replacing any session already active on this
    /// thread (the previous session's data is discarded).
    pub fn start(config: Config) -> Session {
        GEN.with(|g| g.set(g.get() + 1));
        SPANS_ON.with(|s| s.set(config.capture_spans));
        profile::set_profiling(config.profile_interp.map(|_| Default::default()));
        COLLECTOR.with(|c| {
            *c.borrow_mut() = Some(Collector {
                phase_ns: [0; N_PHASES],
                phase_calls: [0; N_PHASES],
                phase_depth: [0; N_PHASES],
                phase_start: [None; N_PHASES],
                counters: [0; N_COUNTERS],
                events: Vec::new(),
                spans: Vec::new(),
                span_stack: Vec::new(),
                spans_dropped: 0,
                hists: BTreeMap::new(),
                cache_base: caches::cache_snapshot(),
                config,
                started: Instant::now(),
            });
        });
        ACTIVE.with(|a| a.set(true));
        Session {
            _not_send: std::marker::PhantomData,
        }
    }

    /// Ends the session and returns everything it collected.
    pub fn finish(self) -> Report {
        ACTIVE.with(|a| a.set(false));
        SPANS_ON.with(|s| s.set(false));
        let mut col = COLLECTOR
            .with(|c| c.borrow_mut().take())
            .expect("session collector present");
        // Close any spans still open (a report taken mid-pipeline).
        let end = col.started.elapsed().as_nanos() as u64;
        for &idx in &col.span_stack {
            if let Some(s) = col.spans.get_mut(idx as usize) {
                s.dur_ns = end.saturating_sub(s.start_ns);
            }
        }
        let interp_profile = profile::take_profiling()
            .map(|st| st.into_profile(col.config.profile_interp.unwrap_or(10)));
        let caches_now = caches::cache_snapshot();
        Report {
            total: col.started.elapsed(),
            started: col.started,
            phase_ns: col.phase_ns,
            phase_calls: col.phase_calls,
            counters: col.counters,
            events: col.events,
            spans: col.spans,
            spans_dropped: col.spans_dropped,
            hists: col.hists,
            caches: caches::cache_delta(&caches_now, &col.cache_base),
            interp_profile,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if enabled() {
            ACTIVE.with(|a| a.set(false));
            SPANS_ON.with(|s| s.set(false));
            profile::set_profiling(None);
            COLLECTOR.with(|c| c.borrow_mut().take());
        }
    }
}

// ---- reports -----------------------------------------------------------------

/// Everything a session collected.
#[derive(Clone, Debug)]
pub struct Report {
    /// Wall-clock duration of the whole session.
    pub total: Duration,
    /// When the session started; [`absorb`] uses it to shift a worker's
    /// span timestamps onto the absorbing session's clock.
    started: Instant,
    phase_ns: [u64; N_PHASES],
    phase_calls: [u64; N_PHASES],
    counters: [u64; N_COUNTERS],
    /// Captured trace events (empty unless [`Config::capture_events`]).
    pub events: Vec<TraceEvent>,
    /// Captured spans (empty unless [`Config::capture_spans`]).
    pub spans: Vec<SpanRec>,
    /// Spans lost to the [`Config::max_spans`] cap.
    pub spans_dropped: u64,
    hists: BTreeMap<&'static str, Histogram>,
    /// Cache-registry deltas over the session (sizes absolute).
    pub caches: [CacheStats; N_CACHES],
    /// The interpreter profile (present iff [`Config::profile_interp`]).
    pub interp_profile: Option<InterpProfile>,
}

impl Report {
    /// A counter's final value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.idx()]
    }

    /// A named session histogram, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Every named histogram, in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// One cache's session delta.
    pub fn cache(&self, c: CacheId) -> CacheStats {
        self.caches[CacheId::ALL.iter().position(|x| *x == c).expect("cache in ALL")]
    }

    /// Folds another report into this one for cross-request aggregation
    /// (the `mayad` server's lifetime stats): totals, counters, phase
    /// times, and histograms add; cache hit/miss/eviction deltas add with
    /// sizes last-wins. Spans and interpreter profiles are per-run views
    /// and are not merged.
    pub fn merge(&mut self, other: &Report) {
        self.total += other.total;
        for i in 0..N_COUNTERS {
            self.counters[i] += other.counters[i];
        }
        for i in 0..N_PHASES {
            self.phase_ns[i] += other.phase_ns[i];
            self.phase_calls[i] += other.phase_calls[i];
        }
        for (name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
        for (a, b) in self.caches.iter_mut().zip(&other.caches) {
            a.hits += b.hits;
            a.misses += b.misses;
            a.evictions += b.evictions;
            a.size = b.size;
        }
    }

    /// The Chrome trace-event JSON document (`mayac --trace-out=FILE`),
    /// loadable in Perfetto or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        spans::render_chrome_trace(&self.spans)
    }

    /// The indented aggregate span tree (`--time-passes=tree`).
    pub fn time_passes_tree(&self) -> String {
        spans::render_tree(&self.spans, self.total.as_nanos() as u64, self.spans_dropped)
    }

    /// A phase's cumulative outermost wall-clock time.
    pub fn phase_time(&self, p: Phase) -> Duration {
        Duration::from_nanos(self.phase_ns[p.idx()])
    }

    /// How many times a phase was entered (nested activations included).
    pub fn phase_calls(&self, p: Phase) -> u64 {
        self.phase_calls[p.idx()]
    }

    /// The rustc-style `--time-passes` table.
    pub fn time_passes_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<22} {:>12} {:>10}", "phase", "time", "calls");
        for p in Phase::ALL {
            let ns = self.phase_ns[p.idx()];
            let calls = self.phase_calls[p.idx()];
            if calls == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>10}",
                p.name(),
                fmt_duration(ns),
                calls
            );
        }
        let _ = writeln!(
            out,
            "{:<22} {:>12}",
            "total (wall)",
            fmt_duration(self.total.as_nanos() as u64)
        );
        out
    }

    /// The machine-readable stats document (schema `maya-telemetry/1`).
    ///
    /// Layout:
    ///
    /// ```json
    /// {
    ///   "schema": "maya-telemetry/1",
    ///   "total_ns": 123,
    ///   "phases": { "lex": { "ns": 1, "calls": 2 }, ... },
    ///   "counters": { "tokens_lexed": 42, ... },
    ///   "derived": { "dispatch_tests_per_reduction": 1.5, ... },
    ///   "events": [ { "kind": "dispatch", "target": "...", "detail": "..." } ]
    /// }
    /// ```
    ///
    /// `events` is present only when events were captured.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"maya-telemetry/1\",");
        let _ = writeln!(out, "  \"total_ns\": {},", self.total.as_nanos());
        out.push_str("  \"phases\": {\n");
        let phases: Vec<String> = Phase::ALL
            .iter()
            .map(|p| {
                format!(
                    "    \"{}\": {{ \"ns\": {}, \"calls\": {} }}",
                    p.name(),
                    self.phase_ns[p.idx()],
                    self.phase_calls[p.idx()]
                )
            })
            .collect();
        out.push_str(&phases.join(",\n"));
        out.push_str("\n  },\n");
        out.push_str("  \"counters\": {\n");
        let counters: Vec<String> = Counter::ALL
            .iter()
            .map(|c| format!("    \"{}\": {}", c.name(), self.counters[c.idx()]))
            .collect();
        out.push_str(&counters.join(",\n"));
        out.push_str("\n  },\n");
        out.push_str("  \"derived\": {\n");
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                "0.000".to_owned()
            } else {
                format!("{:.3}", num as f64 / den as f64)
            }
        };
        let hits = self.counter(Counter::TableCacheHits);
        let misses = self.counter(Counter::TableCacheMisses);
        let _ = writeln!(
            out,
            "    \"dispatch_tests_per_reduction\": {},",
            ratio(
                self.counter(Counter::DispatchTests),
                self.counter(Counter::DispatchReductions)
            )
        );
        let _ = writeln!(
            out,
            "    \"table_cache_hit_ratio\": {},",
            ratio(hits, hits + misses)
        );
        let ihits = self.counter(Counter::DispatchIndexHits);
        let imisses = self.counter(Counter::DispatchIndexMisses);
        let _ = writeln!(
            out,
            "    \"dispatch_index_hit_ratio\": {}",
            ratio(ihits, ihits + imisses)
        );
        out.push_str("  },\n");
        out.push_str("  \"caches\": {\n");
        let cache_rows: Vec<String> = CacheId::ALL
            .iter()
            .zip(&self.caches)
            .map(|(c, s)| {
                format!(
                    "    \"{}\": {{ \"hits\": {}, \"misses\": {}, \"size\": {}, \"evictions\": {}, \"hit_ratio\": {:.3} }}",
                    c.name(),
                    s.hits,
                    s.misses,
                    s.size,
                    s.evictions,
                    s.hit_ratio()
                )
            })
            .collect();
        out.push_str(&cache_rows.join(",\n"));
        out.push_str("\n  }");
        if !self.events.is_empty() {
            out.push_str(",\n  \"events\": [\n");
            let events: Vec<String> = self
                .events
                .iter()
                .map(|e| {
                    format!(
                        "    {{ \"kind\": {}, \"target\": {}, \"detail\": {} }}",
                        json_string(e.kind.name()),
                        json_string(&e.target),
                        json_string(&e.detail)
                    )
                })
                .collect();
            out.push_str(&events.join(",\n"));
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Renders nanoseconds with an adaptive unit (`42ns`, `1.5µs`, `3.000ms`,
/// `1.200s`).
pub fn fmt_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- minimal JSON reader (for the xtask regression gate) ---------------------

/// Extracts the integer value of `"key": <digits>` from a JSON document
/// produced by [`Report::to_json`]. This is a schema-specific reader, not a
/// general JSON parser: keys are assumed unique and values non-negative
/// integers.
pub fn json_counter(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        // All of these must be harmless no-ops.
        count(Counter::TokensLexed);
        add(Counter::DispatchTests, 10);
        let _p = phase(Phase::Parse);
        trace(TraceKind::Dispatch, || panic!("must not be called"));
    }

    #[test]
    fn counters_and_phases_round_trip() {
        let s = Session::start(Config::default());
        add(Counter::LazyNodesCreated, 5);
        add(Counter::LazyNodesForced, 2);
        {
            let _outer = phase(Phase::Parse);
            {
                let _inner = phase(Phase::Parse); // nested: counted, not double-timed
            }
        }
        let r = s.finish();
        assert_eq!(r.counter(Counter::LazyNodesCreated), 5);
        assert_eq!(r.counter(Counter::LazyNodesForced), 2);
        assert_eq!(r.phase_calls(Phase::Parse), 2);
        assert!(!enabled());
    }

    #[test]
    fn events_capture_and_filter() {
        let s = Session::start(Config {
            capture_events: true,
            event_filter: Some("Foreach".into()),
            ..Config::default()
        });
        trace(TraceKind::Dispatch, || {
            ("Statement → …".into(), "reduced by Mayan `Foreach.visit`".into())
        });
        trace(TraceKind::Dispatch, || {
            ("Expression → …".into(), "reduced by Mayan `Other`".into())
        });
        let r = s.finish();
        assert_eq!(r.events.len(), 1);
        assert!(r.events[0].detail.contains("Foreach"));
    }

    #[test]
    fn sink_streams_events() {
        use std::cell::RefCell;
        let seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let s = Session::start(Config {
            sink: Some(Rc::new(move |e: &TraceEvent| {
                seen2.borrow_mut().push(e.render());
            })),
            ..Config::default()
        });
        trace(TraceKind::Import, || ("Foreach".into(), String::new()));
        let _ = s.finish();
        assert_eq!(seen.borrow().len(), 1);
        assert!(seen.borrow()[0].contains("[import] Foreach"));
    }

    #[test]
    fn json_shape_and_reader() {
        let s = Session::start(Config::default());
        add(Counter::DispatchTests, 7);
        let r = s.finish();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"maya-telemetry/1\""));
        assert_eq!(json_counter(&json, "dispatch_tests"), Some(7));
        assert_eq!(json_counter(&json, "no_such_key"), None);
    }

    #[test]
    fn time_passes_table_lists_active_phases() {
        let s = Session::start(Config::default());
        {
            let _p = phase(Phase::Lex);
        }
        let r = s.finish();
        let table = r.time_passes_table();
        assert!(table.contains("lex"));
        assert!(!table.contains("interp"), "{table}");
        assert!(table.contains("total (wall)"));
    }

    #[test]
    fn session_drop_disables() {
        let s = Session::start(Config::default());
        drop(s);
        assert!(!enabled());
    }

    #[test]
    fn current_phase_tracks_without_session() {
        assert!(!enabled());
        assert_eq!(current_phase(), None);
        {
            let _outer = phase(Phase::Parse);
            assert_eq!(current_phase(), Some(Phase::Parse));
            {
                let _inner = phase(Phase::Dispatch);
                assert_eq!(current_phase(), Some(Phase::Dispatch));
            }
            assert_eq!(current_phase(), Some(Phase::Parse));
        }
        assert_eq!(current_phase(), None);
    }

    #[test]
    fn absorb_merges_worker_reports() {
        // Simulate a worker session finishing, then fold it into a fresh
        // driving session.
        let worker = Session::start(Config::default());
        add(Counter::TokensLexed, 10);
        {
            let _p = phase(Phase::Lex);
        }
        let worker_report = worker.finish();

        let main = Session::start(Config::default());
        add(Counter::TokensLexed, 1);
        absorb(&worker_report);
        let r = main.finish();
        assert_eq!(r.counter(Counter::TokensLexed), 11);
        assert_eq!(r.phase_calls(Phase::Lex), 1);
    }

    #[test]
    fn derived_ratios_in_json() {
        let s = Session::start(Config::default());
        add(Counter::DispatchTests, 3);
        add(Counter::DispatchReductions, 2);
        add(Counter::TableCacheHits, 1);
        add(Counter::TableCacheMisses, 1);
        let r = s.finish();
        let json = r.to_json();
        assert!(json.contains("\"dispatch_tests_per_reduction\": 1.500"), "{json}");
        assert!(json.contains("\"table_cache_hit_ratio\": 0.500"), "{json}");
        assert!(json.contains("\"dispatch_index_hit_ratio\": 0.000"), "{json}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    fn span_config() -> Config {
        Config {
            capture_spans: true,
            ..Config::default()
        }
    }

    #[test]
    fn spans_off_by_default() {
        let s = Session::start(Config::default());
        {
            let g = span("nothing");
            g.arg("k", || panic!("arg closure must not run"));
        }
        let _ = span_with("also nothing", || panic!("args closure must not run"));
        let r = s.finish();
        assert!(r.spans.is_empty());
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let s = Session::start(span_config());
        {
            let root = span("request");
            root.arg("file", || "a.my".into());
            {
                let _p = span("parse");
                let _d = span("dispatch");
            }
            let _p2 = span("parse");
        }
        let r = s.finish();
        assert_eq!(r.spans.len(), 4);
        assert_eq!(r.spans[0].name, "request");
        assert_eq!(r.spans[0].parent, NO_PARENT);
        assert_eq!(r.spans[0].args, vec![("file", "a.my".to_owned())]);
        assert_eq!(r.spans[1].parent, 0); // parse under request
        assert_eq!(r.spans[2].parent, 1); // dispatch under parse
        assert_eq!(r.spans[3].parent, 0); // second parse under request
        for s in &r.spans {
            assert!(s.start_ns + s.dur_ns <= r.total.as_nanos() as u64 + 1_000_000);
        }
        // Parents contain their children.
        let p = &r.spans[1];
        let d = &r.spans[2];
        assert!(d.start_ns >= p.start_ns);
        assert!(d.start_ns + d.dur_ns <= p.start_ns + p.dur_ns);
    }

    #[test]
    fn phases_open_spans_when_capturing() {
        let s = Session::start(span_config());
        {
            let _outer = phase(Phase::Parse);
            let _inner = phase(Phase::Dispatch);
        }
        let r = s.finish();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0].name, "parse");
        assert_eq!(r.spans[1].name, "dispatch");
        assert_eq!(r.spans[1].parent, 0);
        // The flat table is unchanged by span capture.
        assert_eq!(r.phase_calls(Phase::Parse), 1);
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let s = Session::start(Config {
            capture_spans: true,
            max_spans: 2,
            ..Config::default()
        });
        {
            let _a = span("a");
            let _b = span("b");
            let _c = span("c");
            let _d = span("d");
        }
        let r = s.finish();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans_dropped, 2);
    }

    #[test]
    fn unfinished_spans_are_closed_at_session_end() {
        let s = Session::start(span_config());
        let _leaked = span("open-at-finish");
        let r = s.finish();
        assert_eq!(r.spans.len(), 1);
        // finish() assigned a duration even though the guard is still live.
        assert!(r.spans[0].start_ns + r.spans[0].dur_ns <= r.total.as_nanos() as u64);
        drop(_leaked); // stale guard: generation check makes this a no-op
    }

    #[test]
    fn stale_guard_cannot_touch_new_session() {
        let s1 = Session::start(span_config());
        let stale = span("from-first-session");
        drop(s1);
        let s2 = Session::start(span_config());
        drop(stale);
        let r = s2.finish();
        assert!(r.spans.is_empty());
    }

    #[test]
    fn absorb_merges_spans_and_hists() {
        let worker = Session::start(span_config());
        {
            let _f = span("lex_file");
            let _t = span("tokenize");
        }
        record_hist("lex_file_ns", 500);
        let wr = worker.finish();

        let main = Session::start(span_config());
        let _root = span("request");
        record_hist("lex_file_ns", 300);
        absorb(&wr);
        drop(_root);
        let r = main.finish();
        // 1 root + 2 worker spans, worker parent links shifted by 1.
        assert_eq!(r.spans.len(), 3);
        assert_eq!(r.spans[0].name, "request");
        assert_eq!(r.spans[1].name, "lex_file");
        assert_eq!(r.spans[1].parent, NO_PARENT, "worker roots stay roots");
        assert_eq!(r.spans[2].parent, 1, "intra-worker links shifted");
        let h = r.hist("lex_file_ns").expect("histogram merged");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 800);
    }

    #[test]
    fn chrome_trace_parses_shape() {
        let s = Session::start(span_config());
        {
            let _a = span_with("request", || vec![("file", "x.my".to_owned())]);
            let _b = span("parse");
        }
        let r = s.finish();
        let doc = r.chrome_trace_json();
        assert!(doc.contains("\"traceEvents\""), "{doc}");
        assert!(doc.contains("\"request\""), "{doc}");
        assert!(doc.contains("\"parse\""), "{doc}");
        let tree = r.time_passes_tree();
        assert!(tree.contains("request"), "{tree}");
        assert!(tree.contains("  parse"), "{tree}");
    }

    #[test]
    fn report_merge_aggregates() {
        let s1 = Session::start(Config::default());
        add(Counter::ServerRequests, 1);
        record_hist("request_ns", 1_000);
        let mut a = s1.finish();
        let s2 = Session::start(Config::default());
        add(Counter::ServerRequests, 2);
        record_hist("request_ns", 3_000);
        let b = s2.finish();
        a.merge(&b);
        assert_eq!(a.counter(Counter::ServerRequests), 3);
        assert_eq!(a.hist("request_ns").unwrap().count(), 2);
    }

    #[test]
    fn json_includes_cache_table() {
        let s = Session::start(Config::default());
        cache_hit(CacheId::LalrMemo);
        cache_miss(CacheId::LalrMemo);
        cache_sized(CacheId::LalrMemo, 4);
        let r = s.finish();
        let json = r.to_json();
        assert!(json.contains("\"caches\""), "{json}");
        assert!(
            json.contains("\"lalr_memo\": { \"hits\": 1, \"misses\": 1, \"size\": 4, \"evictions\": 0, \"hit_ratio\": 0.500 }"),
            "{json}"
        );
        // The report carries the delta from session start, not all-time.
        let s2 = Session::start(Config::default());
        let r2 = s2.finish();
        assert_eq!(r2.cache(CacheId::LalrMemo).hits, 0);
        assert_eq!(r2.cache(CacheId::LalrMemo).size, 4, "sizes stay absolute");
    }

    #[test]
    fn profile_flows_through_session() {
        let s = Session::start(Config {
            profile_interp: Some(5),
            ..Config::default()
        });
        assert!(profiling());
        prof_enter(1, || "Main.main/0".into());
        prof_site(2, true, || "site".into());
        prof_binop_pair("+", "*");
        prof_exit();
        let r = s.finish();
        assert!(!profiling());
        let p = r.interp_profile.expect("profile captured");
        assert_eq!(p.top, 5);
        assert_eq!(p.methods.len(), 1);
        assert_eq!(p.sites.len(), 1);
        assert_eq!(p.pairs.len(), 1);

        // Without the flag, no profile is collected.
        let s = Session::start(Config::default());
        prof_enter(1, || panic!("must not run"));
        prof_exit();
        let r = s.finish();
        assert!(r.interp_profile.is_none());
    }
}
