//! The cache metrics registry: uniform hit/miss/size/eviction gauges for
//! every memo in the pipeline.
//!
//! The compiler's fast paths are all caches — the LALR table memo, the
//! session force cache (lazy bodies, whole units, class bodies), the
//! shared lowered-body store, and the dispatch candidate memo. Each
//! already bumps its own [`crate::Counter`]s, but those are scattered and
//! asymmetric (several caches count hits only). This registry gives every
//! cache the same four gauges, updated *at the cache itself* (get/insert),
//! so `--stats` and the `mayad` `stats` command can render one uniform
//! table.
//!
//! Unlike session counters, the registry is **cumulative per thread** and
//! needs no active session: a long-lived server reports its lifetime cache
//! behaviour, while a [`crate::Report`] carries the delta between session
//! start and finish (sizes are absolute, not deltas). The in-process memos
//! never evict, so their `evictions` column is an honest zero; the
//! persistent artifact store's size-capped GC reports its removals through
//! the same pipe (`store_*` rows).

use std::cell::RefCell;

/// Every instrumented cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheId {
    /// The thread-local LALR table memo (in-process tier; disk hits count
    /// here too — both answer without building tables).
    LalrMemo,
    /// The session force cache's pure lazy-body parse memo.
    ForceCache,
    /// The session force cache's whole-file compilation-unit memo.
    UnitCache,
    /// The session force cache's class-body member-list memo.
    ClassBodyCache,
    /// The session-shared lowered-body store.
    LowerStore,
    /// The dispatch `(production, signature) → ordered candidates` memo.
    DispatchMemo,
    /// The process-global lexed-tree share (compile-service worker pools;
    /// content-hash keyed `SendTree` results reused across threads).
    LexShare,
    /// Persistent artifact store: LALR tables (`--cache-dir`).
    StoreTables,
    /// Persistent artifact store: lexed token trees.
    StoreLex,
    /// Persistent artifact store: compiled-request outcomes (the
    /// source-closure-keyed extension artifacts).
    StoreOutcome,
    /// Persistent artifact store: lowered bodies + bytecode.
    StoreBody,
}

impl CacheId {
    /// Every cache, in report order.
    pub const ALL: [CacheId; 11] = [
        CacheId::LalrMemo,
        CacheId::ForceCache,
        CacheId::UnitCache,
        CacheId::ClassBodyCache,
        CacheId::LowerStore,
        CacheId::DispatchMemo,
        CacheId::LexShare,
        CacheId::StoreTables,
        CacheId::StoreLex,
        CacheId::StoreOutcome,
        CacheId::StoreBody,
    ];

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            CacheId::LalrMemo => "lalr_memo",
            CacheId::ForceCache => "force_cache",
            CacheId::UnitCache => "unit_cache",
            CacheId::ClassBodyCache => "class_body_cache",
            CacheId::LowerStore => "lower_store",
            CacheId::DispatchMemo => "dispatch_memo",
            CacheId::LexShare => "lex_share",
            CacheId::StoreTables => "store_tables",
            CacheId::StoreLex => "store_lex",
            CacheId::StoreOutcome => "store_outcome",
            CacheId::StoreBody => "store_body",
        }
    }

    fn idx(self) -> usize {
        CacheId::ALL
            .iter()
            .position(|c| *c == self)
            .expect("cache listed in ALL")
    }
}

/// Number of instrumented caches.
pub const N_CACHES: usize = CacheId::ALL.len();

/// One cache's gauges. `hits`/`misses`/`evictions` are monotonic;
/// `size` is the current entry count (a gauge, set on insert).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub size: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// hits / (hits + misses), or 0.0 with no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

thread_local! {
    static CACHES: RefCell<[CacheStats; N_CACHES]> =
        const { RefCell::new([CacheStats { hits: 0, misses: 0, size: 0, evictions: 0 }; N_CACHES]) };
}

/// Records a cache hit.
#[inline]
pub fn cache_hit(c: CacheId) {
    CACHES.with(|s| s.borrow_mut()[c.idx()].hits += 1);
}

/// Records a cache miss.
#[inline]
pub fn cache_miss(c: CacheId) {
    CACHES.with(|s| s.borrow_mut()[c.idx()].misses += 1);
}

/// Records an eviction (the artifact store's GC; in-process memos never
/// evict — see module docs).
#[inline]
pub fn cache_eviction(c: CacheId) {
    CACHES.with(|s| s.borrow_mut()[c.idx()].evictions += 1);
}

/// Sets a cache's current entry count.
#[inline]
pub fn cache_sized(c: CacheId, entries: usize) {
    CACHES.with(|s| s.borrow_mut()[c.idx()].size = entries as u64);
}

/// This thread's cumulative gauges for one cache.
pub fn cache_stats(c: CacheId) -> CacheStats {
    CACHES.with(|s| s.borrow()[c.idx()])
}

/// This thread's cumulative gauges for every cache, in [`CacheId::ALL`]
/// order.
pub fn cache_snapshot() -> [CacheStats; N_CACHES] {
    CACHES.with(|s| *s.borrow())
}

/// The delta `now − base` for the monotonic gauges; sizes stay absolute
/// (a session reports the cache's current size, not its growth).
pub(crate) fn cache_delta(
    now: &[CacheStats; N_CACHES],
    base: &[CacheStats; N_CACHES],
) -> [CacheStats; N_CACHES] {
    let mut out = *now;
    for (o, b) in out.iter_mut().zip(base) {
        o.hits = o.hits.saturating_sub(b.hits);
        o.misses = o.misses.saturating_sub(b.misses);
        o.evictions = o.evictions.saturating_sub(b.evictions);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_per_thread() {
        // Run on a private thread so parallel tests cannot interleave.
        std::thread::spawn(|| {
            cache_hit(CacheId::LalrMemo);
            cache_hit(CacheId::LalrMemo);
            cache_miss(CacheId::LalrMemo);
            cache_sized(CacheId::LalrMemo, 7);
            let s = cache_stats(CacheId::LalrMemo);
            assert_eq!((s.hits, s.misses, s.size, s.evictions), (2, 1, 7, 0));
            assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
            assert_eq!(cache_stats(CacheId::DispatchMemo), CacheStats::default());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn delta_subtracts_monotonic_keeps_size() {
        let base = [CacheStats { hits: 2, misses: 1, size: 3, evictions: 0 }; N_CACHES];
        let mut now = base;
        now[0].hits = 10;
        now[0].size = 9;
        let d = cache_delta(&now, &base);
        assert_eq!(d[0], CacheStats { hits: 8, misses: 0, size: 9, evictions: 0 });
        assert_eq!(d[1], CacheStats { hits: 0, misses: 0, size: 3, evictions: 0 });
    }
}
