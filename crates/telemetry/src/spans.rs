//! Hierarchical span records and their renderers.
//!
//! A span is one timed region with a name, optional key/value arguments,
//! and a parent — the innermost span open on the same thread when it
//! started. The collector stores spans as a flat `Vec<SpanRec>` in open
//! order; because a parent necessarily opens before its children, every
//! `parent` index points *backwards* in the vector, which is what lets
//! [`crate::absorb`] splice a worker's spans in with a constant index
//! shift and lets a full buffer drop a suffix without dangling links.
//!
//! Two renderers sit on the flat form: the Chrome trace-event JSON
//! document behind `mayac --trace-out=FILE` (loadable in Perfetto or
//! `chrome://tracing`) and the indented aggregate tree behind
//! `--time-passes=tree`.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::jsonw::JsonWriter;

/// `parent` value of a root span.
pub const NO_PARENT: u32 = u32::MAX;

/// One recorded span. `start_ns` is the offset from the session start;
/// `parent` indexes the owning report's span vector (always a smaller
/// index, or [`NO_PARENT`]).
#[derive(Clone, Debug)]
pub struct SpanRec {
    pub name: Cow<'static, str>,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub parent: u32,
    /// Stable per-thread id (1-based, assigned on first span).
    pub tid: u32,
    pub args: Vec<(&'static str, String)>,
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// This thread's span tid, assigned on first use. Worker threads get their
/// own ids, so a merged `--jobs=N` trace shows one track per thread.
pub(crate) fn current_tid() -> u32 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Renders spans as a Chrome trace-event JSON document: one `"X"`
/// (complete) event per span, timestamps in microseconds.
pub(crate) fn render_chrome_trace(spans: &[SpanRec]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj().key("traceEvents").begin_arr();
    for s in spans {
        w.begin_obj()
            .field_str("name", &s.name)
            .field_str("cat", "maya")
            .field_str("ph", "X")
            .field_f64("ts", s.start_ns as f64 / 1_000.0)
            .field_f64("dur", s.dur_ns as f64 / 1_000.0)
            .field_u64("pid", 1)
            .field_u64("tid", s.tid as u64);
        if !s.args.is_empty() {
            w.key("args").begin_obj();
            for (k, v) in &s.args {
                w.field_str(k, v);
            }
            w.end_obj();
        }
        w.end_obj();
    }
    w.end_arr().field_str("displayTimeUnit", "ms").end_obj();
    let mut out = w.finish();
    out.push('\n');
    out
}

/// Renders the aggregate self-profile tree: sibling spans with the same
/// name merge into one line (calls, total time, self time), children
/// indent under their parent group.
pub(crate) fn render_tree(spans: &[SpanRec], total_ns: u64, dropped: u64) -> String {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent == NO_PARENT {
            roots.push(i);
        } else {
            children[s.parent as usize].push(i);
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<42} {:>8} {:>12} {:>12}",
        "span", "calls", "total", "self"
    );
    tree_level(spans, &roots, &children, 0, &mut out);
    if dropped > 0 {
        let _ = writeln!(out, "({dropped} spans dropped at the buffer cap)");
    }
    let _ = writeln!(
        out,
        "{:<42} {:>8} {:>12}",
        "total (wall)",
        "",
        crate::fmt_duration(total_ns)
    );
    out
}

fn tree_level(
    spans: &[SpanRec],
    idxs: &[usize],
    children: &[Vec<usize>],
    depth: usize,
    out: &mut String,
) {
    // Group siblings by name, preserving first-appearance order.
    let mut order: Vec<&str> = Vec::new();
    let mut groups: HashMap<&str, Vec<usize>> = HashMap::new();
    for &i in idxs {
        let name = spans[i].name.as_ref();
        if !groups.contains_key(name) {
            order.push(name);
        }
        groups.entry(name).or_default().push(i);
    }
    for name in order {
        let g = &groups[name];
        let calls = g.len() as u64;
        let total: u64 = g.iter().map(|&i| spans[i].dur_ns).sum();
        let kids: Vec<usize> = g
            .iter()
            .flat_map(|&i| children[i].iter().copied())
            .collect();
        let kids_total: u64 = kids.iter().map(|&i| spans[i].dur_ns).sum();
        let self_ns = total.saturating_sub(kids_total);
        let label = format!("{}{}", "  ".repeat(depth), name);
        let _ = writeln!(
            out,
            "{:<42} {:>8} {:>12} {:>12}",
            label,
            calls,
            crate::fmt_duration(total),
            crate::fmt_duration(self_ns)
        );
        tree_level(spans, &kids, children, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &'static str, start: u64, dur: u64, parent: u32) -> SpanRec {
        SpanRec {
            name: Cow::Borrowed(name),
            start_ns: start,
            dur_ns: dur,
            parent,
            tid: 1,
            args: Vec::new(),
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let spans = vec![
            SpanRec {
                args: vec![("file", "a.my".to_owned())],
                ..rec("request", 0, 5_000, NO_PARENT)
            },
            rec("lex", 1_000, 2_000, 0),
        ];
        let doc = render_chrome_trace(&spans);
        assert!(doc.contains(r#""traceEvents": ["#), "{doc}");
        assert!(doc.contains(r#""ph": "X""#), "{doc}");
        assert!(doc.contains(r#""ts": 1.000"#), "{doc}");
        assert!(doc.contains(r#""args": {"file": "a.my"}"#), "{doc}");
    }

    #[test]
    fn tree_merges_siblings_and_subtracts_children() {
        let spans = vec![
            rec("request", 0, 10_000, NO_PARENT),
            rec("parse", 0, 3_000, 0),
            rec("parse", 4_000, 1_000, 0),
            rec("dispatch", 4_200, 500, 2),
        ];
        let tree = render_tree(&spans, 12_000, 0);
        // The two parse activations merge into one line with calls=2.
        assert!(tree.contains("  parse"), "{tree}");
        let parse_line = tree.lines().find(|l| l.trim_start().starts_with("parse")).unwrap();
        assert!(parse_line.contains("2"), "{parse_line}");
        // dispatch nests two levels deep.
        assert!(tree.contains("    dispatch"), "{tree}");
        assert!(tree.contains("total (wall)"), "{tree}");
    }
}
