//! The interpreter profiler (`mayac --profile-interp[=N]`).
//!
//! Per-method invocation counts with inclusive/exclusive wall time,
//! per-call-site inline-cache hit/miss counts, and a tally of nested
//! binary-operator pairs — the data ROADMAP item 2 (a bytecode VM with
//! superinstructions) needs to pick which op sequences deserve fused
//! handlers.
//!
//! The recording API is keyed by raw addresses (`&MethodInfo`, `&CallSite`
//! — both live behind `Rc`s for the interpreter's lifetime) so the hot
//! path never hashes a string; names are rendered lazily by a closure that
//! only runs the first time a key is seen. The interpreter keeps its own
//! `Cell<bool>` mirror of [`profiling`] (synced at its public entry
//! points), so a disabled profiler costs one field load per call and
//! nothing per expression.
//!
//! Inclusive time is charged to the *outermost* activation of a method
//! only (an activation-depth map guards recursion), so a recursive
//! method's inclusive total is true wall time, not multiplied by depth.
//! Exclusive (self) time subtracts the time spent in profiled callees.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Per-method totals.
#[derive(Clone, Copy, Default, Debug)]
pub struct MethodStat {
    /// Invocations (every activation, recursive ones included).
    pub calls: u64,
    /// Wall time of outermost activations.
    pub incl_ns: u64,
    /// Wall time minus time spent in profiled callees.
    pub self_ns: u64,
}

/// Per-call-site inline-cache totals.
#[derive(Clone, Copy, Default, Debug)]
pub struct SiteStat {
    pub hits: u64,
    pub misses: u64,
}

impl SiteStat {
    /// hits / (hits + misses), or 0.0 with no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct ProfFrame {
    key: usize,
    started: Instant,
    /// Nanoseconds spent in profiled callees of this frame.
    child_ns: u64,
}

/// Live profiling state; owned by the telemetry session.
#[derive(Default)]
pub(crate) struct ProfState {
    methods: HashMap<usize, MethodStat>,
    names: HashMap<usize, String>,
    /// Activation depth per method key (recursion guard for incl_ns).
    active: HashMap<usize, u32>,
    stack: Vec<ProfFrame>,
    sites: HashMap<usize, SiteStat>,
    site_names: HashMap<usize, String>,
    pairs: HashMap<(&'static str, &'static str), u64>,
    opcodes: HashMap<&'static str, u64>,
}

thread_local! {
    static PROF_ON: Cell<bool> = const { Cell::new(false) };
    static PROF: RefCell<Option<ProfState>> = const { RefCell::new(None) };
}

/// True when the active session requested interpreter profiling. The
/// interpreter mirrors this into a `Cell<bool>` at its entry points; the
/// per-call/per-site hooks below re-check it themselves, so calling them
/// against a stale mirror is safe (just a wasted branch).
#[inline]
pub fn profiling() -> bool {
    PROF_ON.with(|p| p.get())
}

/// Installs (or clears) the profiling state. Session-start/finish only.
pub(crate) fn set_profiling(state: Option<ProfState>) {
    PROF_ON.with(|p| p.set(state.is_some()));
    PROF.with(|p| *p.borrow_mut() = state);
}

/// Takes the profiling state (session finish).
pub(crate) fn take_profiling() -> Option<ProfState> {
    PROF_ON.with(|p| p.set(false));
    PROF.with(|p| p.borrow_mut().take())
}

fn with_prof(f: impl FnOnce(&mut ProfState)) {
    if !profiling() {
        return;
    }
    PROF.with(|p| {
        if let Some(st) = p.borrow_mut().as_mut() {
            f(st);
        }
    });
}

/// Enters a profiled method activation. `key` must be stable for the
/// method's lifetime (the `MethodInfo` address); `name` renders the
/// human label and runs only on the key's first appearance.
pub fn prof_enter(key: usize, name: impl FnOnce() -> String) {
    with_prof(|st| {
        st.names.entry(key).or_insert_with(name);
        st.methods.entry(key).or_default().calls += 1;
        *st.active.entry(key).or_insert(0) += 1;
        st.stack.push(ProfFrame {
            key,
            started: Instant::now(),
            child_ns: 0,
        });
    });
}

/// Exits the innermost profiled activation (LIFO with [`prof_enter`]).
pub fn prof_exit() {
    with_prof(|st| {
        let Some(fr) = st.stack.pop() else { return };
        let elapsed = fr.started.elapsed().as_nanos() as u64;
        let stat = st.methods.entry(fr.key).or_default();
        stat.self_ns += elapsed.saturating_sub(fr.child_ns);
        let depth = st.active.entry(fr.key).or_insert(1);
        *depth = depth.saturating_sub(1);
        if *depth == 0 {
            stat.incl_ns += elapsed;
        }
        if let Some(parent) = st.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    });
}

/// Records an inline-cache probe at a call site. `key` is the site's
/// address; `name` labels it (first appearance only).
pub fn prof_site(key: usize, hit: bool, name: impl FnOnce() -> String) {
    with_prof(|st| {
        st.site_names.entry(key).or_insert_with(name);
        let s = st.sites.entry(key).or_default();
        if hit {
            s.hits += 1;
        } else {
            s.misses += 1;
        }
    });
}

/// Records one nested binary-operator pair: an `outer` operation whose
/// operand is itself the `inner` operation (e.g. `a + b * c` records
/// `("+", "*")`). The superinstruction-selection signal.
pub fn prof_binop_pair(outer: &'static str, inner: &'static str) {
    with_prof(|st| {
        *st.pairs.entry((outer, inner)).or_insert(0) += 1;
    });
}

/// Tallies one executed bytecode instruction by mnemonic. The VM reads its
/// profiled flag once per body execution, so the disabled cost is one
/// predictable branch per instruction.
pub fn prof_opcode(name: &'static str) {
    with_prof(|st| {
        *st.opcodes.entry(name).or_insert(0) += 1;
    });
}

/// The finished interpreter profile carried by a [`crate::Report`].
#[derive(Clone, Debug, Default)]
pub struct InterpProfile {
    /// `(label, stat)` sorted by exclusive time, descending.
    pub methods: Vec<(String, MethodStat)>,
    /// `(label, stat)` sorted by probe count, descending.
    pub sites: Vec<(String, SiteStat)>,
    /// `("outer≺inner", count)` sorted by count, descending.
    pub pairs: Vec<(String, u64)>,
    /// `(mnemonic, executed count)` sorted by count, descending.
    pub opcodes: Vec<(String, u64)>,
    /// Requested report width (`--profile-interp=N`).
    pub top: usize,
}

impl ProfState {
    pub(crate) fn into_profile(mut self, top: usize) -> InterpProfile {
        // Close any activations still open when the session ended (a
        // profile taken mid-run); charge them as-is so totals stay sane.
        while !self.stack.is_empty() {
            let frames = std::mem::take(&mut self.stack);
            let mut st = ProfState {
                stack: frames,
                ..ProfState::default()
            };
            std::mem::swap(&mut st.methods, &mut self.methods);
            std::mem::swap(&mut st.active, &mut self.active);
            if let Some(fr) = st.stack.pop() {
                let elapsed = fr.started.elapsed().as_nanos() as u64;
                let stat = st.methods.entry(fr.key).or_default();
                stat.self_ns += elapsed.saturating_sub(fr.child_ns);
                stat.incl_ns += elapsed;
            }
            self.stack = st.stack;
            std::mem::swap(&mut st.methods, &mut self.methods);
            std::mem::swap(&mut st.active, &mut self.active);
        }
        let mut methods: Vec<(String, MethodStat)> = self
            .methods
            .into_iter()
            .map(|(k, v)| {
                (
                    self.names.get(&k).cloned().unwrap_or_else(|| format!("<{k:#x}>")),
                    v,
                )
            })
            .collect();
        methods.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
        let mut sites: Vec<(String, SiteStat)> = self
            .sites
            .into_iter()
            .map(|(k, v)| {
                (
                    self.site_names.get(&k).cloned().unwrap_or_else(|| format!("<{k:#x}>")),
                    v,
                )
            })
            .collect();
        sites.sort_by(|a, b| {
            (b.1.hits + b.1.misses).cmp(&(a.1.hits + a.1.misses)).then(a.0.cmp(&b.0))
        });
        let mut pairs: Vec<(String, u64)> = self
            .pairs
            .into_iter()
            .map(|((o, i), n)| (format!("{o} \u{227A} {i}"), n))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut opcodes: Vec<(String, u64)> = self
            .opcodes
            .into_iter()
            .map(|(k, n)| (k.to_owned(), n))
            .collect();
        opcodes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        InterpProfile {
            methods,
            sites,
            pairs,
            opcodes,
            top,
        }
    }
}

impl InterpProfile {
    /// The human report: top-N methods by exclusive time, top-N call
    /// sites with IC hit rates, top-N nested binary-op pairs.
    pub fn render(&self) -> String {
        let n = self.top.max(1);
        let mut out = String::new();
        let _ = writeln!(out, "interpreter profile (top {n})");
        let _ = writeln!(
            out,
            "  {:<40} {:>10} {:>12} {:>12}",
            "method", "calls", "incl", "self"
        );
        for (name, s) in self.methods.iter().take(n) {
            let _ = writeln!(
                out,
                "  {:<40} {:>10} {:>12} {:>12}",
                name,
                s.calls,
                crate::fmt_duration(s.incl_ns),
                crate::fmt_duration(s.self_ns)
            );
        }
        if self.methods.is_empty() {
            let _ = writeln!(out, "  (no profiled method calls)");
        }
        let _ = writeln!(out, "  call sites (inline caches):");
        let _ = writeln!(
            out,
            "  {:<40} {:>10} {:>10} {:>9}",
            "site", "hits", "misses", "hit rate"
        );
        for (name, s) in self.sites.iter().take(n) {
            let _ = writeln!(
                out,
                "  {:<40} {:>10} {:>10} {:>8.1}%",
                name,
                s.hits,
                s.misses,
                s.hit_ratio() * 100.0
            );
        }
        if self.sites.is_empty() {
            let _ = writeln!(out, "  (no inline-cache probes)");
        }
        let _ = writeln!(out, "  hot binary-op pairs (outer \u{227A} inner):");
        for (name, count) in self.pairs.iter().take(n) {
            let _ = writeln!(out, "  {:<40} {:>10}", name, count);
        }
        if self.pairs.is_empty() {
            let _ = writeln!(out, "  (no nested binary operations)");
        }
        if !self.opcodes.is_empty() {
            let total: u64 = self.opcodes.iter().map(|(_, n)| n).sum();
            let _ = writeln!(out, "  bytecode opcodes ({total} executed):");
            for (name, count) in self.opcodes.iter().take(n) {
                let _ = writeln!(out, "  {:<40} {:>10}", name, count);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_fresh_profiler(f: impl FnOnce()) -> InterpProfile {
        set_profiling(Some(ProfState::default()));
        f();
        take_profiling().expect("profiler state").into_profile(10)
    }

    #[test]
    fn disabled_hooks_are_noops() {
        assert!(!profiling());
        prof_enter(1, || panic!("name must not render"));
        prof_exit();
        prof_site(2, true, || panic!("name must not render"));
        prof_binop_pair("+", "*");
    }

    #[test]
    fn calls_and_times_accumulate() {
        let p = with_fresh_profiler(|| {
            prof_enter(10, || "A".into());
            prof_enter(20, || "B".into());
            prof_exit();
            prof_exit();
            prof_enter(10, || "ignored (first name wins)".into());
            prof_exit();
        });
        let a = p.methods.iter().find(|(n, _)| n == "A").expect("A profiled");
        let b = p.methods.iter().find(|(n, _)| n == "B").expect("B profiled");
        assert_eq!(a.1.calls, 2);
        assert_eq!(b.1.calls, 1);
        // A's exclusive time excludes B's inclusive time.
        assert!(a.1.incl_ns >= a.1.self_ns);
    }

    #[test]
    fn recursion_counts_outermost_inclusive_only() {
        let p = with_fresh_profiler(|| {
            prof_enter(1, || "rec".into());
            prof_enter(1, || "rec".into());
            prof_enter(1, || "rec".into());
            std::thread::sleep(std::time::Duration::from_millis(2));
            prof_exit();
            prof_exit();
            prof_exit();
        });
        let (_, s) = &p.methods[0];
        assert_eq!(s.calls, 3);
        // Inclusive charged once: it must be close to wall time, not 3x.
        // (self_ns of the innermost frame is also the whole sleep.)
        assert!(s.incl_ns < 2 * s.self_ns + 1_000_000, "incl={} self={}", s.incl_ns, s.self_ns);
    }

    #[test]
    fn sites_and_pairs_tally() {
        let p = with_fresh_profiler(|| {
            prof_site(7, true, || "Main.f/1".into());
            prof_site(7, true, || "x".into());
            prof_site(7, false, || "x".into());
            prof_binop_pair("+", "*");
            prof_binop_pair("+", "*");
            prof_binop_pair("-", "/");
        });
        assert_eq!(p.sites.len(), 1);
        let (name, s) = &p.sites[0];
        assert_eq!(name, "Main.f/1");
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.pairs[0], ("+ \u{227A} *".to_owned(), 2));
        let text = p.render();
        assert!(text.contains("Main.f/1"), "{text}");
        assert!(text.contains("66.7%"), "{text}");
    }
}
