//! A comma-tracking JSON writer.
//!
//! `mayad` used to assemble its protocol replies with `format!` strings;
//! every new field was a chance to emit a stray comma or an unescaped
//! quote. This writer owns the structural syntax (commas, braces,
//! escaping) so callers only state keys and values. It is a writer, not a
//! serializer: values are emitted in call order, nesting is tracked by an
//! explicit stack, and misuse (closing an object that is not open) panics
//! in debug builds rather than emitting garbage.

use crate::json_string;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ctx {
    Obj,
    Arr,
}

/// An incremental JSON document builder. Start with [`JsonWriter::new`],
/// open one object or array, fill it, and [`JsonWriter::finish`].
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    /// Open containers; the bool is "this container already has an entry"
    /// (so the next entry needs a comma).
    stack: Vec<(Ctx, bool)>,
    /// A `key` was just written; the next value must not emit a comma.
    raw_pending: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn comma(&mut self) {
        if let Some((_, has_entries)) = self.stack.last_mut() {
            if *has_entries {
                self.out.push_str(", ");
            }
            *has_entries = true;
        }
    }

    /// The opening brace of a container either consumes the separator a
    /// preceding [`JsonWriter::key`] wrote, or needs its own comma when it
    /// is a non-first array element.
    fn open_separator(&mut self) {
        if self.raw_pending {
            self.raw_pending = false;
        } else if matches!(self.stack.last(), Some((Ctx::Arr, _))) {
            self.comma();
        }
    }

    /// Opens an object — at the top level, as an array element, or (via
    /// [`JsonWriter::key`]) as an object member.
    pub fn begin_obj(&mut self) -> &mut Self {
        self.open_separator();
        self.out.push('{');
        self.stack.push((Ctx::Obj, false));
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        debug_assert!(matches!(self.stack.last(), Some((Ctx::Obj, _))), "end_obj without begin_obj");
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Opens an array.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.open_separator();
        self.out.push('[');
        self.stack.push((Ctx::Arr, false));
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        debug_assert!(matches!(self.stack.last(), Some((Ctx::Arr, _))), "end_arr without begin_arr");
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Emits `"k": ` inside an object; follow with a value call or
    /// `begin_obj`/`begin_arr`.
    pub fn key(&mut self, k: &str) -> &mut Self {
        debug_assert!(matches!(self.stack.last(), Some((Ctx::Obj, _))), "key outside an object");
        self.comma();
        self.out.push_str(&json_string(k));
        self.out.push_str(": ");
        // The key's comma is spent; the value that follows must not add one.
        if let Some((_, has_entries)) = self.stack.last_mut() {
            *has_entries = true;
        }
        self.raw_pending = true;
        self
    }

    /// Emits a string value (escaped).
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.value(&json_string(v))
    }

    /// Emits an unsigned integer value.
    pub fn u64_val(&mut self, v: u64) -> &mut Self {
        self.value(&v.to_string())
    }

    /// Emits a float value with three decimals (the schema's convention
    /// for milliseconds and ratios).
    pub fn f64_val(&mut self, v: f64) -> &mut Self {
        let s = if v.is_finite() { format!("{v:.3}") } else { "0.000".to_owned() };
        self.value(&s)
    }

    /// Emits a boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.value(if v { "true" } else { "false" })
    }

    fn value(&mut self, rendered: &str) -> &mut Self {
        if self.raw_pending {
            // Directly after `key`: the separator is already written.
            self.raw_pending = false;
        } else {
            self.comma();
        }
        self.out.push_str(rendered);
        self
    }

    /// `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).str_val(v)
    }

    /// `key` + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64_val(v)
    }

    /// `key` + three-decimal float value.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).f64_val(v)
    }

    /// `key` + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).bool_val(v)
    }

    /// The finished document. Panics (debug) if containers are still open.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed container in JsonWriter");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object() {
        let mut w = JsonWriter::new();
        w.begin_obj()
            .field_bool("ok", true)
            .field_u64("n", 3)
            .field_str("s", "a\"b")
            .end_obj();
        assert_eq!(w.finish(), r#"{"ok": true, "n": 3, "s": "a\"b"}"#);
    }

    #[test]
    fn nested_containers() {
        let mut w = JsonWriter::new();
        w.begin_obj().key("xs").begin_arr();
        w.u64_val(1).u64_val(2);
        w.begin_obj().field_str("k", "v").end_obj();
        w.end_arr().field_f64("r", 0.5).end_obj();
        assert_eq!(w.finish(), r#"{"xs": [1, 2, {"k": "v"}], "r": 0.500}"#);
    }

    #[test]
    fn empty_object_as_array_element_still_gets_commas() {
        let mut w = JsonWriter::new();
        w.begin_obj().key("xs").begin_arr();
        w.begin_obj().end_obj();
        w.u64_val(5);
        w.end_arr().end_obj();
        assert_eq!(w.finish(), r#"{"xs": [{}, 5]}"#);
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_obj().key("a").begin_arr().end_arr().key("b").begin_obj().end_obj().end_obj();
        assert_eq!(w.finish(), r#"{"a": [], "b": {}}"#);
    }
}
