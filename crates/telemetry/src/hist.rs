//! Log₂-bucketed duration histograms.
//!
//! The server (`mayad`) answers `stats` requests with per-request latency
//! percentiles; a fixed array of power-of-two buckets gives O(1) record,
//! O(1) merge, and percentile estimates good to a factor of two worst-case
//! (linear interpolation inside the winning bucket does much better in
//! practice) — without allocating or depending on anything.

use std::fmt::Write as _;

/// Number of buckets: bucket `i` holds values whose highest set bit is
/// `i-1` (bucket 0 holds the value 0). Covers the full `u64` range.
const N_BUCKETS: usize = 65;

/// A histogram of non-negative integer samples (nanoseconds, by
/// convention). Buckets are powers of two; exact count/sum/min/max are
/// tracked alongside so means and extremes are not bucket-quantized.
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(count={}, min={}, max={}, p50={})",
            self.count,
            self.min(),
            self.max(),
            self.percentile(50.0)
        )
    }
}

/// The bucket index of a sample: 0 for 0, else one past the highest set
/// bit, so bucket `i` spans `[2^(i-1), 2^i)`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The half-open value range `[lo, hi)` of bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 1)
    } else {
        (1u64 << (i - 1), (1u64 << (i - 1)).saturating_mul(2))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0–100), estimated by linear interpolation
    /// inside the winning bucket and clamped to the observed min/max.
    /// Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (seen + n) as f64 >= rank {
                let (lo, hi) = bucket_range(i);
                let into = ((rank - seen as f64) / n as f64).clamp(0.0, 1.0);
                let est = lo as f64 + into * (hi - lo) as f64;
                return (est as u64).clamp(self.min(), self.max);
            }
            seen += n;
        }
        self.max
    }

    /// The non-empty buckets as `(lo, hi, count)` triples, low to high
    /// (`[lo, hi)` half-open value ranges).
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_range(i);
                (lo, hi, n)
            })
            .collect()
    }

    /// A one-line human summary (`count`, mean, p50/p95/p99, max), with
    /// nanosecond samples rendered as durations.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count,
            crate::fmt_duration(self.mean() as u64),
            crate::fmt_duration(self.percentile(50.0)),
            crate::fmt_duration(self.percentile(95.0)),
            crate::fmt_duration(self.percentile(99.0)),
            crate::fmt_duration(self.max())
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn percentiles_are_monotonic_and_bounded() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 100, 1000, 5000, 100_000] {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= h.min() && p99 <= h.max());
        assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 9, 17, 33] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 1000, 70] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.buckets(), all.buckets());
    }

    #[test]
    fn buckets_cover_samples() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(7);
        h.record(8);
        let buckets = h.buckets();
        let total: u64 = buckets.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, 4);
        for (lo, hi, _) in buckets {
            assert!(lo < hi);
        }
    }
}
