//! The MultiJava extension: productions, Mayans, and the class-processing
//! hook that performs the §5.2 translation.

use crate::dispatch_gen::{dispatch_arg, MultiMethod};
use maya_ast::{
    Block, Decl, Formal, Ident, LazyNode, Node, NodeKind, Stmt, StmtKind, TypeName,
};
use maya_core::{BaseProds, CompileError, Compiler, CompilerInner, CoreExpand};
use maya_dispatch::{Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param};
use maya_grammar::RhsItem;
use maya_lexer::{sym, Delim, Span, Symbol, TokenKind};
use maya_types::{ClassId, MethodInfo, ResolveCtx, Type};
use std::cell::RefCell;
use std::rc::Rc;

/// An external method declaration awaiting its receiver class (resolved in
/// the class-processing hook, after every class has been declared).
struct ExternalMethod {
    receiver: Vec<Ident>,
    ret: TypeName,
    name: Ident,
    formals: Vec<Formal>,
    body: LazyNode,
    ctx: ResolveCtx,
    span: Span,
}

/// Shared state between the extension's Mayans and its class hook — the
/// analogue of the paper's `GenericFunction`/`MultiMethod` bookkeeping
/// objects (§5.2).
#[derive(Default)]
pub struct MjState {
    externals: RefCell<Vec<ExternalMethod>>,
}

/// The MultiJava metaprogram: `use MultiJava;` brings `@`-specializers and
/// external method declarations into scope.
pub struct MultiJava {
    prods: BaseProds,
    state: Rc<MjState>,
}

impl MetaProgram for MultiJava {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        self.add_formal_specializers(env)?;
        self.add_external_methods(env)?;
        self.add_method_validator(env)?;
        Ok(())
    }

    fn name(&self) -> &str {
        "MultiJava"
    }
}

impl MultiJava {
    /// `Formal → ModifierList TypeName @ TypeName UnboundLocal` — the §5.1
    /// parameter-specializer syntax `C@D c`.
    fn add_formal_specializers(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = env.add_production(
            NodeKind::Formal,
            &[
                RhsItem::Kind(NodeKind::ModifierList),
                RhsItem::Kind(NodeKind::TypeName),
                RhsItem::tok(TokenKind::At),
                RhsItem::Kind(NodeKind::TypeName),
                RhsItem::Kind(NodeKind::UnboundLocal),
            ],
        )?;
        env.import_mayan(Mayan::new(
            "MjFormal",
            prod,
            vec![
                Param::plain(NodeKind::Top),
                Param::named(NodeKind::TypeName, sym("base")),
                Param::plain(NodeKind::TokenNode),
                Param::named(NodeKind::TypeName, sym("spec")),
                Param::named(NodeKind::Identifier, sym("name")),
            ],
            Rc::new(|b: &Bindings, _ctx: &mut dyn ExpandCtx| {
                let base = b
                    .get("base")
                    .and_then(|n| n.as_type().cloned())
                    .ok_or_else(|| DispatchError::new("internal: formal base", Span::DUMMY))?;
                let spec = b
                    .get("spec")
                    .and_then(|n| n.as_type().cloned())
                    .ok_or_else(|| DispatchError::new("internal: formal spec", Span::DUMMY))?;
                let name = b
                    .get("name")
                    .and_then(Node::as_ident)
                    .ok_or_else(|| DispatchError::new("internal: formal name", Span::DUMMY))?;
                let mut f = Formal::new(base, name);
                f.specializer = Some(spec);
                Ok(Node::Formal(f))
            }),
        ));
        Ok(())
    }

    /// `Declaration → ModifierList TypeName QualifiedName . Identifier
    /// (FormalList) Throws lazy-block` — external methods (§5.1). The Mayan
    /// records the declaration; the hook attaches it once the receiver
    /// class exists.
    fn add_external_methods(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = env.add_production(
            NodeKind::Declaration,
            &[
                RhsItem::Kind(NodeKind::ModifierList),
                RhsItem::Kind(NodeKind::TypeName),
                RhsItem::Kind(NodeKind::QualifiedName),
                RhsItem::tok(TokenKind::Dot),
                RhsItem::Kind(NodeKind::Identifier),
                RhsItem::Subtree(Delim::Paren, vec![RhsItem::Kind(NodeKind::FormalList)]),
                RhsItem::Kind(NodeKind::Throws),
                RhsItem::Lazy(Delim::Brace, NodeKind::BlockStmts),
            ],
        )?;
        let state = self.state.clone();
        env.import_mayan(Mayan::new(
            "MjExternal",
            prod,
            vec![
                Param::plain(NodeKind::Top),
                Param::named(NodeKind::TypeName, sym("ret")),
                Param::named(NodeKind::QualifiedName, sym("recv")),
                Param::plain(NodeKind::TokenNode),
                Param::named(NodeKind::Identifier, sym("name")),
                Param::named(NodeKind::Top, sym("formals")),
                Param::plain(NodeKind::Top),
                Param::named(NodeKind::Top, sym("body")),
            ],
            Rc::new(move |b: &Bindings, ctx: &mut dyn ExpandCtx| {
                let cx = ctx
                    .as_any()
                    .downcast_mut::<CoreExpand>()
                    .expect("MultiJava runs under the core compiler");
                let receiver = match b.get("recv") {
                    Some(Node::Name(parts)) => parts.clone(),
                    _ => return Err(DispatchError::new("internal: external receiver", Span::DUMMY)),
                };
                let ret = b
                    .get("ret")
                    .and_then(|n| n.as_type().cloned())
                    .ok_or_else(|| DispatchError::new("internal: external return", Span::DUMMY))?;
                let name = b
                    .get("name")
                    .and_then(Node::as_ident)
                    .ok_or_else(|| DispatchError::new("internal: external name", Span::DUMMY))?;
                let formals = match b.get("formals") {
                    Some(Node::Formals(f)) => f.clone(),
                    Some(Node::List(items)) => items
                        .iter()
                        .filter_map(|n| match n {
                            Node::Formal(f) => Some(f.clone()),
                            _ => None,
                        })
                        .collect(),
                    _ => vec![],
                };
                let body = match b.get("body").and_then(|n| n.as_lazy()) {
                    Some(l) => l.clone(),
                    None => {
                        return Err(DispatchError::new("internal: external body", Span::DUMMY))
                    }
                };
                let span = name.span;
                state.externals.borrow_mut().push(ExternalMethod {
                    receiver,
                    ret,
                    name,
                    formals,
                    body,
                    ctx: cx.resolve_ctx().clone(),
                    span,
                });
                // The declaration itself expands to nothing; the hook does
                // the intercession.
                Ok(Node::Decl(Decl::Empty))
            }),
        ));
        Ok(())
    }

    /// A Mayan on the *base* method-declaration production, winning by
    /// lexical tie-breaking (§5.2): it validates specializers and passes
    /// through with `nextRewrite` — "our implementation examines every
    /// ordinary method declaration".
    fn add_method_validator(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        for prod_name in ["method_decl", "method_decl_abs"] {
            let prod = self.prods.id(prod_name);
            env.import_mayan(Mayan::new(
                "MjMethodDecl",
                prod,
                maya_core::builtin_params(&env.grammar(), prod),
                Rc::new(|b: &Bindings, ctx: &mut dyn ExpandCtx| {
                    // args[3] is the formal list of the base production.
                    let formals: Vec<Formal> = match b.args.get(3) {
                        Some(Node::Formals(f)) => f.clone(),
                        Some(Node::List(items)) => items
                            .iter()
                            .filter_map(|n| match n {
                                Node::Formal(f) => Some(f.clone()),
                                _ => None,
                            })
                            .collect(),
                        _ => vec![],
                    };
                    {
                        let cx = ctx
                            .as_any()
                            .downcast_mut::<CoreExpand>()
                            .expect("MultiJava runs under the core compiler");
                        for f in &formals {
                            let Some(spec) = &f.specializer else { continue };
                            let classes = cx.c.cx.classes.clone();
                            let rctx = cx.resolve_ctx().clone();
                            let base = classes
                                .resolve_type_name(&f.ty, &rctx)
                                .map_err(|e| DispatchError::new(e.message, e.span))?;
                            let spec_ty = classes
                                .resolve_type_name(spec, &rctx)
                                .map_err(|e| DispatchError::new(e.message, e.span))?;
                            let ok = matches!((&base, &spec_ty), (Type::Class(_), Type::Class(_)))
                                && classes.is_subtype(&spec_ty, &base);
                            if !ok {
                                return Err(DispatchError::new(
                                    format!(
                                        "invalid specializer: {} is not a class subtype of {}",
                                        spec, f.ty
                                    ),
                                    spec.span,
                                ));
                            }
                        }
                    }
                    // Defer to the built-in translation.
                    ctx.next_rewrite()
                }),
            ));
        }
        Ok(())
    }
}

/// The class-processing hook: attach external methods, then translate
/// multimethod groups into hidden siblings plus a generated dispatcher
/// (Figure 8).
fn mj_hook(cx: &Rc<CompilerInner>, class: ClassId, state: &MjState) -> Result<(), CompileError> {
    let classes = &cx.classes;

    // 1. External methods targeting this class.
    let mut externals = state.externals.borrow_mut();
    let mut remaining = Vec::new();
    for ext in externals.drain(..) {
        let tn = TypeName::new(
            ext.span,
            maya_ast::TypeNameKind::Named(ext.receiver.clone()),
        );
        let target = classes.resolve_type_name(&tn, &ext.ctx).ok();
        if target != Some(Type::Class(class)) {
            remaining.push(ext);
            continue;
        }
        let mut params = Vec::new();
        let mut names = Vec::new();
        let mut specializers = Vec::new();
        for f in &ext.formals {
            params.push(classes.resolve_type_name(&f.ty, &ext.ctx)?);
            names.push(f.name.sym);
            specializers.push(match &f.specializer {
                Some(tn) => Some(classes.resolve_type_name(tn, &ext.ctx)?),
                None => None,
            });
        }
        classes.add_method(
            class,
            MethodInfo {
                name: ext.name.sym,
                params,
                param_names: names,
                ret: classes.resolve_type_name(&ext.ret, &ext.ctx)?,
                modifiers: maya_ast::Modifiers::just(maya_ast::Modifier::Public),
                body: Some(ext.body.clone()),
                native: None,
                specializers,
            },
        );
    }
    *externals = remaining;
    drop(externals);

    // 2. Multimethod groups (own methods with at least one specializer).
    let methods: Vec<MethodInfo> = classes.info(class).borrow().methods.clone();
    let mut groups: Vec<(Symbol, Vec<Type>, Vec<MethodInfo>)> = Vec::new();
    for m in &methods {
        match groups
            .iter_mut()
            .find(|(n, p, _)| *n == m.name && *p == m.params)
        {
            Some((_, _, g)) => g.push(m.clone()),
            None => groups.push((m.name, m.params.clone(), vec![m.clone()])),
        }
    }
    for (name, params, group) in groups {
        if !group
            .iter()
            .any(|m| m.specializers.iter().any(Option::is_some))
        {
            continue; // ordinary overloading, not a generic function
        }
        // The fallback may be defined here or *inherited* (MultiJava:
        // "define or inherit multimethods for all argument types").
        let own_fallback = group
            .iter()
            .find(|m| m.specializers.iter().all(Option::is_none))
            .cloned();
        let inherited_fallback = if own_fallback.is_none() {
            let sup = classes.info(class).borrow().superclass;
            sup.and_then(|s| {
                classes
                    .methods_named(s, name)
                    .into_iter()
                    .find(|(_, m)| {
                        m.params == params && m.specializers.iter().all(Option::is_none)
                    })
                    .map(|(_, m)| m)
            })
        } else {
            None
        };
        let fallback = own_fallback
            .as_ref()
            .or(inherited_fallback.as_ref())
            .ok_or_else(|| {
                CompileError::new(
                    format!(
                        "generic function {}.{} has no unspecialized multimethod \
                         (MultiJava completeness)",
                        classes.fqcn(class),
                        name
                    ),
                    Span::DUMMY,
                )
            })?
            .clone();
        if fallback.ret == Type::Void {
            return Err(CompileError::new(
                format!(
                    "void multimethods are not supported by the Figure 8 translation \
                     ({}.{})",
                    classes.fqcn(class),
                    name
                ),
                Span::DUMMY,
            ));
        }
        // Uniqueness of specializer tuples.
        for (i, a) in group.iter().enumerate() {
            for b in &group[i + 1..] {
                if a.specializers == b.specializers {
                    return Err(CompileError::new(
                        format!(
                            "duplicate multimethod specializers on {}.{}",
                            classes.fqcn(class),
                            name
                        ),
                        Span::DUMMY,
                    ));
                }
            }
        }
        // Rename the multimethods to hidden siblings m$1, m$2, … in
        // declaration order, and remove the originals. An inherited
        // fallback dispatches through super.m(...).
        let mut mangled_group = Vec::new();
        let mut renamed = Vec::new();
        for (i, m) in group.iter().enumerate() {
            let mangled = sym(&format!("{name}${}", i + 1));
            let mut hidden = m.clone();
            hidden.name = mangled;
            // The hidden method's parameter types narrow to the
            // specializers (the dispatcher casts at the call).
            hidden.params = m
                .specializers
                .iter()
                .zip(&m.params)
                .map(|(s, p)| s.clone().unwrap_or_else(|| p.clone()))
                .collect();
            hidden.specializers = vec![None; m.params.len()];
            renamed.push(hidden);
            mangled_group.push(MultiMethod {
                target: crate::dispatch_gen::Target::Mangled(mangled),
                specializers: m.specializers.clone(),
            });
        }
        if own_fallback.is_none() {
            mangled_group.push(MultiMethod {
                target: crate::dispatch_gen::Target::Super(name),
                specializers: vec![None; params.len()],
            });
        }
        classes.retain_methods(class, |m| !(m.name == name && m.params == params));
        for h in renamed {
            classes.add_method(class, h);
        }
        // Generate the dispatcher (Figure 8).
        let vars = fallback.param_names.clone();
        let refs: Vec<&MultiMethod> = mangled_group.iter().collect();
        let body_expr = dispatch_arg(classes, &vars, &refs, 0)?;
        let body = LazyNode::forced(
            NodeKind::BlockStmts,
            Node::Block(Block::synth(vec![Stmt::synth(StmtKind::Return(Some(
                body_expr,
            )))])),
        );
        classes.add_method(
            class,
            MethodInfo {
                name,
                params,
                param_names: vars,
                ret: fallback.ret.clone(),
                modifiers: fallback.modifiers,
                body: Some(body),
                native: None,
                specializers: vec![],
            },
        );
    }
    Ok(())
}

/// Registers MultiJava with a compiler: the metaprogram (importable as
/// `MultiJava` or `multijava.MultiJava`) and the class-processing hook.
pub fn install(compiler: &Compiler) {
    let state = Rc::new(MjState::default());
    let program = Rc::new(MultiJava {
        prods: compiler.base().prods.clone(),
        state: state.clone(),
    });
    compiler.register_metaprogram("MultiJava", program.clone());
    compiler.register_metaprogram("multijava.MultiJava", program);
    compiler.add_class_hook(Rc::new(move |cx, class| mj_hook(cx, class, &state)));
}
