//! Generation of multimethod dispatchers — the paper's Figure 8
//! (`GenericFunction.dispatchArg`), transliterated.

use maya_ast::{Expr, ExprKind, MethodName, TypeName};
use maya_core::CompileError;
use maya_lexer::{Span, Symbol};
use maya_types::{ClassTable, Type};

/// Where a selected multimethod's code lives.
#[derive(Clone, Debug)]
pub enum Target {
    /// A hidden sibling (`m$2`) in the same class.
    Mangled(Symbol),
    /// The inherited definition: call `super.m(...)` (MultiJava's "define
    /// or *inherit*" completeness rule).
    Super(Symbol),
}

/// One multimethod of a generic function: where its body lives, and its
/// per-argument specializers (`None` = the base type).
#[derive(Clone, Debug)]
pub struct MultiMethod {
    pub target: Target,
    pub specializers: Vec<Option<Type>>,
}

impl MultiMethod {
    /// True when `self` is pointwise at least as specific as `other`.
    fn at_least_as_specific(&self, ct: &ClassTable, other: &MultiMethod) -> bool {
        self.specializers
            .iter()
            .zip(&other.specializers)
            .all(|(a, b)| match (a, b) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(x), Some(y)) => ct.is_subtype(x, y),
            })
    }
}

fn type_to_typename(ct: &ClassTable, ty: &Type) -> TypeName {
    match ty {
        Type::Prim(p) => TypeName::prim(*p),
        Type::Class(c) => TypeName::strict(ct.fqcn(*c)),
        Type::Array(el) => type_to_typename(ct, el).array_of(),
        _ => TypeName::void(),
    }
}

/// Figure 8's `sortOnArg`: for each type specializer on the `n`th argument,
/// the methods that may be applicable when that type is encountered, with
/// subtypes sorted before supertypes (a valid order for `instanceof`
/// tests). The entry with specializer `None` (the base type) comes last.
pub fn sort_on_arg<'a>(
    ct: &ClassTable,
    applicable: &[&'a MultiMethod],
    n: usize,
) -> Vec<(Option<Type>, Vec<&'a MultiMethod>)> {
    let mut specs: Vec<Option<Type>> = Vec::new();
    for m in applicable {
        let s = m.specializers[n].clone();
        if !specs.contains(&s) {
            specs.push(s);
        }
    }
    // Subtypes before supertypes; the unspecialized entry last.
    specs.sort_by(|a, b| match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (Some(_), None) => std::cmp::Ordering::Less,
        (Some(x), Some(y)) => {
            if ct.is_subtype(x, y) && !ct.is_subtype(y, x) {
                std::cmp::Ordering::Less
            } else if ct.is_subtype(y, x) && !ct.is_subtype(x, y) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        }
    });
    specs
        .into_iter()
        .map(|s| {
            let subset: Vec<&MultiMethod> = applicable
                .iter()
                .copied()
                .filter(|m| match (&m.specializers[n], &s) {
                    (None, _) => true,
                    (Some(spec), Some(enc)) => ct.is_subtype(enc, spec),
                    (Some(_), None) => false,
                })
                .collect();
            (s, subset)
        })
        .collect()
}

fn var_ref(name: Symbol) -> Expr {
    Expr::synth(ExprKind::VarRef(name))
}

/// Builds the call to the selected multimethod, casting each argument to
/// the method's specializer where present.
fn dispatch_call(ct: &ClassTable, vars: &[Symbol], m: &MultiMethod) -> Expr {
    let args: Vec<Expr> = vars
        .iter()
        .zip(&m.specializers)
        .map(|(v, s)| match s {
            Some(ty) => Expr::synth(ExprKind::Cast(
                type_to_typename(ct, ty),
                Box::new(var_ref(*v)),
            )),
            None => var_ref(*v),
        })
        .collect();
    let mn = match &m.target {
        Target::Mangled(name) => MethodName::simple(maya_ast::Ident::synth(*name)),
        Target::Super(name) => MethodName::super_call(maya_ast::Ident::synth(*name)),
    };
    Expr::synth(ExprKind::Call(mn, args))
}

/// Figure 8's `dispatchArg`: builds the expression that selects and invokes
/// the most applicable multimethod, dispatching arguments left to right.
///
/// # Errors
///
/// Reports generic functions for which no unique most-specific method
/// exists (MultiJava's static completeness/uniqueness guarantee).
pub fn dispatch_arg(
    ct: &ClassTable,
    vars: &[Symbol],
    applicable: &[&MultiMethod],
    n: usize,
) -> Result<Expr, CompileError> {
    if n == vars.len() || applicable.len() == 1 {
        // Applicable methods are sorted from most to least specific: pick
        // the unique most specific one.
        let best = applicable
            .iter()
            .find(|m| {
                applicable
                    .iter()
                    .all(|o| m.at_least_as_specific(ct, o))
            })
            .ok_or_else(|| {
                CompileError::new(
                    "multimethod dispatch is ambiguous: no unique most specific method",
                    Span::DUMMY,
                )
            })?;
        return Ok(dispatch_call(ct, vars, best));
    }
    // For each specializer on the nth argument, the methods applicable when
    // that type is encountered, subtypes first.
    let ents = sort_on_arg(ct, applicable, n);
    // Generate dispatch code from right to left (superclass cases first).
    let (last_spec, last_subset) = ents.last().expect("non-empty applicable set");
    if last_spec.is_some() {
        return Err(CompileError::new(
            "a concrete generic function must define or inherit an \
             unspecialized multimethod (MultiJava completeness)",
            Span::DUMMY,
        ));
    }
    let mut ret = dispatch_arg(ct, vars, last_subset, n + 1)?;
    for (spec, subset) in ents.iter().rev().skip(1) {
        let Some(t) = spec else { continue };
        let test = Expr::synth(ExprKind::Instanceof(
            Box::new(var_ref(vars[n])),
            type_to_typename(ct, t),
        ));
        let then = dispatch_arg(ct, vars, subset, n + 1)?;
        ret = Expr::synth(ExprKind::Cond(
            Box::new(test),
            Box::new(then),
            Box::new(ret),
        ));
    }
    Ok(ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_lexer::sym;
    use maya_types::ClassInfo;

    fn hierarchy() -> (ClassTable, Type, Type, Type) {
        let ct = ClassTable::bootstrap();
        let obj = ct.by_fqcn_str("java.lang.Object").unwrap();
        let mut c = ClassInfo::new("C", false);
        c.superclass = Some(obj);
        let c = ct.declare(c).unwrap();
        let mut d = ClassInfo::new("D", false);
        d.superclass = Some(c);
        let d = ct.declare(d).unwrap();
        let mut e = ClassInfo::new("E", false);
        e.superclass = Some(d);
        let e = ct.declare(e).unwrap();
        (ct, Type::Class(c), Type::Class(d), Type::Class(e))
    }

    #[test]
    fn figure8_shape_single_argument() {
        let (ct, _c, d, _e) = hierarchy();
        let base = MultiMethod {
            target: Target::Mangled(sym("m$1")),
            specializers: vec![None],
        };
        let spec = MultiMethod {
            target: Target::Mangled(sym("m$2")),
            specializers: vec![Some(d)],
        };
        let expr = dispatch_arg(&ct, &[sym("c")], &[&base, &spec], 0).unwrap();
        let text = maya_ast::expr_str(&expr);
        // The paper's translation: c instanceof D ? m$2((D) c) : m$1(c)
        assert_eq!(text, "(c instanceof D) ? m$2((D) c) : m$1(c)");
    }

    #[test]
    fn deeper_hierarchies_test_subtypes_first() {
        let (ct, _c, d, e) = hierarchy();
        let base = MultiMethod {
            target: Target::Mangled(sym("m$1")),
            specializers: vec![None],
        };
        let md = MultiMethod {
            target: Target::Mangled(sym("m$2")),
            specializers: vec![Some(d)],
        };
        let me = MultiMethod {
            target: Target::Mangled(sym("m$3")),
            specializers: vec![Some(e)],
        };
        let expr = dispatch_arg(&ct, &[sym("x")], &[&base, &md, &me], 0).unwrap();
        let text = maya_ast::expr_str(&expr);
        let e_pos = text.find("instanceof E").expect("E tested");
        let d_pos = text.find("instanceof D").expect("D tested");
        assert!(e_pos < d_pos, "subtype must be tested first: {text}");
    }

    #[test]
    fn multi_argument_dispatch_nests() {
        let (ct, _c, d, _e) = hierarchy();
        let base = MultiMethod {
            target: Target::Mangled(sym("m$1")),
            specializers: vec![None, None],
        };
        let both = MultiMethod {
            target: Target::Mangled(sym("m$2")),
            specializers: vec![Some(d.clone()), Some(d)],
        };
        let expr = dispatch_arg(&ct, &[sym("a"), sym("b")], &[&base, &both], 0).unwrap();
        let text = maya_ast::expr_str(&expr);
        assert!(text.contains("a instanceof D"), "{text}");
        assert!(text.contains("b instanceof D"), "{text}");
    }

    #[test]
    fn missing_fallback_is_rejected() {
        let (ct, _c, d, e) = hierarchy();
        let md = MultiMethod {
            target: Target::Mangled(sym("m$1")),
            specializers: vec![Some(d)],
        };
        let me = MultiMethod {
            target: Target::Mangled(sym("m$2")),
            specializers: vec![Some(e)],
        };
        let base = MultiMethod {
            target: Target::Mangled(sym("m$3")),
            specializers: vec![None],
        };
        // Fine with a fallback…
        assert!(dispatch_arg(&ct, &[sym("x")], &[&md, &me, &base], 0).is_ok());
        // …rejected without one (two methods, so the n-advance shortcut
        // does not apply).
        assert!(dispatch_arg(&ct, &[sym("x")], &[&md, &me], 0).is_err());
    }
}
