//! MultiJava (Clifton et al., OOPSLA 2000) implemented as a Maya extension —
//! the paper's evaluation (§5).
//!
//! Two constructs are added to MayaJava:
//!
//! * **Multimethods** — a parameter may carry a runtime specializer,
//!   `int m(C@D c)`, narrowing the method's applicability to arguments that
//!   are dynamically `D`. Each virtual function becomes a generic function:
//!   the extension renames the multimethods to hidden siblings (`m$1`,
//!   `m$2`, …) and generates a dispatcher whose body is the `instanceof`
//!   chain of the paper's Figure 8 (`GenericFunction.dispatchArg`).
//! * **Open classes** — methods may be declared outside their receiver
//!   class (`int C.m(...) { ... }`); `this` is bound to the receiver.
//!
//! Substitution note (see DESIGN.md): the paper compiles external virtual
//! functions to separate *dispatcher classes* to preserve separate
//! compilation of `.class` files; our class table supports member
//! intercession directly, so external methods are added to the receiver
//! class — behaviourally identical under our interpreter.
//!
//! As in the paper, the extension relies on the dispatcher's *lexical
//! tie-breaking*: its Mayan on the ordinary method-declaration production is
//! imported after the built-in one and therefore examines every method
//! declaration, passing unspecialized ones through with `nextRewrite`.

mod dispatch_gen;
mod extension;

pub use dispatch_gen::{dispatch_arg, sort_on_arg, MultiMethod, Target};
pub use extension::{install, MultiJava};

/// A compiler with MultiJava registered (importable via
/// `use MultiJava;` or the `-use` option).
pub fn compiler_with_multijava() -> maya_core::Compiler {
    let c = maya_core::Compiler::new();
    install(&c);
    c
}
