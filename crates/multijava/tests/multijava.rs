//! E10: MultiJava end to end — the §5.2 example (Figure 8's translation),
//! runtime multiple dispatch, open classes, and the static checks.

use maya_ast::{normalize_generated_names, pretty_node};
use maya_multijava::compiler_with_multijava;

fn run(src: &str) -> String {
    let c = compiler_with_multijava();
    match c.compile_and_run("Main.maya", src, "Main") {
        Ok(out) => out,
        Err(e) => panic!("compile/run failed: {} @ {:?}", e.message, e.span),
    }
}

/// The §5.2 example, verbatim modulo our runner class.
const PAPER_EXAMPLE: &str = r#"
    use MultiJava;
    class C {
    }
    class D extends C {
        int m(C c) { return 0; }
        int m(C@D c) { return 1; }
    }
    class Main {
        static void main() {
            D d = new D();
            System.out.println(d.m(new C()));
            System.out.println(d.m(new D()));
        }
    }
"#;

#[test]
fn e10_paper_example_dispatches_on_runtime_type() {
    // "a multimethod: executes if c is dynamically a D"
    assert_eq!(run(PAPER_EXAMPLE), "0\n1\n");
}

#[test]
fn e10_generated_dispatcher_matches_figure8() {
    let c = compiler_with_multijava();
    c.add_source("Main.maya", PAPER_EXAMPLE).unwrap();
    c.compile().unwrap();
    let classes = c.classes();
    let d = classes.by_fqcn_str("D").unwrap();
    let info = classes.info(d);
    let info = info.borrow();
    // The class now has m$1, m$2, and the generated m.
    let names: Vec<&str> = info.methods.iter().map(|m| m.name.as_str()).collect();
    assert!(names.contains(&"m$1"), "{names:?}");
    assert!(names.contains(&"m$2"), "{names:?}");
    let disp = info
        .methods
        .iter()
        .find(|m| m.name.as_str() == "m")
        .expect("generated dispatcher");
    let body = disp.body.as_ref().unwrap().forced_node().unwrap();
    let text = normalize_generated_names(&pretty_node(&body));
    // Figure 8's output: return c instanceof D ? m$2((D) c) : m$1(c);
    assert_eq!(
        text.trim(),
        "return (c instanceof D) ? g$1((D) c) : g$2(c);"
    );
}

#[test]
fn three_level_hierarchy_tests_subtypes_first() {
    let out = run(r#"
        use MultiJava;
        class A { }
        class B extends A { }
        class Cc extends B { }
        class Disp {
            String what(A x) { return "A"; }
            String what(A@B x) { return "B"; }
            String what(A@Cc x) { return "C"; }
        }
        class Main {
            static void main() {
                Disp d = new Disp();
                System.out.println(d.what(new A()));
                System.out.println(d.what(new B()));
                System.out.println(d.what(new Cc()));
            }
        }
    "#);
    assert_eq!(out, "A\nB\nC\n");
}

#[test]
fn multiple_dispatch_on_two_arguments() {
    // The visitor-pattern killer: dispatch on both argument types.
    let out = run(r#"
        use MultiJava;
        class Shape { }
        class Circle extends Shape { }
        class Rect extends Shape { }
        class Intersect {
            String test(Shape a, Shape b) { return "s/s"; }
            String test(Shape@Circle a, Shape@Rect b) { return "c/r"; }
            String test(Shape@Rect a, Shape@Circle b) { return "r/c"; }
            String test(Shape@Circle a, Shape@Circle b) { return "c/c"; }
        }
        class Main {
            static void main() {
                Intersect i = new Intersect();
                Shape c = new Circle();
                Shape r = new Rect();
                System.out.println(i.test(c, r));
                System.out.println(i.test(r, c));
                System.out.println(i.test(c, c));
                System.out.println(i.test(r, r));
            }
        }
    "#);
    assert_eq!(out, "c/r\nr/c\nc/c\ns/s\n");
}

#[test]
fn open_classes_external_methods() {
    // §5.1: methods declared outside their receiver class; `this` is bound
    // to the receiver instance.
    let out = run(r#"
        use MultiJava;
        class Point {
            int x;
            int y;
            Point(int x0, int y0) { x = x0; y = y0; }
        }
        int Point.norm1() { return this.x + this.y; }
        String Point.show() { return "<" + this.x + "," + this.y + ">"; }
        class Main {
            static void main() {
                Point p = new Point(3, 4);
                System.out.println(p.norm1());
                System.out.println(p.show());
            }
        }
    "#);
    assert_eq!(out, "7\n<3,4>\n");
}

#[test]
fn completeness_check_rejects_missing_fallback() {
    let src = r#"
        use MultiJava;
        class A { }
        class B extends A { }
        class Disp {
            int m(A@B x) { return 1; }
        }
        class Main { static void main() { } }
    "#;
    let c = compiler_with_multijava();
    let err = c.compile_and_run("Main.maya", src, "Main").unwrap_err();
    assert!(err.message.contains("completeness"), "{}", err.message);
}

#[test]
fn invalid_specializer_rejected() {
    // The specializer must be a subclass of the declared parameter type.
    let src = r#"
        use MultiJava;
        class A { }
        class B { }
        class Disp {
            int m(A x) { return 0; }
            int m(A@B x) { return 1; }
        }
        class Main { static void main() { } }
    "#;
    let c = compiler_with_multijava();
    let err = c.compile_and_run("Main.maya", src, "Main").unwrap_err();
    assert!(err.message.contains("specializer"), "{}", err.message);
}

#[test]
fn duplicate_specializers_rejected() {
    let src = r#"
        use MultiJava;
        class A { }
        class B extends A { }
        class Disp {
            int m(A x) { return 0; }
            int m(A@B x) { return 1; }
            int m(A@B x) { return 2; }
        }
        class Main { static void main() { } }
    "#;
    let c = compiler_with_multijava();
    assert!(c.compile_and_run("Main.maya", src, "Main").is_err());
}

#[test]
fn multijava_requires_import() {
    let src = r#"
        class A { }
        class Disp {
            int m(A@A x) { return 1; }
        }
        class Main { static void main() { } }
    "#;
    let c = compiler_with_multijava();
    assert!(
        c.compile_and_run("Main.maya", src, "Main").is_err(),
        "@-specializers must be a syntax error without the import"
    );
}

#[test]
fn inherited_fallback_satisfies_completeness() {
    // "a concrete class must define or *inherit* multimethods for all
    // argument types": the subclass only adds a specialized case; the
    // fallback is inherited and reached via super.
    let out = run(r#"
        use MultiJava;
        class A { }
        class B extends A { }
        class Base {
            String m(A x) { return "base"; }
        }
        class Refined extends Base {
            String m(A@B x) { return "refined"; }
        }
        class Main {
            static void main() {
                Refined r = new Refined();
                System.out.println(r.m(new A()));
                System.out.println(r.m(new B()));
            }
        }
    "#);
    assert_eq!(out, "base\nrefined\n");
}
