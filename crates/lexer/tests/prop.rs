//! Property-style tests: scanning and token-tree construction.
//!
//! Inputs are generated with a small deterministic xorshift PRNG (the
//! container has no registry access, so `proptest` is unavailable); seeds
//! are fixed, so failures reproduce exactly.

use maya_lexer::{scan_tokens, stream_lex, SourceMap, TokenKind};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Tokens chosen so that adjacent pairs never merge under maximal munch
/// when separated by a space.
fn token_text(rng: &mut Rng) -> String {
    match rng.below(9) {
        0 => {
            let len = 1 + rng.below(8) as usize;
            let mut s = String::new();
            s.push((b'a' + rng.below(26) as u8) as char);
            for _ in 1..len {
                let c = match rng.below(3) {
                    0 => (b'a' + rng.below(26) as u8) as char,
                    1 => (b'0' + rng.below(10) as u8) as char,
                    _ => '_',
                };
                s.push(c);
            }
            s
        }
        1 => rng.below(100000).to_string(),
        2 => "\"str\"".to_owned(),
        3 => "+".to_owned(),
        4 => "==".to_owned(),
        5 => ">>>".to_owned(),
        6 => ";".to_owned(),
        7 => "class".to_owned(),
        _ => "instanceof".to_owned(),
    }
}

#[test]
fn rescanning_rendered_tokens_is_identity() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let n = rng.below(40) as usize;
        let tokens: Vec<String> = (0..n).map(|_| token_text(&mut rng)).collect();
        let src = tokens.join(" ");
        let mut sm = SourceMap::new();
        let f = sm.add_file("p", &src);
        let first = scan_tokens(&sm, f).unwrap();
        // Render and re-scan: kinds and texts must match.
        let rendered: Vec<String> = first.iter().map(|t| t.text.as_str().to_owned()).collect();
        let src2 = rendered.join(" ");
        let f2 = sm.add_file("p2", &src2);
        let second = scan_tokens(&sm, f2).unwrap();
        assert_eq!(first.len(), second.len(), "seed {seed}");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.kind, b.kind, "seed {seed}");
            assert_eq!(a.text, b.text, "seed {seed}");
        }
    }
}

#[test]
fn balanced_delimiters_always_tree() {
    // Build a nested balanced string like ( { [ x ] } ).
    fn build(depth: usize, width: usize) -> String {
        if depth == 0 {
            return "x".into();
        }
        let inner = build(depth - 1, width);
        let mut out = String::new();
        for d in ["(", "{", "["].iter().take(width) {
            let close = match *d {
                "(" => ")",
                "{" => "}",
                _ => "]",
            };
            out.push_str(d);
            out.push_str(&inner);
            out.push_str(close);
            out.push(' ');
        }
        out
    }
    for depth in 0..6 {
        for width in 1..4 {
            let src = build(depth, width);
            let mut sm = SourceMap::new();
            let f = sm.add_file("p", &src);
            let trees = stream_lex(&sm, f).unwrap();
            // Flatten back: token count must match the raw scan.
            let mut toks = Vec::new();
            for t in &trees {
                t.flatten_into(&mut toks);
            }
            let raw = scan_tokens(&sm, f).unwrap();
            assert_eq!(toks.len(), raw.len(), "depth {depth} width {width}");
        }
    }
}

#[test]
fn unbalanced_delimiters_always_error() {
    for n_open in 1..5 {
        let src = "( ".repeat(n_open);
        let mut sm = SourceMap::new();
        let f = sm.add_file("p", &src);
        assert!(stream_lex(&sm, f).is_err(), "n_open {n_open}");
    }
}

#[test]
fn keywords_never_scan_as_identifiers() {
    let mut words: Vec<String> = Vec::new();
    let mut rng = Rng::new(7);
    for _ in 0..200 {
        let len = 2 + rng.below(9) as usize;
        words.push(
            (0..len)
                .map(|_| (b'a' + rng.below(26) as u8) as char)
                .collect(),
        );
    }
    // Make sure actual keywords are exercised, not just random misses.
    for kw in ["class", "instanceof", "while", "return", "int", "new"] {
        words.push(kw.to_owned());
    }
    for word in &words {
        let mut sm = SourceMap::new();
        let f = sm.add_file("p", word);
        let toks = scan_tokens(&sm, f).unwrap();
        assert_eq!(toks.len(), 1, "word {word}");
        let is_kw = maya_lexer::keyword_kind(word).is_some();
        assert_eq!(toks[0].kind == TokenKind::Ident, !is_kw, "word {word}");
    }
}
