//! Property tests: scanning and token-tree construction.

use maya_lexer::{scan_tokens, stream_lex, SourceMap, TokenKind};
use proptest::prelude::*;

/// Tokens chosen so that adjacent pairs never merge under maximal munch
/// when separated by a space.
fn token_text() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}".prop_map(|s| s),
        (0u32..100000).prop_map(|n| n.to_string()),
        Just("\"str\"".to_owned()),
        Just("+".to_owned()),
        Just("==".to_owned()),
        Just(">>>".to_owned()),
        Just(";".to_owned()),
        Just("class".to_owned()),
        Just("instanceof".to_owned()),
    ]
}

proptest! {
    #[test]
    fn rescanning_rendered_tokens_is_identity(tokens in proptest::collection::vec(token_text(), 0..40)) {
        let src = tokens.join(" ");
        let mut sm = SourceMap::new();
        let f = sm.add_file("p", &src);
        let first = scan_tokens(&sm, f).unwrap();
        // Render and re-scan: kinds and texts must match.
        let rendered: Vec<String> = first.iter().map(|t| t.text.as_str().to_owned()).collect();
        let src2 = rendered.join(" ");
        let f2 = sm.add_file("p2", &src2);
        let second = scan_tokens(&sm, f2).unwrap();
        prop_assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.text, b.text);
        }
    }

    #[test]
    fn balanced_delimiters_always_tree(
        depth in 0usize..6,
        width in 1usize..4,
    ) {
        // Build a nested balanced string like ( { [ x ] } ).
        fn build(depth: usize, width: usize) -> String {
            if depth == 0 {
                return "x".into();
            }
            let inner = build(depth - 1, width);
            let mut out = String::new();
            for d in ["(", "{", "["].iter().take(width) {
                let close = match *d { "(" => ")", "{" => "}", _ => "]" };
                out.push_str(d);
                out.push_str(&inner);
                out.push_str(close);
                out.push(' ');
            }
            out
        }
        let src = build(depth, width);
        let mut sm = SourceMap::new();
        let f = sm.add_file("p", &src);
        let trees = stream_lex(&sm, f).unwrap();
        // Flatten back: token count must match the raw scan.
        let mut toks = Vec::new();
        for t in &trees {
            t.flatten_into(&mut toks);
        }
        let raw = scan_tokens(&sm, f).unwrap();
        prop_assert_eq!(toks.len(), raw.len());
    }

    #[test]
    fn unbalanced_delimiters_always_error(n_open in 1usize..5) {
        let src = "( ".repeat(n_open);
        let mut sm = SourceMap::new();
        let f = sm.add_file("p", &src);
        prop_assert!(stream_lex(&sm, f).is_err());
    }

    #[test]
    fn keywords_never_scan_as_identifiers(word in "[a-z]{2,10}") {
        let mut sm = SourceMap::new();
        let f = sm.add_file("p", &word);
        let toks = scan_tokens(&sm, f).unwrap();
        prop_assert_eq!(toks.len(), 1);
        let is_kw = maya_lexer::keyword_kind(&word).is_some();
        prop_assert_eq!(toks[0].kind == TokenKind::Ident, !is_kw);
    }
}
