//! Tokens of the MayaJava language.
//!
//! `TokenKind` doubles as the *terminal alphabet* of the extensible grammar
//! (crate `maya-grammar`): every keyword and punctuator is its own kind, and
//! identifiers and literals are single kinds whose concrete text is carried in
//! [`Token::text`]. Mayans can dispatch on that text — this is how `foreach`
//! works without being a reserved word (paper §3.2).

use crate::{Span, Symbol};
use std::fmt;

/// The kind of a token. This is the terminal alphabet of the base grammar.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[non_exhaustive]
pub enum TokenKind {
    // Identifiers and literals ------------------------------------------------
    Ident,
    IntLit,
    LongLit,
    FloatLit,
    DoubleLit,
    CharLit,
    StringLit,

    // Keywords ---------------------------------------------------------------
    KwAbstract,
    KwBoolean,
    KwBreak,
    KwByte,
    KwCase,
    KwCatch,
    KwChar,
    KwClass,
    KwConst,
    KwContinue,
    KwDefault,
    KwDo,
    KwDouble,
    KwElse,
    KwExtends,
    KwFalse,
    KwFinal,
    KwFinally,
    KwFloat,
    KwFor,
    KwGoto,
    KwIf,
    KwImplements,
    KwImport,
    KwInstanceof,
    KwInt,
    KwInterface,
    KwLong,
    KwNative,
    KwNew,
    KwNull,
    KwPackage,
    KwPrivate,
    KwProtected,
    KwPublic,
    KwReturn,
    KwShort,
    KwStatic,
    KwSuper,
    KwSwitch,
    KwSynchronized,
    KwSyntax,
    KwThis,
    KwThrow,
    KwThrows,
    KwTransient,
    KwTrue,
    KwTry,
    KwUse,
    KwVoid,
    KwVolatile,
    KwWhile,

    // Punctuation ------------------------------------------------------------
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBrack,
    RBrack,
    Semi,
    Comma,
    Dot,
    Assign,     // =
    Lt,         // <
    Gt,         // >
    Bang,       // !
    Tilde,      // ~
    Question,   // ?
    Colon,      // :
    EqEq,       // ==
    Le,         // <=
    Ge,         // >=
    Ne,         // !=
    AndAnd,     // &&
    OrOr,       // ||
    PlusPlus,   // ++
    MinusMinus, // --
    Plus,
    Minus,
    Star,
    Slash,
    Amp,     // &
    Pipe,    // |
    Caret,   // ^
    Percent, // %
    Shl,     // <<
    Shr,     // >>
    Ushr,    // >>>
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    AmpEq,
    PipeEq,
    CaretEq,
    PercentEq,
    ShlEq,
    ShrEq,
    UshrEq,
    At,        // @   (MultiJava parameter specializers)
    Dollar,    // $   (template unquote)
    Backslash, // \   (escaped literal tokens in syntax patterns)

    /// End of a token stream / token tree.
    Eof,
}

impl TokenKind {
    /// True for keyword kinds.
    pub fn is_keyword(self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            KwAbstract
                | KwBoolean
                | KwBreak
                | KwByte
                | KwCase
                | KwCatch
                | KwChar
                | KwClass
                | KwConst
                | KwContinue
                | KwDefault
                | KwDo
                | KwDouble
                | KwElse
                | KwExtends
                | KwFalse
                | KwFinal
                | KwFinally
                | KwFloat
                | KwFor
                | KwGoto
                | KwIf
                | KwImplements
                | KwImport
                | KwInstanceof
                | KwInt
                | KwInterface
                | KwLong
                | KwNative
                | KwNew
                | KwNull
                | KwPackage
                | KwPrivate
                | KwProtected
                | KwPublic
                | KwReturn
                | KwShort
                | KwStatic
                | KwSuper
                | KwSwitch
                | KwSynchronized
                | KwSyntax
                | KwThis
                | KwThrow
                | KwThrows
                | KwTransient
                | KwTrue
                | KwTry
                | KwUse
                | KwVoid
                | KwVolatile
                | KwWhile
        )
    }

    /// True for literal kinds (numbers, chars, strings — not `true`/`false`/`null`).
    pub fn is_literal(self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            IntLit | LongLit | FloatLit | DoubleLit | CharLit | StringLit
        )
    }

    /// A short human-readable name used in diagnostics and grammar dumps.
    pub fn name(self) -> &'static str {
        use TokenKind::*;
        match self {
            Ident => "identifier",
            IntLit => "int-literal",
            LongLit => "long-literal",
            FloatLit => "float-literal",
            DoubleLit => "double-literal",
            CharLit => "char-literal",
            StringLit => "string-literal",
            KwAbstract => "abstract",
            KwBoolean => "boolean",
            KwBreak => "break",
            KwByte => "byte",
            KwCase => "case",
            KwCatch => "catch",
            KwChar => "char",
            KwClass => "class",
            KwConst => "const",
            KwContinue => "continue",
            KwDefault => "default",
            KwDo => "do",
            KwDouble => "double",
            KwElse => "else",
            KwExtends => "extends",
            KwFalse => "false",
            KwFinal => "final",
            KwFinally => "finally",
            KwFloat => "float",
            KwFor => "for",
            KwGoto => "goto",
            KwIf => "if",
            KwImplements => "implements",
            KwImport => "import",
            KwInstanceof => "instanceof",
            KwInt => "int",
            KwInterface => "interface",
            KwLong => "long",
            KwNative => "native",
            KwNew => "new",
            KwNull => "null",
            KwPackage => "package",
            KwPrivate => "private",
            KwProtected => "protected",
            KwPublic => "public",
            KwReturn => "return",
            KwShort => "short",
            KwStatic => "static",
            KwSuper => "super",
            KwSwitch => "switch",
            KwSynchronized => "synchronized",
            KwSyntax => "syntax",
            KwThis => "this",
            KwThrow => "throw",
            KwThrows => "throws",
            KwTransient => "transient",
            KwTrue => "true",
            KwTry => "try",
            KwUse => "use",
            KwVoid => "void",
            KwVolatile => "volatile",
            KwWhile => "while",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBrack => "[",
            RBrack => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Assign => "=",
            Lt => "<",
            Gt => ">",
            Bang => "!",
            Tilde => "~",
            Question => "?",
            Colon => ":",
            EqEq => "==",
            Le => "<=",
            Ge => ">=",
            Ne => "!=",
            AndAnd => "&&",
            OrOr => "||",
            PlusPlus => "++",
            MinusMinus => "--",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Percent => "%",
            Shl => "<<",
            Shr => ">>",
            Ushr => ">>>",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            PercentEq => "%=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            UshrEq => ">>>=",
            At => "@",
            Dollar => "$",
            Backslash => "\\",
            Eof => "<eof>",
        }
    }

    /// Every kind, in declaration order. The index of a kind in this table
    /// is its [`TokenKind::code`].
    pub const ALL: [TokenKind; 109] = {
        use TokenKind::*;
        [
            Ident, IntLit, LongLit, FloatLit, DoubleLit, CharLit, StringLit, KwAbstract,
            KwBoolean, KwBreak, KwByte, KwCase, KwCatch, KwChar, KwClass, KwConst, KwContinue,
            KwDefault, KwDo, KwDouble, KwElse, KwExtends, KwFalse, KwFinal, KwFinally, KwFloat,
            KwFor, KwGoto, KwIf, KwImplements, KwImport, KwInstanceof, KwInt, KwInterface,
            KwLong, KwNative, KwNew, KwNull, KwPackage, KwPrivate, KwProtected, KwPublic,
            KwReturn, KwShort, KwStatic, KwSuper, KwSwitch, KwSynchronized, KwSyntax, KwThis,
            KwThrow, KwThrows, KwTransient, KwTrue, KwTry, KwUse, KwVoid, KwVolatile, KwWhile,
            LParen, RParen, LBrace, RBrace, LBrack, RBrack, Semi, Comma, Dot, Assign, Lt, Gt,
            Bang, Tilde, Question, Colon, EqEq, Le, Ge, Ne, AndAnd, OrOr, PlusPlus, MinusMinus,
            Plus, Minus, Star, Slash, Amp, Pipe, Caret, Percent, Shl, Shr, Ushr, PlusEq,
            MinusEq, StarEq, SlashEq, AmpEq, PipeEq, CaretEq, PercentEq, ShlEq, ShrEq, UshrEq,
            At, Dollar, Backslash, Eof,
        ]
    };

    /// A dense, stable byte code for this kind (its declaration-order
    /// discriminant), used by the persistent artifact store's token-tree
    /// codec. Inserting or reordering variants renumbers codes — any such
    /// change must bump the store's lex payload version so stale entries
    /// decode as misses.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The kind for a byte code produced by [`TokenKind::code`], or `None`
    /// for an out-of-range byte (a stale or corrupt cache entry).
    pub fn from_code(code: u8) -> Option<TokenKind> {
        TokenKind::ALL.get(code as usize).copied()
    }
}

/// Maps an identifier's text to its keyword kind, if it is a keyword.
///
/// ```
/// use maya_lexer::{keyword_kind, TokenKind};
/// assert_eq!(keyword_kind("class"), Some(TokenKind::KwClass));
/// assert_eq!(keyword_kind("foreach"), None); // not reserved!
/// ```
pub fn keyword_kind(text: &str) -> Option<TokenKind> {
    use TokenKind::*;
    Some(match text {
        "abstract" => KwAbstract,
        "boolean" => KwBoolean,
        "break" => KwBreak,
        "byte" => KwByte,
        "case" => KwCase,
        "catch" => KwCatch,
        "char" => KwChar,
        "class" => KwClass,
        "const" => KwConst,
        "continue" => KwContinue,
        "default" => KwDefault,
        "do" => KwDo,
        "double" => KwDouble,
        "else" => KwElse,
        "extends" => KwExtends,
        "false" => KwFalse,
        "final" => KwFinal,
        "finally" => KwFinally,
        "float" => KwFloat,
        "for" => KwFor,
        "goto" => KwGoto,
        "if" => KwIf,
        "implements" => KwImplements,
        "import" => KwImport,
        "instanceof" => KwInstanceof,
        "int" => KwInt,
        "interface" => KwInterface,
        "long" => KwLong,
        "native" => KwNative,
        "new" => KwNew,
        "null" => KwNull,
        "package" => KwPackage,
        "private" => KwPrivate,
        "protected" => KwProtected,
        "public" => KwPublic,
        "return" => KwReturn,
        "short" => KwShort,
        "static" => KwStatic,
        "super" => KwSuper,
        "switch" => KwSwitch,
        "synchronized" => KwSynchronized,
        "syntax" => KwSyntax,
        "this" => KwThis,
        "throw" => KwThrow,
        "throws" => KwThrows,
        "transient" => KwTransient,
        "true" => KwTrue,
        "try" => KwTry,
        "use" => KwUse,
        "void" => KwVoid,
        "volatile" => KwVolatile,
        "while" => KwWhile,
        _ => return None,
    })
}

/// One token: a kind, the interned lexeme, and a source span.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub text: Symbol,
    pub span: Span,
}

impl Token {
    /// Builds a token.
    pub fn new(kind: TokenKind, text: Symbol, span: Span) -> Token {
        Token { kind, text, span }
    }

    /// Builds a synthesized token (dummy span) from a kind and text.
    pub fn synth(kind: TokenKind, text: Symbol) -> Token {
        Token::new(kind, text, Span::DUMMY)
    }

    /// True if this token is the identifier `name` (not a keyword).
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text.as_str() == name
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym;

    #[test]
    fn keyword_lookup() {
        assert_eq!(keyword_kind("instanceof"), Some(TokenKind::KwInstanceof));
        assert_eq!(keyword_kind("syntax"), Some(TokenKind::KwSyntax));
        assert_eq!(keyword_kind("use"), Some(TokenKind::KwUse));
        assert_eq!(keyword_kind("foreach"), None);
        assert_eq!(keyword_kind(""), None);
    }

    #[test]
    fn classification() {
        assert!(TokenKind::KwClass.is_keyword());
        assert!(!TokenKind::Ident.is_keyword());
        assert!(TokenKind::IntLit.is_literal());
        assert!(!TokenKind::KwTrue.is_literal());
    }

    #[test]
    fn token_display_and_ident_check() {
        let t = Token::synth(TokenKind::Ident, sym("foreach"));
        assert!(t.is_ident("foreach"));
        assert!(!t.is_ident("for"));
        assert_eq!(format!("{t}"), "foreach");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TokenKind::Ushr.name(), ">>>");
        assert_eq!(TokenKind::KwInstanceof.name(), "instanceof");
        assert_eq!(TokenKind::Ident.name(), "identifier");
    }

    #[test]
    fn codes_round_trip_every_kind() {
        for (i, k) in TokenKind::ALL.iter().enumerate() {
            assert_eq!(k.code() as usize, i, "{k:?} out of order in ALL");
            assert_eq!(TokenKind::from_code(k.code()), Some(*k));
        }
        assert_eq!(TokenKind::from_code(TokenKind::ALL.len() as u8), None);
        assert_eq!(TokenKind::from_code(u8::MAX), None);
    }
}
