//! The raw scanner: source text → flat token stream.
//!
//! Comments (`//…` and `/*…*/`) and whitespace are discarded. Maximal munch
//! applies to operators (`>>>=` before `>>>` before `>>` before `>`).

use crate::{sym, FileId, SourceMap, Span, Token, TokenKind};
use std::fmt;

/// An error produced while scanning or while building token trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub span: Span,
}

impl LexError {
    pub(crate) fn new(message: impl Into<String>, span: Span) -> LexError {
        LexError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LexError {}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    file: FileId,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn span_from(&self, lo: usize) -> Span {
        Span::new(self.file, lo as u32, self.pos as u32)
    }

    fn error(&self, msg: impl Into<String>, lo: usize) -> LexError {
        LexError::new(msg, self.span_from(lo))
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' | 0x0c => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let lo = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(self.error("unterminated block comment", lo));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn scan_ident(&mut self) -> Token {
        let lo = self.pos;
        while is_ident_continue(self.peek()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos]).expect("ascii ident");
        let kind = crate::keyword_kind(text).unwrap_or(TokenKind::Ident);
        Token::new(kind, sym(text), self.span_from(lo))
    }

    fn scan_number(&mut self) -> Result<Token, LexError> {
        let lo = self.pos;
        let mut is_float = false;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.pos += 2;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
        } else {
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
            if self.peek() == b'.' && self.peek2().is_ascii_digit() {
                is_float = true;
                self.pos += 1;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), b'e' | b'E')
                && (self.peek2().is_ascii_digit()
                    || (matches!(self.peek2(), b'+' | b'-') && self.peek3().is_ascii_digit()))
            {
                is_float = true;
                self.pos += 2;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            }
        }
        let kind = match self.peek() {
            b'l' | b'L' if !is_float => {
                self.pos += 1;
                TokenKind::LongLit
            }
            b'f' | b'F' => {
                self.pos += 1;
                TokenKind::FloatLit
            }
            b'd' | b'D' => {
                self.pos += 1;
                TokenKind::DoubleLit
            }
            _ if is_float => TokenKind::DoubleLit,
            _ => TokenKind::IntLit,
        };
        let text = std::str::from_utf8(&self.src[lo..self.pos])
            .map_err(|_| self.error("invalid bytes in numeric literal", lo))?;
        Ok(Token::new(kind, sym(text), self.span_from(lo)))
    }

    fn scan_quoted(&mut self, quote: u8, kind: TokenKind) -> Result<Token, LexError> {
        let lo = self.pos;
        self.pos += 1; // opening quote
        loop {
            match self.peek() {
                0 => return Err(self.error("unterminated literal", lo)),
                b'\n' => return Err(self.error("newline in literal", lo)),
                b'\\' => {
                    self.pos += 2;
                }
                c if c == quote => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.src[lo..self.pos])
            .map_err(|_| self.error("invalid bytes in literal", lo))?;
        Ok(Token::new(kind, sym(text), self.span_from(lo)))
    }

    fn scan_operator(&mut self) -> Result<Token, LexError> {
        use TokenKind::*;
        let lo = self.pos;
        let c = self.bump();
        let two = |s: &mut Self, with: u8, yes: TokenKind, no: TokenKind| {
            if s.peek() == with {
                s.pos += 1;
                yes
            } else {
                no
            }
        };
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBrack,
            b']' => RBrack,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'@' => At,
            b'$' => Dollar,
            b'\\' => Backslash,
            b'=' => two(self, b'=', EqEq, Assign),
            b'!' => two(self, b'=', Ne, Bang),
            b'*' => two(self, b'=', StarEq, Star),
            b'/' => two(self, b'=', SlashEq, Slash),
            b'%' => two(self, b'=', PercentEq, Percent),
            b'^' => two(self, b'=', CaretEq, Caret),
            b'+' => {
                if self.peek() == b'+' {
                    self.pos += 1;
                    PlusPlus
                } else {
                    two(self, b'=', PlusEq, Plus)
                }
            }
            b'-' => {
                if self.peek() == b'-' {
                    self.pos += 1;
                    MinusMinus
                } else {
                    two(self, b'=', MinusEq, Minus)
                }
            }
            b'&' => {
                if self.peek() == b'&' {
                    self.pos += 1;
                    AndAnd
                } else {
                    two(self, b'=', AmpEq, Amp)
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.pos += 1;
                    OrOr
                } else {
                    two(self, b'=', PipeEq, Pipe)
                }
            }
            b'<' => {
                if self.peek() == b'<' {
                    self.pos += 1;
                    two(self, b'=', ShlEq, Shl)
                } else {
                    two(self, b'=', Le, Lt)
                }
            }
            b'>' => {
                if self.peek() == b'>' {
                    self.pos += 1;
                    if self.peek() == b'>' {
                        self.pos += 1;
                        two(self, b'=', UshrEq, Ushr)
                    } else {
                        two(self, b'=', ShrEq, Shr)
                    }
                } else {
                    two(self, b'=', Ge, Gt)
                }
            }
            other => {
                return Err(self.error(
                    format!("unexpected character {:?}", other as char),
                    lo,
                ))
            }
        };
        let text = std::str::from_utf8(&self.src[lo..self.pos]).expect("ascii operator");
        Ok(Token::new(kind, sym(text), self.span_from(lo)))
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Scans a registered file into a flat token vector (no EOF token appended).
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated comments/literals and characters
/// outside the MayaJava alphabet.
pub fn scan_tokens(sm: &SourceMap, file: FileId) -> Result<Vec<Token>, LexError> {
    let _p = maya_telemetry::phase(maya_telemetry::Phase::Lex);
    let src = sm.file(file).src.clone();
    let mut scanner = Scanner {
        src: src.as_bytes(),
        pos: 0,
        file,
    };
    let mut out = Vec::new();
    loop {
        scanner.skip_trivia()?;
        if scanner.pos >= scanner.src.len() {
            maya_telemetry::count(maya_telemetry::Counter::FilesLexed);
            maya_telemetry::add(maya_telemetry::Counter::TokensLexed, out.len() as u64);
            return Ok(out);
        }
        let c = scanner.peek();
        let tok = if is_ident_start(c) {
            scanner.scan_ident()
        } else if c.is_ascii_digit() {
            scanner.scan_number()?
        } else if c == b'"' {
            scanner.scan_quoted(b'"', TokenKind::StringLit)?
        } else if c == b'\'' {
            scanner.scan_quoted(b'\'', TokenKind::CharLit)?
        } else {
            scanner.scan_operator()?
        };
        out.push(tok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceMap;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t", src);
        scan_tokens(&sm, f).unwrap().iter().map(|t| t.kind).collect()
    }

    #[test]
    fn scans_keywords_and_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("class Foo extends Bar"),
            vec![KwClass, Ident, KwExtends, Ident]
        );
    }

    #[test]
    fn maximal_munch_shifts() {
        use TokenKind::*;
        assert_eq!(kinds(">>>= >>> >>= >> >= >"), vec![UshrEq, Ushr, ShrEq, Shr, Ge, Gt]);
        assert_eq!(kinds("<<= << <= <"), vec![ShlEq, Shl, Le, Lt]);
        assert_eq!(kinds("++ += +"), vec![PlusPlus, PlusEq, Plus]);
        assert_eq!(kinds("== ="), vec![EqEq, Assign]);
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("0 42 42L 3.5 3.5f 1e9 2.5e-3 0xFF 7d"),
            vec![IntLit, IntLit, LongLit, DoubleLit, FloatLit, DoubleLit, DoubleLit, IntLit, DoubleLit]
        );
    }

    #[test]
    fn strings_chars_and_escapes() {
        use TokenKind::*;
        assert_eq!(kinds(r#""a b" 'x' '\n' "say \"hi\"""#), vec![StringLit, CharLit, CharLit, StringLit]);
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(kinds("a // line\n b /* block\n more */ c").len(), 3);
    }

    #[test]
    fn dollar_at_backslash() {
        use TokenKind::*;
        assert_eq!(kinds("$x @D \\."), vec![Dollar, Ident, At, Ident, Backslash, Dot]);
    }

    #[test]
    fn errors() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t", "\"oops");
        assert!(scan_tokens(&sm, f).is_err());
        let f = sm.add_file("t2", "/* never closed");
        assert!(scan_tokens(&sm, f).is_err());
        let f = sm.add_file("t3", "a # b");
        assert!(scan_tokens(&sm, f).is_err());
    }

    #[test]
    fn spans_cover_lexemes() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("t", "foo bar");
        let toks = scan_tokens(&sm, f).unwrap();
        assert_eq!(sm.snippet(toks[0].span), Some("foo"));
        assert_eq!(sm.snippet(toks[1].span), Some("bar"));
    }
}
