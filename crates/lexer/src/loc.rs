//! Source locations: files, byte spans, and line/column resolution.

use std::fmt;
use std::sync::Arc;

/// Identifies a file registered in a [`SourceMap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// A byte range within a single source file.
///
/// Spans are half-open: `lo..hi`. The [`Span::DUMMY`] span is used for
/// synthesized syntax (e.g. nodes produced by Mayans or templates).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Span {
    pub file: FileId,
    pub lo: u32,
    pub hi: u32,
}

impl Span {
    /// A span for generated code with no source counterpart.
    pub const DUMMY: Span = Span {
        file: FileId(u32::MAX),
        lo: 0,
        hi: 0,
    };

    /// Builds a span within `file`.
    pub fn new(file: FileId, lo: u32, hi: u32) -> Span {
        Span { file, lo, hi }
    }

    /// Returns true for spans of generated (non-source) syntax.
    pub fn is_dummy(self) -> bool {
        self.file == FileId(u32::MAX)
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Dummy spans are absorbing on the side they appear: joining with a dummy
    /// returns the other span.
    pub fn to(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() || self.file != other.file {
            return self;
        }
        Span::new(self.file, self.lo.min(other.lo), self.hi.max(other.hi))
    }
}

impl Default for Span {
    fn default() -> Span {
        Span::DUMMY
    }
}

/// A 1-based line/column pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

/// One registered source file.
#[derive(Debug)]
pub struct SourceFile {
    pub name: String,
    pub src: Arc<str>,
    line_starts: Vec<u32>,
}

impl SourceFile {
    fn new(name: &str, src: &str) -> SourceFile {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            name: name.to_owned(),
            src: Arc::from(src),
            line_starts,
        }
    }

    /// Resolves a byte offset to a line/column pair (both 1-based).
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }
}

/// The set of source files known to one compilation.
///
/// # Example
///
/// ```
/// use maya_lexer::SourceMap;
/// let mut sm = SourceMap::new();
/// let f = sm.add_file("A.maya", "class A {\n}\n");
/// assert_eq!(sm.file(f).line_col(10).line, 2);
/// ```
#[derive(Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    pub fn new() -> SourceMap {
        SourceMap { files: Vec::new() }
    }

    /// Registers a file and returns its id.
    pub fn add_file(&mut self, name: &str, src: &str) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile::new(name, src));
        id
    }

    /// Returns the file with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this map.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0 as usize]
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Renders a span as `file:line:col` for diagnostics.
    pub fn describe(&self, span: Span) -> String {
        if span.is_dummy() {
            return "<generated>".to_owned();
        }
        let f = self.file(span.file);
        let lc = f.line_col(span.lo);
        format!("{}:{}:{}", f.name, lc.line, lc.col)
    }

    /// The source text covered by `span`, or `None` for dummy spans.
    pub fn snippet(&self, span: Span) -> Option<&str> {
        if span.is_dummy() {
            return None;
        }
        let f = self.file(span.file);
        f.src.get(span.lo as usize..span.hi as usize)
    }
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_resolution() {
        let f = SourceFile::new("t", "ab\ncd\n\nx");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(f.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_col(7), LineCol { line: 4, col: 1 });
    }

    #[test]
    fn span_join() {
        let a = Span::new(FileId(0), 2, 5);
        let b = Span::new(FileId(0), 7, 9);
        assert_eq!(a.to(b), Span::new(FileId(0), 2, 9));
        assert_eq!(Span::DUMMY.to(b), b);
        assert_eq!(a.to(Span::DUMMY), a);
    }

    #[test]
    fn describe_and_snippet() {
        let mut sm = SourceMap::new();
        let f = sm.add_file("x.maya", "hello\nworld");
        let sp = Span::new(f, 6, 11);
        assert_eq!(sm.describe(sp), "x.maya:2:1");
        assert_eq!(sm.snippet(sp), Some("world"));
        assert_eq!(sm.describe(Span::DUMMY), "<generated>");
    }
}
