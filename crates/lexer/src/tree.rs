//! The stream lexer: flat tokens → *token trees*.
//!
//! Following the paper (§4), a subtree is created for each pair of matching
//! delimiters. The resulting [`DelimTree`]s are the units of lazy parsing: a
//! `BraceTree` can be stored unparsed and forced later under whatever grammar
//! and scope are current at that point.

use crate::{scan_tokens, LexError, SourceMap, Span, Token, TokenKind};
use std::fmt;
use std::rc::Rc;

/// The three delimiter shapes that form subtrees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Delim {
    Paren,
    Brace,
    Brack,
}

impl Delim {
    /// The opening token kind.
    pub fn open_kind(self) -> TokenKind {
        match self {
            Delim::Paren => TokenKind::LParen,
            Delim::Brace => TokenKind::LBrace,
            Delim::Brack => TokenKind::LBrack,
        }
    }

    /// The closing token kind.
    pub fn close_kind(self) -> TokenKind {
        match self {
            Delim::Paren => TokenKind::RParen,
            Delim::Brace => TokenKind::RBrace,
            Delim::Brack => TokenKind::RBrack,
        }
    }

    /// Grammar-facing name, as used in the paper (`ParenTree` etc.).
    pub fn tree_name(self) -> &'static str {
        match self {
            Delim::Paren => "ParenTree",
            Delim::Brace => "BraceTree",
            Delim::Brack => "BrackTree",
        }
    }
}

/// A matched-delimiter subtree: the paper's `ParenTree` / `BraceTree` /
/// `BrackTree`. The contents are shared (`Rc`) so that lazy thunks can hold
/// them cheaply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DelimTree {
    pub delim: Delim,
    pub trees: Rc<Vec<TokenTree>>,
    pub open: Span,
    pub close: Span,
}

impl DelimTree {
    /// Builds a tree from parts.
    pub fn new(delim: Delim, trees: Vec<TokenTree>, open: Span, close: Span) -> DelimTree {
        DelimTree {
            delim,
            trees: Rc::new(trees),
            open,
            close,
        }
    }

    /// Builds a synthesized tree (dummy spans).
    pub fn synth(delim: Delim, trees: Vec<TokenTree>) -> DelimTree {
        DelimTree::new(delim, trees, Span::DUMMY, Span::DUMMY)
    }

    /// The span from the opening to the closing delimiter.
    pub fn span(&self) -> Span {
        self.open.to(self.close)
    }

    /// True when the tree has no contents (e.g. the `[]` of an array type).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// One element of the stream lexer's output: a token or a delimiter subtree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenTree {
    Token(Token),
    Delim(DelimTree),
}

impl TokenTree {
    /// The source span of this tree.
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Token(t) => t.span,
            TokenTree::Delim(d) => d.span(),
        }
    }

    /// The token, if this is a leaf.
    pub fn as_token(&self) -> Option<&Token> {
        match self {
            TokenTree::Token(t) => Some(t),
            TokenTree::Delim(_) => None,
        }
    }

    /// The subtree, if this is a delimiter tree.
    pub fn as_delim(&self) -> Option<&DelimTree> {
        match self {
            TokenTree::Token(_) => None,
            TokenTree::Delim(d) => Some(d),
        }
    }

    /// Flattens the tree back into tokens, re-inserting delimiters.
    pub fn flatten_into(&self, out: &mut Vec<Token>) {
        match self {
            TokenTree::Token(t) => out.push(*t),
            TokenTree::Delim(d) => {
                out.push(Token::new(
                    d.delim.open_kind(),
                    crate::sym(TokenKind::name(d.delim.open_kind())),
                    d.open,
                ));
                for t in d.trees.iter() {
                    t.flatten_into(out);
                }
                out.push(Token::new(
                    d.delim.close_kind(),
                    crate::sym(TokenKind::name(d.delim.close_kind())),
                    d.close,
                ));
            }
        }
    }
}

impl fmt::Display for DelimTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", TokenKind::name(self.delim.open_kind()))?;
        for (i, t) in self.trees.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "{}", TokenKind::name(self.delim.close_kind()))
    }
}

impl fmt::Display for TokenTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenTree::Token(t) => f.write_str(t.text.as_str()),
            TokenTree::Delim(d) => write!(f, "{d}"),
        }
    }
}

fn delim_of_open(kind: TokenKind) -> Option<Delim> {
    match kind {
        TokenKind::LParen => Some(Delim::Paren),
        TokenKind::LBrace => Some(Delim::Brace),
        TokenKind::LBrack => Some(Delim::Brack),
        _ => None,
    }
}

fn delim_of_close(kind: TokenKind) -> Option<Delim> {
    match kind {
        TokenKind::RParen => Some(Delim::Paren),
        TokenKind::RBrace => Some(Delim::Brace),
        TokenKind::RBrack => Some(Delim::Brack),
        _ => None,
    }
}

/// A `Send`-safe token tree, as produced by parallel front-end workers.
///
/// [`TokenTree`] shares subtree contents via `Rc` and cannot cross threads;
/// workers build `SendTree`s instead, and the main thread converts them with
/// [`SendTree::into_tree`] (one pass, preserving structure and spans
/// exactly).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SendTree {
    Token(Token),
    Delim {
        delim: Delim,
        trees: Vec<SendTree>,
        open: Span,
        close: Span,
    },
}

impl SendTree {
    /// Converts into the `Rc`-shared form used by the rest of the pipeline.
    pub fn into_tree(self) -> TokenTree {
        match self {
            SendTree::Token(t) => TokenTree::Token(t),
            SendTree::Delim {
                delim,
                trees,
                open,
                close,
            } => TokenTree::Delim(DelimTree::new(
                delim,
                trees.into_iter().map(SendTree::into_tree).collect(),
                open,
                close,
            )),
        }
    }
}

/// Builds `Send`-safe token trees from a flat token slice. This is the one
/// delimiter-folding algorithm; [`build_trees`] is a conversion over it.
///
/// # Errors
///
/// Reports mismatched, unexpected, or unclosed delimiters.
pub fn build_send_trees(tokens: &[Token]) -> Result<Vec<SendTree>, LexError> {
    let _p = maya_telemetry::phase(maya_telemetry::Phase::Lex);
    let mut subtrees: u64 = 0;
    // Each stack frame is an open delimiter plus the trees accumulated inside.
    let mut stack: Vec<(Delim, Span, Vec<SendTree>)> = Vec::new();
    let mut top: Vec<SendTree> = Vec::new();
    for tok in tokens {
        if let Some(d) = delim_of_open(tok.kind) {
            stack.push((d, tok.span, std::mem::take(&mut top)));
        } else if let Some(d) = delim_of_close(tok.kind) {
            match stack.pop() {
                Some((open_d, open_span, outer)) if open_d == d => {
                    let inner = std::mem::replace(&mut top, outer);
                    subtrees += 1;
                    top.push(SendTree::Delim {
                        delim: d,
                        trees: inner,
                        open: open_span,
                        close: tok.span,
                    });
                }
                Some((open_d, open_span, _)) => {
                    return Err(LexError::new(
                        format!(
                            "mismatched delimiter: `{}` opened but `{}` found",
                            TokenKind::name(open_d.open_kind()),
                            tok.text
                        ),
                        open_span.to(tok.span),
                    ));
                }
                None => {
                    return Err(LexError::new(
                        format!("unexpected closing `{}`", tok.text),
                        tok.span,
                    ));
                }
            }
        } else {
            top.push(SendTree::Token(*tok));
        }
    }
    if let Some((d, span, _)) = stack.pop() {
        return Err(LexError::new(
            format!("unclosed `{}`", TokenKind::name(d.open_kind())),
            span,
        ));
    }
    maya_telemetry::add(maya_telemetry::Counter::TokenTreesBuilt, subtrees);
    Ok(top)
}

/// Builds token trees from a flat token slice.
///
/// # Errors
///
/// Reports mismatched, unexpected, or unclosed delimiters.
pub fn build_trees(tokens: &[Token]) -> Result<Vec<TokenTree>, LexError> {
    Ok(build_send_trees(tokens)?
        .into_iter()
        .map(SendTree::into_tree)
        .collect())
}

/// Runs the stream lexer on a registered file: scan, then fold delimiters.
///
/// # Errors
///
/// Propagates scan errors and delimiter-matching errors.
pub fn stream_lex(sm: &SourceMap, file: crate::FileId) -> Result<Vec<TokenTree>, LexError> {
    let tokens = scan_tokens(sm, file)?;
    build_trees(&tokens)
}

/// Runs the stream lexer to the `Send`-safe form (for worker threads).
///
/// # Errors
///
/// Propagates scan errors and delimiter-matching errors.
pub fn stream_lex_send(sm: &SourceMap, file: crate::FileId) -> Result<Vec<SendTree>, LexError> {
    let tokens = scan_tokens(sm, file)?;
    build_send_trees(&tokens)
}

/// Convenience for tests and tools: stream-lex a string using a throwaway
/// [`SourceMap`]. Spans refer to the throwaway map and should only be used
/// positionally.
pub fn tree_lex_str(src: &str) -> Result<Vec<TokenTree>, LexError> {
    let mut sm = SourceMap::new();
    let f = sm.add_file("<string>", src);
    stream_lex(&sm, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_nested_delimiters() {
        let trees = tree_lex_str("f(a, g(b)) { x[1]; }").unwrap();
        assert_eq!(trees.len(), 3); // f, (...), {...}
        let paren = trees[1].as_delim().unwrap();
        assert_eq!(paren.delim, Delim::Paren);
        assert_eq!(paren.trees.len(), 4); // a , g (...)
        let brace = trees[2].as_delim().unwrap();
        assert_eq!(brace.delim, Delim::Brace);
        assert_eq!(brace.trees.len(), 3); // x [...] ;
    }

    #[test]
    fn empty_trees() {
        let trees = tree_lex_str("int[] a () {}").unwrap();
        assert!(trees[1].as_delim().unwrap().is_empty());
        assert!(trees[3].as_delim().unwrap().is_empty());
        assert!(trees[4].as_delim().unwrap().is_empty());
    }

    #[test]
    fn mismatch_errors() {
        assert!(tree_lex_str("( ]").is_err());
        assert!(tree_lex_str(")").is_err());
        assert!(tree_lex_str("{ ( }").is_err());
        assert!(tree_lex_str("{").is_err());
    }

    #[test]
    fn flatten_roundtrip() {
        let src = "for ( int i = 0 ; i < n ; i ++ ) { a [ i ] = i * 2 ; }";
        let trees = tree_lex_str(src).unwrap();
        let mut toks = Vec::new();
        for t in &trees {
            t.flatten_into(&mut toks);
        }
        let rendered: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rendered.join(" "), src);
    }

    #[test]
    fn display_roundtrips_structure() {
        let trees = tree_lex_str("f ( a , b )").unwrap();
        let s: Vec<String> = trees.iter().map(|t| t.to_string()).collect();
        assert_eq!(s.join(" "), "f (a , b)");
    }

    #[test]
    fn send_trees_are_send_and_convert_identically() {
        fn assert_send<T: Send>() {}
        assert_send::<SendTree>();
        let mut sm = SourceMap::new();
        let f = sm.add_file("<s>", "f(a, g(b)) { x[1]; }");
        let direct = stream_lex(&sm, f).unwrap();
        let via_send: Vec<TokenTree> = stream_lex_send(&sm, f)
            .unwrap()
            .into_iter()
            .map(SendTree::into_tree)
            .collect();
        assert_eq!(direct, via_send);
    }

    #[test]
    fn finds_end_of_body_without_parsing() {
        // The stream lexer's purpose: the class body below is one subtree even
        // though its contents would not parse as anything meaningful yet.
        let trees = tree_lex_str("class C { !!! ??? [ not java ] }").unwrap();
        assert_eq!(trees.len(), 3);
        assert_eq!(trees[2].as_delim().unwrap().delim, Delim::Brace);
    }
}
