//! Lexical analysis for Maya-rs: string interning, source locations, tokens,
//! and the *stream lexer* of the Maya paper (§4, Figure 4).
//!
//! The stream lexer does not produce a flat token stream. Following the paper,
//! it creates a subtree for each pair of matching delimiters — parentheses,
//! braces, and brackets. These subtrees (the paper calls them "lexers", since
//! they can provide input to the parser) are what enables *lazy parsing*: the
//! compiler can skip to the end of a method body or field initializer without
//! parsing its contents.
//!
//! # Example
//!
//! ```
//! use maya_lexer::{SourceMap, stream_lex, TokenTree, Delim};
//!
//! let mut sm = SourceMap::new();
//! let file = sm.add_file("demo.maya", "int f() { return 1 + 2; }");
//! let trees = stream_lex(&sm, file).unwrap();
//! // `int`, `f`, a ParenTree, and a BraceTree:
//! assert_eq!(trees.len(), 4);
//! assert!(matches!(trees[3], TokenTree::Delim(ref d) if d.delim == Delim::Brace));
//! ```

mod intern;
mod loc;
mod scan;
mod token;
mod tree;

pub use intern::{sym, Symbol};
pub use loc::{FileId, LineCol, SourceFile, SourceMap, Span};
pub use scan::{scan_tokens, LexError};
pub use token::{keyword_kind, Token, TokenKind};
pub use tree::{
    build_send_trees, build_trees, stream_lex, stream_lex_send, tree_lex_str, Delim, DelimTree,
    SendTree, TokenTree,
};
