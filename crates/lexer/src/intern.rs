//! A global string interner.
//!
//! Identifiers, literal lexemes, and generated (hygienic) names are interned
//! into [`Symbol`]s: cheap `Copy` handles that compare by id. The interner is
//! process-global so that symbols can flow freely between the compiler, the
//! dispatcher, and interpreted metaprograms without threading an arena around.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// Two `Symbol`s are equal iff their underlying strings are equal. The string
/// is available via [`Symbol::as_str`] for the lifetime of the process.
///
/// # Example
///
/// ```
/// use maya_lexer::{sym, Symbol};
/// let a = sym("foreach");
/// let b = Symbol::intern("foreach");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "foreach");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical [`Symbol`].
    ///
    /// Re-interning an already-known string (by far the common case once a
    /// compilation is underway) takes only the shared read lock, so lexer
    /// worker threads do not serialize on the interner.
    pub fn intern(s: &str) -> Symbol {
        if let Some(&id) = interner().read().expect("interner poisoned").map.get(s) {
            return Symbol(id);
        }
        let mut int = interner().write().expect("interner poisoned");
        // Re-check under the write lock: another thread may have interned
        // `s` between our two lock acquisitions.
        if let Some(&id) = int.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = int.strings.len() as u32;
        int.map.insert(leaked, id);
        int.strings.push(leaked);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let int = interner().read().expect("interner poisoned");
        int.strings[self.0 as usize]
    }

    /// The raw interner index; stable within a process run.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Shorthand for [`Symbol::intern`].
pub fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = sym("hello");
        let b = sym("hello");
        let c = sym("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn empty_and_unicode() {
        assert_eq!(sym("").as_str(), "");
        assert_eq!(sym("λx→x").as_str(), "λx→x");
    }

    #[test]
    fn concurrent_interning_agrees_across_threads() {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("cc-sym-{i}")))
                        .collect::<Vec<Symbol>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = workers.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            assert_eq!(r, &results[0], "every thread resolves the same symbols");
        }
        assert_eq!(results[0][7].as_str(), "cc-sym-7");
    }

    #[test]
    fn display_matches_str() {
        let s = sym("enumVar$1");
        assert_eq!(format!("{s}"), "enumVar$1");
        assert!(format!("{s:?}").contains("enumVar$1"));
    }
}
