//! A global string interner.
//!
//! Identifiers, literal lexemes, and generated (hygienic) names are interned
//! into [`Symbol`]s: cheap `Copy` handles that compare by id. The interner is
//! process-global so that symbols can flow freely between the compiler, the
//! dispatcher, and interpreted metaprograms without threading an arena around.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Two `Symbol`s are equal iff their underlying strings are equal. The string
/// is available via [`Symbol::as_str`] for the lifetime of the process.
///
/// # Example
///
/// ```
/// use maya_lexer::{sym, Symbol};
/// let a = sym("foreach");
/// let b = Symbol::intern("foreach");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "foreach");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical [`Symbol`].
    pub fn intern(s: &str) -> Symbol {
        let mut int = interner().lock().expect("interner poisoned");
        if let Some(&id) = int.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = int.strings.len() as u32;
        int.map.insert(leaked, id);
        int.strings.push(leaked);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let int = interner().lock().expect("interner poisoned");
        int.strings[self.0 as usize]
    }

    /// The raw interner index; stable within a process run.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Shorthand for [`Symbol::intern`].
pub fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = sym("hello");
        let b = sym("hello");
        let c = sym("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn empty_and_unicode() {
        assert_eq!(sym("").as_str(), "");
        assert_eq!(sym("λx→x").as_str(), "λx→x");
    }

    #[test]
    fn display_matches_str() {
        let s = sym("enumVar$1");
        assert_eq!(format!("{s}"), "enumVar$1");
        assert!(format!("{s:?}").contains("enumVar$1"));
    }
}
