//! E14: Mayan dispatch cost per reduction, as the number of imported Mayans
//! on one production grows (paper §4.4 is at the core of every reduce).
//!
//! Also measures the telemetry tax: the same workload with telemetry
//! disabled (the default) and with a live collection session. The disabled
//! path must be within noise of the pre-telemetry baseline — the counters
//! are a single thread-local flag check away from free.

use maya_ast::{Expr, Node, NodeKind};
use maya_bench::timing::bench;
use maya_dispatch::{order_applicable, DispatchEnv, Mayan, Param, Specializer};
use maya_grammar::ProdId;
use maya_lexer::{sym, Span};
use maya_types::{ClassInfo, ClassTable, Type};
use std::rc::Rc;

fn env_with_n(ct: &ClassTable, n: usize) -> DispatchEnv {
    let tys: Vec<Type> = (0..8)
        .map(|i| {
            Type::Class(
                ct.by_fqcn_str(&format!("T{i}"))
                    .unwrap_or_else(|| ct.declare(ClassInfo::new(&format!("T{i}"), false)).unwrap()),
            )
        })
        .collect();
    let mut b = DispatchEnv::new().extend();
    for i in 0..n {
        let spec = if i == 0 {
            Specializer::None
        } else {
            Specializer::StaticType(tys[i % tys.len()].clone())
        };
        b.import(Mayan::new(
            &format!("M{i}"),
            ProdId(0),
            vec![Param::named(NodeKind::Expression, sym("e")).with_spec(spec)],
            Rc::new(|_, _| Ok(Node::Unit)),
        ));
    }
    b.finish()
}

fn main() {
    let ct = ClassTable::bootstrap();
    let arg = Node::from(Expr::name("x"));
    let obj = Type::Class(ct.by_fqcn_str("java.lang.Object").unwrap());
    println!("dispatch_overhead");
    for n in [1usize, 4, 16, 64] {
        let env = env_with_n(&ct, n);
        bench(&format!("mayans/{n}"), || {
            order_applicable(
                &env,
                &ct,
                ProdId(0),
                "Expression → x",
                std::slice::from_ref(&arg),
                &mut |_| Some(obj.clone()),
                Span::DUMMY,
            )
            .unwrap()
        });
    }

    // Telemetry tax at a representative size.
    let env = env_with_n(&ct, 16);
    let mut run = || {
        order_applicable(
            &env,
            &ct,
            ProdId(0),
            "Expression → x",
            std::slice::from_ref(&arg),
            &mut |_| Some(obj.clone()),
            Span::DUMMY,
        )
        .unwrap()
    };
    let off = bench("telemetry_disabled/16", &mut run);
    let session = maya_telemetry::Session::start(maya_telemetry::Config::default());
    let on = bench("telemetry_enabled/16", &mut run);
    let report = session.finish();
    let ratio = on.median.as_nanos() as f64 / off.median.as_nanos().max(1) as f64;
    println!(
        "telemetry tax: {:.1}% (enabled/disabled median ratio {ratio:.3}); \
         {} dispatch reduction(s) recorded while enabled",
        (ratio - 1.0) * 100.0,
        report.counter(maya_telemetry::Counter::DispatchReductions),
    );
}
