//! E14: Mayan dispatch cost per reduction, as the number of imported Mayans
//! on one production grows (paper §4.4 is at the core of every reduce).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maya_ast::{Expr, Node, NodeKind};
use maya_dispatch::{order_applicable, DispatchEnv, Mayan, Param, Specializer};
use maya_grammar::ProdId;
use maya_lexer::{sym, Span};
use maya_types::{ClassInfo, ClassTable, Type};
use std::rc::Rc;

fn env_with_n(ct: &ClassTable, n: usize) -> DispatchEnv {
    let tys: Vec<Type> = (0..8)
        .map(|i| {
            Type::Class(
                ct.by_fqcn_str(&format!("T{i}"))
                    .unwrap_or_else(|| ct.declare(ClassInfo::new(&format!("T{i}"), false)).unwrap()),
            )
        })
        .collect();
    let mut b = DispatchEnv::new().extend();
    for i in 0..n {
        let spec = if i == 0 {
            Specializer::None
        } else {
            Specializer::StaticType(tys[i % tys.len()].clone())
        };
        b.import(Mayan::new(
            &format!("M{i}"),
            ProdId(0),
            vec![Param::named(NodeKind::Expression, sym("e")).with_spec(spec)],
            Rc::new(|_, _| Ok(Node::Unit)),
        ));
    }
    b.finish()
}

fn bench(c: &mut Criterion) {
    let ct = ClassTable::bootstrap();
    let arg = Node::from(Expr::name("x"));
    let obj = Type::Class(ct.by_fqcn_str("java.lang.Object").unwrap());
    let mut group = c.benchmark_group("dispatch_overhead");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for n in [1usize, 4, 16, 64] {
        let env = env_with_n(&ct, n);
        group.bench_with_input(BenchmarkId::new("mayans", n), &n, |b, _| {
            b.iter(|| {
                order_applicable(
                    &env,
                    &ct,
                    ProdId(0),
                    "Expression → x",
                    std::slice::from_ref(&arg),
                    &mut |_| Some(obj.clone()),
                    Span::DUMMY,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
