//! E16: template costs — one-time pattern-parse compilation vs. per-use
//! instantiation (the paper's templates are compiled to code that replays
//! the parser's shifts and reductions, §4.2).

use maya_ast::{Expr, Node, NodeKind};
use maya_bench::timing::bench;
use maya_core::{Compiler, CoreInstHost, Cx, EnvPair};
use maya_template::Template;
use maya_types::{ResolveCtx, Scope};
use std::cell::RefCell;
use std::rc::Rc;

const SRC: &str = "for (java.util.Enumeration enumVar = $enumExp ; \
                        enumVar.hasMoreElements() ; ) { \
                       $body \
                   }";

fn cx_for(compiler: &Compiler) -> Cx {
    Cx {
        cx: compiler.inner().clone(),
        pair: EnvPair {
            grammar: compiler.base().grammar.clone(),
            denv: compiler.base().denv.clone(),
        },
        ctx: ResolveCtx::default(),
        class: None,
        scope: Rc::new(RefCell::new(Scope::new())),
    }
}

fn compile_template(compiler: &Compiler) -> Rc<Template> {
    let cx = cx_for(compiler);
    let trees = maya_lexer::tree_lex_str(&format!("{{ {SRC} }}")).unwrap();
    let body = trees[0].as_delim().unwrap().clone();
    struct Kinds;
    impl maya_template::SlotKinds for Kinds {
        fn named(&mut self, name: maya_lexer::Symbol) -> Option<NodeKind> {
            match name.as_str() {
                "enumExp" => Some(NodeKind::Expression),
                "body" => Some(NodeKind::Statement),
                _ => None,
            }
        }
        fn expr(&mut self, _t: &[maya_lexer::TokenTree]) -> Option<NodeKind> {
            None
        }
    }
    let classes = compiler.classes();
    let resolver = move |dotted: &str| classes.by_fqcn_str(dotted).map(|c| classes.fqcn(c));
    Rc::new(
        Template::compile(
            &cx.pair.grammar,
            &compiler.inner().base.hygiene,
            &resolver,
            NodeKind::Statement,
            &body,
            &mut Kinds,
        )
        .unwrap(),
    )
}

fn main() {
    let compiler = Compiler::new();
    println!("templates");

    bench("compile", || compile_template(&compiler));

    let t = compile_template(&compiler);
    let enum_exp = Node::from(Expr::call_on(Expr::name("h"), "keys", vec![]));
    let body = Node::Stmt(maya_ast::Stmt::synth(maya_ast::StmtKind::Empty));
    bench("instantiate", || {
        let mut host = CoreInstHost { c: cx_for(&compiler) };
        t.instantiate(vec![enum_exp.clone(), body.clone()], &mut host)
            .unwrap()
    });

    // Baseline: hand-constructing an equivalent AST with no replay.
    bench("hand_built_ast", || {
        maya_ast::Stmt::synth(maya_ast::StmtKind::For {
            init: maya_ast::ForInit::Decl(
                maya_ast::TypeName::named("java.util.Enumeration"),
                vec![maya_ast::LocalDeclarator {
                    name: maya_ast::Ident::from_str("enumVar"),
                    dims: 0,
                    init: enum_exp.clone().into_expr(),
                }],
            ),
            cond: Some(Expr::call_on(Expr::name("enumVar"), "hasMoreElements", vec![])),
            update: vec![],
            body: Box::new(maya_ast::Stmt::synth(maya_ast::StmtKind::Empty)),
        })
    });
}
