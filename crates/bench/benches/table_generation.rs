//! E15: LALR(1) table (re)generation — the cost of extending the grammar,
//! which every `use` of a syntax-adding extension pays (paper §4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maya_ast::NodeKind;
use maya_core::Base;
use maya_grammar::RhsItem;
use maya_lexer::Delim;

fn bench(c: &mut Criterion) {
    let base = Base::build();
    let mut group = c.benchmark_group("table_generation");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(20);

    group.bench_function("base_grammar", |b| {
        b.iter(|| {
            // A fresh snapshot so tables are not cached.
            let g = base.grammar.extend().finish();
            g.tables().expect("LALR(1)")
        })
    });

    for n in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("base_plus_n_productions", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut ext = base.grammar.extend();
                    for i in 0..n {
                        ext.add_production(
                            NodeKind::Statement,
                            &[
                                RhsItem::word(Box::leak(format!("kw{i}").into_boxed_str())),
                                RhsItem::Subtree(
                                    Delim::Paren,
                                    vec![RhsItem::Kind(NodeKind::Expression)],
                                ),
                                RhsItem::Lazy(Delim::Brace, NodeKind::BlockStmts),
                            ],
                            None,
                        )
                        .unwrap();
                    }
                    let g = ext.finish();
                    g.tables().expect("LALR(1)")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
