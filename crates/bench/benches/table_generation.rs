//! E15: LALR(1) table (re)generation — the cost of extending the grammar,
//! which every `use` of a syntax-adding extension pays (paper §4.1).

use maya_ast::NodeKind;
use maya_bench::timing::{bench_with, Options};
use maya_core::Base;
use maya_grammar::RhsItem;
use maya_lexer::Delim;
use std::time::Duration;

fn main() {
    let base = Base::build();
    let opts = Options {
        warmup: Duration::from_millis(300),
        measurement: Duration::from_millis(1200),
        samples: 20,
    };
    println!("table_generation");

    bench_with("base_grammar", opts.clone(), || {
        // A fresh snapshot so tables are not cached.
        let g = base.grammar.extend().finish();
        g.tables().expect("LALR(1)")
    });

    for n in [1usize, 4, 16] {
        bench_with(&format!("base_plus_n_productions/{n}"), opts.clone(), || {
            let mut ext = base.grammar.extend();
            for i in 0..n {
                ext.add_production(
                    NodeKind::Statement,
                    &[
                        RhsItem::word(Box::leak(format!("kw{i}").into_boxed_str())),
                        RhsItem::Subtree(Delim::Paren, vec![RhsItem::Kind(NodeKind::Expression)]),
                        RhsItem::Lazy(Delim::Brace, NodeKind::BlockStmts),
                    ],
                    None,
                )
                .unwrap();
            }
            let g = ext.finish();
            g.tables().expect("LALR(1)")
        });
    }
}
