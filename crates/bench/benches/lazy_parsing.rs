//! E13: lazy vs. eager compilation (paper §4): shaping a class leaves
//! method bodies unparsed; forcing them all is the eager cost. The shape
//! expected from the paper: lazy wins proportionally to the fraction of
//! bodies never demanded.

use maya_bench::class_with_methods;
use maya_bench::timing::{bench_with, Options};
use maya_core::Compiler;
use std::time::Duration;

fn main() {
    let opts = Options {
        warmup: Duration::from_millis(300),
        measurement: Duration::from_millis(1200),
        samples: 10,
    };
    println!("lazy_parsing");
    for n in [16usize, 64] {
        let src = class_with_methods("Big", n);
        bench_with(&format!("shape_only_lazy/{n}"), opts.clone(), || {
            let c = Compiler::new();
            c.add_source("Big.maya", &src).unwrap();
            // Shaping parses signatures; bodies stay lazy.
            c
        });
        bench_with(&format!("full_compile_eager/{n}"), opts.clone(), || {
            let c = Compiler::new();
            c.add_source("Big.maya", &src).unwrap();
            c.compile().unwrap(); // forces and checks every body
            c
        });
    }
}
