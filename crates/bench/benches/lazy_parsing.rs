//! E13: lazy vs. eager compilation (paper §4): shaping a class leaves
//! method bodies unparsed; forcing them all is the eager cost. The shape
//! expected from the paper: lazy wins proportionally to the fraction of
//! bodies never demanded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maya_bench::class_with_methods;
use maya_core::Compiler;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_parsing");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for n in [16usize, 64] {
        let src = class_with_methods("Big", n);
        group.bench_with_input(BenchmarkId::new("shape_only_lazy", n), &src, |b, src| {
            b.iter(|| {
                let c = Compiler::new();
                c.add_source("Big.maya", src).unwrap();
                // Shaping parses signatures; bodies stay lazy.
                c
            })
        });
        group.bench_with_input(BenchmarkId::new("full_compile_eager", n), &src, |b, src| {
            b.iter(|| {
                let c = Compiler::new();
                c.add_source("Big.maya", src).unwrap();
                c.compile().unwrap(); // forces and checks every body
                c
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
