//! E12: MultiJava-generated dispatchers vs. a hand-written visitor — the
//! intro's motivating comparison. Expected shape: the generated instanceof
//! chain is competitive with (here: faster than) the double-dispatch
//! visitor, since the visitor pays two virtual calls per dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maya_bench::{multimethod_program, visitor_program};
use maya_multijava::compiler_with_multijava;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("multijava_vs_visitor");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    for pairs in [200usize, 1000] {
        let mm = compiler_with_multijava();
        mm.add_source("MM.maya", &multimethod_program(pairs)).unwrap();
        mm.compile().unwrap();
        let vis = compiler_with_multijava();
        vis.add_source("Vis.maya", &visitor_program(pairs)).unwrap();
        vis.compile().unwrap();
        // Sanity: both compute the same answer.
        assert_eq!(mm.run_main("Main").unwrap(), vis.run_main("Main").unwrap());

        group.bench_with_input(BenchmarkId::new("multimethods", pairs), &pairs, |b, _| {
            b.iter(|| mm.run_main("Main").unwrap())
        });
        group.bench_with_input(BenchmarkId::new("visitor", pairs), &pairs, |b, _| {
            b.iter(|| vis.run_main("Main").unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
