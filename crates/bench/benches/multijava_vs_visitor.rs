//! E12: MultiJava-generated dispatchers vs. a hand-written visitor — the
//! intro's motivating comparison. Expected shape: the generated instanceof
//! chain is competitive with (here: faster than) the double-dispatch
//! visitor, since the visitor pays two virtual calls per dispatch.

use maya_bench::timing::{bench_with, Options};
use maya_bench::{multimethod_program, visitor_program};
use maya_multijava::compiler_with_multijava;
use std::time::Duration;

fn main() {
    let opts = Options {
        warmup: Duration::from_millis(300),
        measurement: Duration::from_millis(1200),
        samples: 10,
    };
    println!("multijava_vs_visitor");
    for pairs in [200usize, 1000] {
        let mm = compiler_with_multijava();
        mm.add_source("MM.maya", &multimethod_program(pairs)).unwrap();
        mm.compile().unwrap();
        let vis = compiler_with_multijava();
        vis.add_source("Vis.maya", &visitor_program(pairs)).unwrap();
        vis.compile().unwrap();
        // Sanity: both compute the same answer.
        assert_eq!(mm.run_main("Main").unwrap(), vis.run_main("Main").unwrap());

        bench_with(&format!("multimethods/{pairs}"), opts.clone(), || {
            mm.run_main("Main").unwrap()
        });
        bench_with(&format!("visitor/{pairs}"), opts.clone(), || {
            vis.run_main("Main").unwrap()
        });
    }
}
