//! E11: the paper's §5.3 code-size table.
//!
//! Paper: Clifton's MultiJava added or materially altered 20,000 of 50,000
//! lines in kjc; the Maya implementation is < 2,500 non-comment non-blank
//! lines. We report the analogous numbers for this reproduction: the
//! MultiJava extension crate vs. the host compiler, expecting the same
//! order-of-magnitude gap (extension ≪ compiler).
//!
//! Run with `cargo bench -p maya-bench --bench code_size`; results are
//! recorded in EXPERIMENTS.md.

use std::path::Path;

fn ncnb_lines(path: &Path) -> usize {
    let mut total = 0;
    if path.is_dir() {
        for entry in std::fs::read_dir(path).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() || p.extension().and_then(|e| e.to_str()) == Some("rs") {
                total += ncnb_lines(&p);
            }
        }
        return total;
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut in_block = false;
    for line in text.lines() {
        let t = line.trim();
        if in_block {
            if t.contains("*/") {
                in_block = false;
            }
            continue;
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        if t.starts_with("/*") {
            if !t.contains("*/") {
                in_block = true;
            }
            continue;
        }
        total += 1;
    }
    total
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let compiler_crates = [
        "lexer", "grammar", "ast", "parser", "types", "dispatch", "template", "core", "interp",
    ];
    let mut compiler_total = 0;
    println!("E11 — MultiJava implementation size (paper §5.3)");
    println!();
    println!("host compiler (mayac):");
    for c in compiler_crates {
        let n = ncnb_lines(&root.join(c).join("src"));
        println!("  {c:10} {n:>6} NCNB lines");
        compiler_total += n;
    }
    let multijava = ncnb_lines(&root.join("multijava").join("src"));
    let macrolib = ncnb_lines(&root.join("macrolib").join("src"));
    println!("  {:10} {compiler_total:>6} NCNB lines total", "=");
    println!();
    println!("extensions:");
    println!("  multijava  {multijava:>6} NCNB lines");
    println!("  macrolib   {macrolib:>6} NCNB lines");
    println!();
    println!(
        "ratio: MultiJava extension is {:.1}% of the host compiler \
         (paper: <2,500 of ~20,000 changed kjc lines ≈ 12.5%)",
        100.0 * multijava as f64 / compiler_total as f64
    );
    assert!(
        multijava * 4 < compiler_total,
        "the extension must be far smaller than the compiler"
    );
}
