//! Benchmark support: shared workload generators and a minimal timing
//! harness for the experiment suite (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for the recorded results).

use std::fmt::Write as _;

pub mod timing;

/// Generates a MayaJava class with `n` methods, each with a small body.
pub fn class_with_methods(name: &str, n: usize) -> String {
    let mut src = format!("class {name} {{\n");
    for i in 0..n {
        let _ = writeln!(
            src,
            "    int m{i}(int a, int b) {{ int c = a * {i} + b; return c * c; }}"
        );
    }
    src.push_str("}\n");
    src
}

/// A shape-hierarchy program dispatching `pairs` shape pairs through
/// MultiJava multimethods.
pub fn multimethod_program(pairs: usize) -> String {
    format!(
        r#"
        use MultiJava;
        class Shape {{ }}
        class Circle extends Shape {{ }}
        class Rect extends Shape {{ }}
        class Intersect {{
            int test(Shape a, Shape b) {{ return 0; }}
            int test(Shape@Circle a, Shape@Rect b) {{ return 1; }}
            int test(Shape@Rect a, Shape@Circle b) {{ return 2; }}
            int test(Shape@Circle a, Shape@Circle b) {{ return 3; }}
        }}
        class Main {{
            static void main() {{
                Intersect it = new Intersect();
                Shape c = new Circle();
                Shape r = new Rect();
                int sum = 0;
                for (int i = 0; i < {pairs}; i++) {{
                    sum += it.test(c, r) + it.test(r, c) + it.test(c, c) + it.test(r, r);
                }}
                System.out.println(sum);
            }}
        }}
        "#
    )
}

/// The same workload written with the visitor pattern — the intro's
/// "multiple dispatch in a single-dispatch language" workaround.
pub fn visitor_program(pairs: usize) -> String {
    format!(
        r#"
        class Shape {{
            int acceptWith(Visitor v, Shape other) {{ return 0; }}
            int visitFromCircle(Visitor v) {{ return v.generic(); }}
            int visitFromRect(Visitor v) {{ return v.generic(); }}
        }}
        class Circle extends Shape {{
            int acceptWith(Visitor v, Shape other) {{ return other.visitFromCircle(v); }}
            int visitFromCircle(Visitor v) {{ return v.circleCircle(); }}
            int visitFromRect(Visitor v) {{ return v.rectCircle(); }}
        }}
        class Rect extends Shape {{
            int acceptWith(Visitor v, Shape other) {{ return other.visitFromRect(v); }}
            int visitFromCircle(Visitor v) {{ return v.circleRect(); }}
            int visitFromRect(Visitor v) {{ return v.rectRect(); }}
        }}
        class Visitor {{
            int circleCircle() {{ return 3; }}
            int circleRect() {{ return 1; }}
            int rectCircle() {{ return 2; }}
            int rectRect() {{ return 0; }}
            int generic() {{ return 0; }}
        }}
        class Main {{
            static void main() {{
                Visitor v = new Visitor();
                Shape c = new Circle();
                Shape r = new Rect();
                int sum = 0;
                for (int i = 0; i < {pairs}; i++) {{
                    sum += c.acceptWith(v, r) + r.acceptWith(v, c)
                         + c.acceptWith(v, c) + r.acceptWith(v, r);
                }}
                System.out.println(sum);
            }}
        }}
        "#
    )
}
