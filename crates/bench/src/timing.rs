//! A minimal wall-clock benchmark harness.
//!
//! The container has no registry access, so `criterion` is unavailable;
//! this module provides the small subset the experiment suite needs:
//! warmup, batched measurement, and per-iteration statistics with a
//! stable one-line report format.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration statistics from one benchmark run.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    /// Iterations per sample batch.
    pub iters_per_sample: u32,
    pub samples: usize,
    /// Median per-iteration time across sample batches.
    pub median: Duration,
    /// Fastest per-iteration time across sample batches.
    pub min: Duration,
    /// Mean per-iteration time across sample batches.
    pub mean: Duration,
}

impl Measurement {
    /// `name  median 1.234µs  (min 1.1µs, mean 1.3µs, 10×100 iters)`.
    pub fn report(&self) -> String {
        format!(
            "{:<40} median {:>12?}  (min {:?}, mean {:?}, {}x{} iters)",
            self.name, self.median, self.min, self.mean, self.samples, self.iters_per_sample
        )
    }
}

/// Tuning knobs; the defaults mirror the old criterion configuration
/// (short warmup, ~1.2s measurement).
#[derive(Debug, Clone)]
pub struct Options {
    pub warmup: Duration,
    pub measurement: Duration,
    pub samples: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            warmup: Duration::from_millis(300),
            measurement: Duration::from_millis(1200),
            samples: 10,
        }
    }
}

/// Runs `f` repeatedly and reports per-iteration statistics, printing the
/// one-line report to stdout.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) -> Measurement {
    bench_with(name, Options::default(), f)
}

/// [`bench`] with explicit options.
pub fn bench_with<T>(name: &str, opts: Options, mut f: impl FnMut() -> T) -> Measurement {
    // Warmup: run until the warmup budget elapses, counting iterations so
    // we can size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters = 0u32;
    while warm_start.elapsed() < opts.warmup || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters;
    // Size batches so all samples fit in the measurement budget.
    let budget_per_sample = opts.measurement / opts.samples as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
    };
    let mut per_sample: Vec<Duration> = Vec::with_capacity(opts.samples);
    for _ in 0..opts.samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_sample.push(t0.elapsed() / iters);
    }
    per_sample.sort();
    let m = Measurement {
        name: name.to_owned(),
        iters_per_sample: iters,
        samples: opts.samples,
        median: per_sample[per_sample.len() / 2],
        min: per_sample[0],
        mean: per_sample.iter().sum::<Duration>() / per_sample.len() as u32,
    };
    println!("{}", m.report());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let opts = Options {
            warmup: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            samples: 4,
        };
        let m = bench_with("spin", opts, || {
            let mut x = 0u64;
            for i in 0..100 {
                x = x.wrapping_add(black_box(i));
            }
            x
        });
        assert!(m.median > Duration::ZERO);
        assert!(m.min <= m.median);
        assert_eq!(m.samples, 4);
    }
}
