//! `assert`: the paper's assertion macro.
//!
//! `assert(expr);` expands to a check that throws a `RuntimeException`
//! carrying the *source text* of the failed condition — something only a
//! compile-time metaprogram can produce.

use maya_ast::{Node, NodeKind};
use maya_core::CoreExpand;
use maya_dispatch::{Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param};
use maya_grammar::RhsItem;
use maya_lexer::{sym, Delim, Span, TokenKind};
use maya_template::Template;
use std::cell::OnceCell;
use std::rc::Rc;

/// The `assert` extension.
pub struct Assert;

impl MetaProgram for Assert {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = env.add_production(
            NodeKind::Statement,
            &[
                RhsItem::word("assert"),
                RhsItem::Subtree(Delim::Paren, vec![RhsItem::Kind(NodeKind::Expression)]),
                RhsItem::tok(TokenKind::Semi),
            ],
        )?;
        let template: OnceCell<Rc<Template>> = OnceCell::new();
        let body = move |b: &Bindings, ctx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            let cx = ctx
                .as_any()
                .downcast_mut::<CoreExpand>()
                .expect("assert runs under the core compiler");
            let t = match template.get() {
                Some(t) => t.clone(),
                None => {
                    let t = cx.compile_template(
                        NodeKind::Statement,
                        "if (!($cond)) { \
                           throw new java.lang.RuntimeException($msg) ; \
                         }",
                        &[
                            ("cond", NodeKind::Expression),
                            ("msg", NodeKind::Expression),
                        ],
                    )?;
                    template.get_or_init(|| t).clone()
                }
            };
            let cond = b
                .expr("cond")
                .ok_or_else(|| DispatchError::new("internal: assert condition", Span::DUMMY))?;
            let text = format!("assertion failed: {}", maya_ast::expr_str(&cond));
            let msg = Node::Expr(maya_ast::Expr::str_lit(&text));
            cx.instantiate_named(&t, &[("cond", Node::Expr(cond)), ("msg", msg)])
        };
        env.import_mayan(Mayan::new(
            "Assert",
            prod,
            vec![
                Param::plain(NodeKind::TokenNode),
                Param::named(NodeKind::Expression, sym("cond")),
                Param::plain(NodeKind::TokenNode),
            ],
            Rc::new(body),
        ));
        Ok(())
    }

    fn name(&self) -> &str {
        "maya.util.Assert"
    }
}
