//! `format`: printf-style string formatting, checked at compile time.
//!
//! `format("x=%s y=%s", a, b)` expands to string concatenation. The format
//! string must be a literal; placeholder/argument arity mismatches are
//! *compile-time* errors — the kind of static guarantee §3 motivates.

use maya_ast::{BinOp, Expr, ExprKind, Node, NodeKind};
use maya_dispatch::{Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param};
use maya_grammar::RhsItem;
use maya_lexer::{sym, Delim, Span};
use std::rc::Rc;

/// The `format` extension.
pub struct Format;

impl MetaProgram for Format {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = env.add_production(
            NodeKind::Expression,
            &[
                RhsItem::word("format"),
                RhsItem::Subtree(Delim::Paren, vec![RhsItem::Kind(NodeKind::ArgumentList)]),
            ],
        )?;
        let body = |b: &Bindings, _ctx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            let args = match b.get("args") {
                Some(Node::Args(a)) => a.clone(),
                _ => return Err(DispatchError::new("internal: format args", Span::DUMMY)),
            };
            let Some(first) = args.first() else {
                return Err(DispatchError::new(
                    "format expects a literal format string",
                    Span::DUMMY,
                ));
            };
            let ExprKind::Literal(maya_ast::Lit::Str(fmt)) = first.kind else {
                return Err(DispatchError::new(
                    "format's first argument must be a string literal",
                    first.span,
                ));
            };
            let rest = &args[1..];
            // Split on %s placeholders.
            let pieces: Vec<&str> = fmt.as_str().split("%s").collect();
            if pieces.len() - 1 != rest.len() {
                return Err(DispatchError::new(
                    format!(
                        "format string has {} placeholder(s) but {} argument(s) were given",
                        pieces.len() - 1,
                        rest.len()
                    ),
                    first.span,
                ));
            }
            // "" + p0 + a0 + p1 + a1 … — leading "" keeps + as string concat.
            let mut out = Expr::str_lit(pieces[0]);
            for (arg, piece) in rest.iter().zip(&pieces[1..]) {
                out = Expr::synth(ExprKind::Binary(
                    BinOp::Add,
                    Box::new(out),
                    Box::new(arg.clone()),
                ));
                if !piece.is_empty() {
                    out = Expr::synth(ExprKind::Binary(
                        BinOp::Add,
                        Box::new(out),
                        Box::new(Expr::str_lit(piece)),
                    ));
                }
            }
            Ok(Node::Expr(out))
        };
        env.import_mayan(Mayan::new(
            "Format",
            prod,
            vec![
                Param::plain(NodeKind::TokenNode),
                Param::named(NodeKind::ArgumentList, sym("args")),
            ],
            Rc::new(body),
        ));
        Ok(())
    }

    fn name(&self) -> &str {
        "maya.util.Format"
    }
}
