//! Collection comprehensions (paper §3 mentions "comprehension syntax for
//! building arrays and collections" in the macro library).
//!
//! `into(target, expr each Formal : source);` appends `expr` (with the
//! formal bound to each element of `source`, a `java.util.Vector`) to
//! `target`:
//!
//! ```text
//! into(squares, x * x each int x : numbers);
//! ```
//!
//! (`each` is a contextual keyword, not reserved — `|` would collide with
//! bitwise-or in the element expression.)

use maya_ast::{Expr, ExprKind, LocalDeclarator, Node, NodeKind, Stmt, StmtKind};
use maya_core::CoreExpand;
use maya_dispatch::{Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param};
use maya_grammar::RhsItem;
use maya_lexer::{sym, Delim, Span, TokenKind};
use maya_template::Template;
use std::cell::OnceCell;
use std::rc::Rc;

/// The comprehension extension.
pub struct Comprehension;

impl MetaProgram for Comprehension {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = env.add_production(
            NodeKind::Statement,
            &[
                RhsItem::word("into"),
                RhsItem::Subtree(
                    Delim::Paren,
                    vec![
                        RhsItem::Kind(NodeKind::Expression), // target
                        RhsItem::tok(TokenKind::Comma),
                        RhsItem::Kind(NodeKind::Expression), // element expr
                        RhsItem::word("each"),
                        RhsItem::Kind(NodeKind::Formal), // loop variable
                        RhsItem::tok(TokenKind::Colon),
                        RhsItem::Kind(NodeKind::Expression), // source
                    ],
                ),
                RhsItem::tok(TokenKind::Semi),
            ],
        )?;
        let template: OnceCell<Rc<Template>> = OnceCell::new();
        let body = move |b: &Bindings, ctx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            let cx = ctx
                .as_any()
                .downcast_mut::<CoreExpand>()
                .expect("comprehensions run under the core compiler");
            let t = match template.get() {
                Some(t) => t.clone(),
                None => {
                    let t = cx.compile_template(
                        NodeKind::Statement,
                        "{ java.util.Vector srcVar = $src ; \
                           for (int iVar = 0 ; iVar < srcVar.size() ; iVar++) { \
                             $decl \
                             $ref = ($castType) srcVar.elementAt(iVar) ; \
                             $target.addElement($elem) ; \
                           } \
                         }",
                        &[
                            ("src", NodeKind::Expression),
                            ("decl", NodeKind::Statement),
                            ("ref", NodeKind::Expression),
                            ("castType", NodeKind::TypeName),
                            ("target", NodeKind::Expression),
                            ("elem", NodeKind::Expression),
                        ],
                    )?;
                    template.get_or_init(|| t).clone()
                }
            };
            // The bundled subtree: [target, ",", elem, "|", formal, ":", src].
            let parts = match &b.args[1] {
                Node::List(items) => items.clone(),
                _ => return Err(DispatchError::new("internal: comprehension head", Span::DUMMY)),
            };
            let target = parts[0]
                .clone()
                .into_expr()
                .ok_or_else(|| DispatchError::new("internal: target", Span::DUMMY))?;
            let elem = parts[2]
                .clone()
                .into_expr()
                .ok_or_else(|| DispatchError::new("internal: element", Span::DUMMY))?;
            let var = match &parts[4] {
                Node::Formal(f) => f.clone(),
                _ => return Err(DispatchError::new("internal: formal", Span::DUMMY)),
            };
            let src = parts[6]
                .clone()
                .into_expr()
                .ok_or_else(|| DispatchError::new("internal: source", Span::DUMMY))?;
            let decl = Node::Stmt(Stmt::synth(StmtKind::Decl(
                var.ty.clone(),
                vec![LocalDeclarator::plain(var.name)],
            )));
            let refer = Node::Expr(Expr::synth(ExprKind::VarRef(var.name.sym)));
            let var_ty = cx
                .c
                .cx
                .classes
                .resolve_type_name(&var.ty, cx.resolve_ctx())
                .map_err(|e| DispatchError::new(e.message, e.span))?;
            let cast = Node::Type(
                crate::foreach::type_to_typename(&cx.c.cx.classes, &var_ty)?,
            );
            cx.instantiate_named(
                &t,
                &[
                    ("src", Node::Expr(src)),
                    ("decl", decl),
                    ("ref", refer),
                    ("castType", cast),
                    ("target", Node::Expr(target)),
                    ("elem", Node::Expr(elem)),
                ],
            )
        };
        env.import_mayan(Mayan::new(
            "Comprehension",
            prod,
            vec![
                Param::plain(NodeKind::TokenNode),
                Param::named(NodeKind::Top, sym("head")),
                Param::plain(NodeKind::TokenNode),
            ],
            Rc::new(body),
        ));
        Ok(())
    }

    fn name(&self) -> &str {
        "maya.util.Comprehension"
    }
}
