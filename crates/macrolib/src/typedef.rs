//! `typedef` (paper Figure 3): an alternate name for a class within a block
//! of statements, implemented with **local Mayans**.
//!
//! The `Typedef` Mayan's expansion does not produce syntax for the
//! substitution itself; instead it allocates substitution Mayans *closed
//! over its arguments* (`var`, `val`) and exports them to the body through
//! a `UseStmt` — "one Mayan can expose state to other Mayans without
//! resorting to templates that define Mayans" (§3.3).

use maya_ast::{Expr, ExprKind, Node, NodeKind, Stmt, StmtKind, TypeName, UseTarget};
use maya_core::{BaseProds, CoreExpand};
use maya_dispatch::{
    Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param, Specializer,
};
use maya_grammar::RhsItem;
use maya_lexer::{sym, Delim, Span, Symbol};
use std::rc::Rc;

/// The substitution metaprogram created per `typedef` use: local Mayans on
/// the base name productions that rewrite `var` to the aliased class. This
/// is Figure 3's `Subst`, closed over the enclosing Mayan's arguments.
pub struct Subst {
    var: Symbol,
    fqcn: Symbol,
    prods: BaseProds,
}

impl MetaProgram for Subst {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let var = self.var;
        let fqcn = self.fqcn;
        // In expression position (`var x = …;` — the decl-statement type,
        // or any use of the name): substitute a direct class reference.
        env.import_mayan(Mayan::new(
            "Subst",
            self.prods.id("expr_name"),
            vec![Param::named(NodeKind::Identifier, sym("id"))
                .with_spec(Specializer::TokenValue(var))],
            Rc::new(move |_b: &Bindings, _ctx: &mut dyn ExpandCtx| {
                Ok(Node::Expr(Expr::synth(ExprKind::ClassRef(fqcn))))
            }),
        ));
        // In type position (formals, casts): substitute a strict type name.
        env.import_mayan(Mayan::new(
            "SubstType",
            self.prods.id("type_qname"),
            vec![Param::plain(NodeKind::QualifiedName)
                .with_spec(Specializer::TokenValue(var))],
            Rc::new(move |_b: &Bindings, _ctx: &mut dyn ExpandCtx| {
                Ok(Node::Type(TypeName::strict(fqcn)))
            }),
        ));
        // In `new var(...)`.
        env.import_mayan(Mayan::new(
            "SubstNew",
            self.prods.id("new_object"),
            vec![
                Param::plain(NodeKind::TokenNode),
                Param::plain(NodeKind::QualifiedName)
                    .with_spec(Specializer::TokenValue(var)),
                Param::named(NodeKind::ArgumentList, sym("args")),
            ],
            Rc::new(move |b: &Bindings, _ctx: &mut dyn ExpandCtx| {
                let args = match b.get("args") {
                    Some(Node::Args(a)) => a.clone(),
                    _ => vec![],
                };
                Ok(Node::Expr(Expr::synth(ExprKind::New(
                    TypeName::strict(fqcn),
                    args,
                ))))
            }),
        ));
        Ok(())
    }

    fn name(&self) -> &str {
        "Subst"
    }
}

/// The `typedef` extension (paper Figure 3).
pub struct Typedef {
    prods: BaseProds,
}

impl Typedef {
    /// Builds the extension.
    pub fn new(prods: &BaseProds) -> Typedef {
        Typedef {
            prods: prods.clone(),
        }
    }
}

impl MetaProgram for Typedef {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        // abstract Statement syntax(typedef(Identifier = StrictClassName)
        //                            lazy(BraceTree, BlockStmts));
        let prod = env.add_production(
            NodeKind::Statement,
            &[
                RhsItem::word("typedef"),
                RhsItem::Subtree(
                    Delim::Paren,
                    vec![
                        RhsItem::Kind(NodeKind::Identifier),
                        RhsItem::tok(maya_lexer::TokenKind::Assign),
                        RhsItem::Kind(NodeKind::TypeName),
                    ],
                ),
                RhsItem::Lazy(Delim::Brace, NodeKind::BlockStmts),
            ],
        )?;
        let prods = self.prods.clone();
        let body = move |b: &Bindings, ctx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            let (var, val) = match b.get("head") {
                Some(Node::List(parts)) if parts.len() == 3 => {
                    let var = parts[0]
                        .as_ident()
                        .ok_or_else(|| DispatchError::new("typedef name", Span::DUMMY))?;
                    let val = parts[2]
                        .as_type()
                        .cloned()
                        .ok_or_else(|| DispatchError::new("typedef target", Span::DUMMY))?;
                    (var, val)
                }
                _ => return Err(DispatchError::new("internal: typedef head", Span::DUMMY)),
            };
            let cx = ctx
                .as_any()
                .downcast_mut::<CoreExpand>()
                .expect("typedef runs under the core compiler");
            // Resolve the target in the use-site context.
            let ty = cx
                .c
                .cx
                .classes
                .resolve_type_name(&val, cx.resolve_ctx())
                .map_err(|e| DispatchError::new(e.message, e.span))?;
            let Some(class) = ty.class_id() else {
                return Err(DispatchError::new(
                    "typedef target must be a class type",
                    val.span,
                ));
            };
            let fqcn = cx.c.cx.classes.fqcn(class);
            let subst = Rc::new(Subst {
                var: var.sym,
                fqcn,
                prods: prods.clone(),
            });
            // Re-wrap the lazy body so it parses under the environment
            // extended by the substitution Mayans — the UseStmt of Figure 3.
            let tree = match b.get("body").and_then(|n| n.as_lazy()) {
                Some(l) => l.unforced_tree().ok_or_else(|| {
                    DispatchError::new("typedef body already forced", Span::DUMMY)
                })?,
                None => {
                    return Err(DispatchError::new("internal: typedef body", Span::DUMMY))
                }
            };
            let lazy = cx.use_over(subst.as_ref(), tree, NodeKind::BlockStmts)?;
            let stmt = lazy
                .into_stmt()
                .ok_or_else(|| DispatchError::new("internal: typedef body", Span::DUMMY))?;
            Ok(Node::Stmt(Stmt::synth(StmtKind::Use(
                UseTarget::Instance(subst),
                maya_ast::Block::synth(vec![stmt]),
            ))))
        };
        env.import_mayan(Mayan::new(
            "Typedef",
            prod,
            vec![
                Param::plain(NodeKind::TokenNode),
                Param::named(NodeKind::Top, sym("head")),
                Param::named(NodeKind::BlockStmts, sym("body")),
            ],
            Rc::new(body),
        ));
        Ok(())
    }

    fn name(&self) -> &str {
        "Typedef"
    }
}
