//! `foreach` (paper §3, Figures 2, 5 and 7).
//!
//! The production — `Statement → MethodName(Formal) lazy(BraceTree,
//! BlockStmts)` — avoids making `foreach` a reserved word: each Mayan
//! specializes the `MethodName`'s final identifier to the token value
//! `foreach`, and dispatch additionally narrows on the *static type* of the
//! receiver: `Enumeration` for the general expansion, `maya.util.Vector`
//! with `.elements()` substructure for the allocation-free expansion, and
//! arrays for the index-loop expansion.

use maya_ast::{
    Expr, ExprKind, Formal, LocalDeclarator, Node, NodeKind, Stmt, StmtKind, TypeName,
};
use maya_core::{BaseProds, Compiler};
use maya_dispatch::{
    Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param, Specializer,
};
use maya_grammar::RhsItem;
use maya_lexer::{sym, Delim, Span};
use maya_template::Template;
use maya_types::{ClassTable, Type};
use std::cell::OnceCell;
use std::rc::Rc;

/// Renders a semantic type back to (strict) type-name syntax, so generated
/// casts and declarations are immune to shadowing at the splice site.
pub(crate) fn type_to_typename(ct: &ClassTable, ty: &Type) -> Result<TypeName, DispatchError> {
    match ty {
        Type::Prim(p) => Ok(TypeName::prim(*p)),
        Type::Class(c) => Ok(TypeName::strict(ct.fqcn(*c))),
        Type::Array(el) => Ok(type_to_typename(ct, el)?.array_of()),
        other => Err(DispatchError::new(
            format!("cannot name type {} in generated code", ct.describe(other)),
            Span::DUMMY,
        )),
    }
}

fn formal_of(b: &Bindings, name: &str) -> Result<Formal, DispatchError> {
    match b.get(name) {
        Some(Node::Formal(f)) => Ok(f.clone()),
        _ => Err(DispatchError::new("internal: foreach formal", Span::DUMMY)),
    }
}

/// The pieces every foreach expansion splices: the loop-variable
/// declaration, a direct reference to it, and the cast type.
fn var_parts(
    cx: &mut maya_core::CoreExpand,
    var: &Formal,
) -> Result<(Node, Node, Node), DispatchError> {
    // $(DeclStmt.make(var)) of Figure 2 line 12.
    let decl = Node::Stmt(Stmt::synth(StmtKind::Decl(
        var.ty.clone(),
        vec![LocalDeclarator::plain(var.name)],
    )));
    // $(Reference.makeExpr(var.getLocation())) of line 13: a direct
    // reference, immune to hygienic renaming.
    let refer = Node::Expr(Expr::synth(ExprKind::VarRef(var.name.sym)));
    // StrictTypeName.make(var.getType()) of line 7.
    let var_ty = cx
        .c
        .cx
        .classes
        .resolve_type_name(&var.ty, cx.resolve_ctx())
        .map_err(|e| DispatchError::new(e.message, e.span))?;
    let cast = Node::Type(type_to_typename(&cx.c.cx.classes, &var_ty)?);
    Ok((decl, refer, cast))
}

fn foreach_production(env: &mut dyn ImportEnv) -> Result<maya_grammar::ProdId, DispatchError> {
    env.add_production(
        NodeKind::Statement,
        &[
            RhsItem::Kind(NodeKind::MethodName),
            RhsItem::Subtree(Delim::Paren, vec![RhsItem::Kind(NodeKind::Formal)]),
            RhsItem::Lazy(Delim::Brace, NodeKind::BlockStmts),
        ],
    )
}

fn core_expand<'a>(ctx: &'a mut dyn ExpandCtx) -> &'a mut maya_core::CoreExpand {
    ctx.as_any()
        .downcast_mut::<maya_core::CoreExpand>()
        .expect("macro library runs under the core compiler")
}

/// Shared parameter: `MethodName` whose receiver is `recv` and whose name
/// token is `foreach`.
fn foreach_mn_param(prods: &BaseProds, recv: Param) -> Param {
    Param {
        kind: NodeKind::MethodName,
        spec: Specializer::Structure {
            prod: prods.id("mn_recv"),
            children: vec![
                recv,
                Param::plain(NodeKind::TokenNode),
                Param::plain(NodeKind::Identifier)
                    .with_spec(Specializer::TokenValue(sym("foreach"))),
            ],
        },
        name: None,
    }
}

/// The general `foreach` on `java.util.Enumeration` (Figure 2).
pub struct EForEach {
    enum_ty: Type,
    prods: BaseProds,
}

impl EForEach {
    /// Builds the extension against a class table (for the static-type
    /// specializer) and the base production table (for substructure).
    pub fn new(ct: &ClassTable, prods: &BaseProds) -> EForEach {
        EForEach {
            enum_ty: Type::Class(
                ct.by_fqcn_str("java.util.Enumeration")
                    .expect("runtime installed"),
            ),
            prods: prods.clone(),
        }
    }

    fn mayan(&self, prod: maya_grammar::ProdId) -> Rc<Mayan> {
        let template: OnceCell<Rc<Template>> = OnceCell::new();
        let body = move |b: &Bindings, ctx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            let cx = core_expand(ctx);
            let t = match template.get() {
                Some(t) => t.clone(),
                None => {
                    let t = cx.compile_template(
                        NodeKind::Statement,
                        "for (java.util.Enumeration enumVar = $enumExp ; \
                              enumVar.hasMoreElements() ; ) { \
                             $decl \
                             $ref = ($castType) enumVar.nextElement() ; \
                             $body \
                         }",
                        &[
                            ("enumExp", NodeKind::Expression),
                            ("decl", NodeKind::Statement),
                            ("ref", NodeKind::Expression),
                            ("castType", NodeKind::TypeName),
                            ("body", NodeKind::Statement),
                        ],
                    )?;
                    template.get_or_init(|| t).clone()
                }
            };
            let var = formal_of(b, "var")?;
            let (decl, refer, cast) = var_parts(cx, &var)?;
            let enum_exp = b
                .get("enumExp")
                .cloned()
                .ok_or_else(|| DispatchError::new("internal: enumExp", Span::DUMMY))?;
            let body_node = b
                .get("body")
                .cloned()
                .ok_or_else(|| DispatchError::new("internal: body", Span::DUMMY))?;
            cx.instantiate_named(
                &t,
                &[
                    ("enumExp", enum_exp),
                    ("decl", decl),
                    ("ref", refer),
                    ("castType", cast),
                    ("body", body_node),
                ],
            )
        };
        Mayan::new(
            "EForEach",
            prod,
            vec![
                foreach_mn_param(
                    &self.prods,
                    Param::named(NodeKind::Expression, sym("enumExp"))
                        .with_spec(Specializer::StaticType(self.enum_ty.clone())),
                ),
                Param::named(NodeKind::Formal, sym("var")),
                Param::named(NodeKind::BlockStmts, sym("body")),
            ],
            Rc::new(body),
        )
    }
}

impl MetaProgram for EForEach {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = foreach_production(env)?;
        env.import_mayan(self.mayan(prod));
        Ok(())
    }

    fn name(&self) -> &str {
        "EForEach"
    }
}

/// `foreach` over arrays: falls through (`nextRewrite`) when the receiver
/// is not an array.
pub struct AForEach {
    prods: BaseProds,
}

impl AForEach {
    /// Builds the extension.
    pub fn new(_ct: &ClassTable, prods: &BaseProds) -> AForEach {
        AForEach {
            prods: prods.clone(),
        }
    }

    fn mayan(&self, prod: maya_grammar::ProdId) -> Rc<Mayan> {
        let template: OnceCell<Rc<Template>> = OnceCell::new();
        let body = move |b: &Bindings, ctx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            let arr_exp = b
                .expr("arr")
                .ok_or_else(|| DispatchError::new("internal: arr", Span::DUMMY))?;
            // Only applicable when the receiver's static type is an array;
            // otherwise defer to the next Mayan (layering, paper §4.4).
            let arr_ty = ctx.static_type_of(&arr_exp)?;
            let Type::Array(_) = arr_ty else {
                return ctx.next_rewrite();
            };
            let cx = core_expand(ctx);
            let t = match template.get() {
                Some(t) => t.clone(),
                None => {
                    let t = cx.compile_template(
                        NodeKind::Statement,
                        "{ $arrDecl \
                           for (int iVar = 0 ; iVar < $arrRef.length ; iVar++) { \
                             $decl \
                             $ref = ($castType) $arrRef2[iVar] ; \
                             $body \
                           } \
                         }",
                        &[
                            ("arrDecl", NodeKind::Statement),
                            ("arrRef", NodeKind::Expression),
                            ("decl", NodeKind::Statement),
                            ("ref", NodeKind::Expression),
                            ("castType", NodeKind::TypeName),
                            ("arrRef2", NodeKind::Expression),
                            ("body", NodeKind::Statement),
                        ],
                    )?;
                    template.get_or_init(|| t).clone()
                }
            };
            let var = formal_of(b, "var")?;
            let (decl, refer, cast) = var_parts(cx, &var)?;
            // A fresh name via Environment.makeId (paper §4.3), referenced
            // directly — the array expression is evaluated exactly once.
            let arr_name = cx.c.cx.fresh("arr");
            let arr_tn = type_to_typename(&cx.c.cx.classes, &arr_ty)?;
            let arr_decl = Node::Stmt(Stmt::synth(StmtKind::Decl(
                arr_tn,
                vec![LocalDeclarator {
                    name: maya_ast::Ident::synth(arr_name),
                    dims: 0,
                    init: Some(arr_exp),
                }],
            )));
            let arr_ref = || Node::Expr(Expr::synth(ExprKind::VarRef(arr_name)));
            let body_node = b
                .get("body")
                .cloned()
                .ok_or_else(|| DispatchError::new("internal: body", Span::DUMMY))?;
            cx.instantiate_named(
                &t,
                &[
                    ("arrDecl", arr_decl),
                    ("arrRef", arr_ref()),
                    ("decl", decl),
                    ("ref", refer),
                    ("castType", cast),
                    ("arrRef2", arr_ref()),
                    ("body", body_node),
                ],
            )
        };
        Mayan::new(
            "AForEach",
            prod,
            vec![
                foreach_mn_param(
                    &self.prods,
                    Param::named(NodeKind::Expression, sym("arr")),
                ),
                Param::named(NodeKind::Formal, sym("var")),
                Param::named(NodeKind::BlockStmts, sym("body")),
            ],
            Rc::new(body),
        )
    }
}

impl MetaProgram for AForEach {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = foreach_production(env)?;
        env.import_mayan(self.mayan(prod));
        Ok(())
    }

    fn name(&self) -> &str {
        "AForEach"
    }
}

/// The optimized `foreach` on `maya.util.Vector.elements()` (§3, §4.4,
/// Figure 7): the receiver must *syntactically* be a call to `elements()`
/// whose own receiver has static type `maya.util.Vector`. The expansion
/// avoids the Enumeration allocation and the per-element calls.
pub struct VForEach {
    vector_ty: Type,
    prods: BaseProds,
}

impl VForEach {
    /// Builds the extension.
    pub fn new(ct: &ClassTable, prods: &BaseProds) -> VForEach {
        VForEach {
            vector_ty: Type::Class(
                ct.by_fqcn_str("maya.util.Vector").expect("runtime installed"),
            ),
            prods: prods.clone(),
        }
    }

    fn mayan(&self, prod: maya_grammar::ProdId) -> Rc<Mayan> {
        let template: OnceCell<Rc<Template>> = OnceCell::new();
        let body = move |b: &Bindings, ctx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            let cx = core_expand(ctx);
            let t = match template.get() {
                Some(t) => t.clone(),
                None => {
                    let t = cx.compile_template(
                        NodeKind::Statement,
                        "{ maya.util.Vector vVar = $vexp ; \
                           int lenVar = vVar.size() ; \
                           java.lang.Object[] arrVar = vVar.getElementData() ; \
                           for (int iVar = 0 ; iVar < lenVar ; iVar++) { \
                             $decl \
                             $ref = ($castType) arrVar[iVar] ; \
                             $body \
                           } \
                         }",
                        &[
                            ("vexp", NodeKind::Expression),
                            ("decl", NodeKind::Statement),
                            ("ref", NodeKind::Expression),
                            ("castType", NodeKind::TypeName),
                            ("body", NodeKind::Statement),
                        ],
                    )?;
                    template.get_or_init(|| t).clone()
                }
            };
            let var = formal_of(b, "var")?;
            let (decl, refer, cast) = var_parts(cx, &var)?;
            let vexp = b
                .get("v")
                .cloned()
                .ok_or_else(|| DispatchError::new("internal: vector receiver", Span::DUMMY))?;
            let body_node = b
                .get("body")
                .cloned()
                .ok_or_else(|| DispatchError::new("internal: body", Span::DUMMY))?;
            cx.instantiate_named(
                &t,
                &[
                    ("vexp", vexp),
                    ("decl", decl),
                    ("ref", refer),
                    ("castType", cast),
                    ("body", body_node),
                ],
            )
        };
        // The receiver parameter of Figure 7: a CallExpr `$v.elements()`
        // whose inner receiver is specialized to maya.util.Vector.
        let elements_call = Param {
            kind: NodeKind::CallExpr,
            spec: Specializer::Structure {
                prod: self.prods.id("call"),
                children: vec![
                    Param {
                        kind: NodeKind::MethodName,
                        spec: Specializer::Structure {
                            prod: self.prods.id("mn_recv"),
                            children: vec![
                                Param::named(NodeKind::Expression, sym("v"))
                                    .with_spec(Specializer::StaticType(self.vector_ty.clone())),
                                Param::plain(NodeKind::TokenNode),
                                Param::plain(NodeKind::Identifier)
                                    .with_spec(Specializer::TokenValue(sym("elements"))),
                            ],
                        },
                        name: None,
                    },
                    Param::plain(NodeKind::ArgumentList),
                ],
            },
            name: None,
        };
        Mayan::new(
            "VForEach",
            prod,
            vec![
                foreach_mn_param(&self.prods, elements_call),
                Param::named(NodeKind::Formal, sym("var")),
                Param::named(NodeKind::BlockStmts, sym("body")),
            ],
            Rc::new(body),
        )
    }
}

impl MetaProgram for VForEach {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = foreach_production(env)?;
        env.import_mayan(self.mayan(prod));
        Ok(())
    }

    fn name(&self) -> &str {
        "VForEach"
    }
}

/// The aggregate of all foreach Mayans — the paper's `maya.util.Foreach`
/// class, whose `run` "instantiates and runs each built-in foreach Mayan in
/// turn" (§3.3).
pub struct Foreach {
    e: EForEach,
    a: AForEach,
    v: VForEach,
}

impl Foreach {
    /// Builds the aggregate.
    pub fn new(ct: &ClassTable, prods: &BaseProds) -> Foreach {
        Foreach {
            e: EForEach::new(ct, prods),
            a: AForEach::new(ct, prods),
            v: VForEach::new(ct, prods),
        }
    }

    /// Convenience: build from a compiler.
    pub fn from_compiler(c: &Compiler) -> Foreach {
        Foreach::new(&c.classes(), &c.base().prods)
    }
}

impl MetaProgram for Foreach {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        self.e.run(env)?;
        self.a.run(env)?;
        self.v.run(env)?;
        Ok(())
    }

    fn name(&self) -> &str {
        "maya.util.Foreach"
    }
}
