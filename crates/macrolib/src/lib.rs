//! The Maya macro library (paper §3): `foreach` over `Enumeration`s with
//! the statically-dispatched optimized variants (`VForEach` on
//! `maya.util.Vector`, array `foreach`), `assert`, printf-style `format`,
//! and Figure 3's `typedef` built from *local Mayans*.
//!
//! Every extension here is a [`maya_dispatch::MetaProgram`]: importing it
//! with `use` adds productions and Mayans to the lexical scope of the
//! import, exactly as compiled extension classes do in the paper.

mod assert;
mod comprehension;
mod foreach;
mod format;
mod typedef;

pub use assert::Assert;
pub use comprehension::Comprehension;
pub use foreach::{AForEach, EForEach, Foreach, VForEach};
pub use format::Format;
pub use typedef::Typedef;

use maya_core::Compiler;

/// Registers the whole library with a compiler, under the names used in the
/// paper (`maya.util.Foreach` imports all foreach Mayans at once) plus
/// short aliases.
pub fn install(compiler: &Compiler) {
    let classes = compiler.classes();
    let prods = compiler.base().prods.clone();
    let all = std::rc::Rc::new(Foreach::new(&classes, &prods));
    compiler.register_metaprogram("maya.util.Foreach", all.clone());
    compiler.register_metaprogram("Foreach", all);
    compiler.register_metaprogram(
        "EForEach",
        std::rc::Rc::new(EForEach::new(&classes, &prods)),
    );
    compiler.register_metaprogram(
        "VForEach",
        std::rc::Rc::new(VForEach::new(&classes, &prods)),
    );
    compiler.register_metaprogram(
        "AForEach",
        std::rc::Rc::new(AForEach::new(&classes, &prods)),
    );
    compiler.register_metaprogram("maya.util.Assert", std::rc::Rc::new(Assert));
    compiler.register_metaprogram("Assert", std::rc::Rc::new(Assert));
    compiler.register_metaprogram("maya.util.Format", std::rc::Rc::new(Format));
    compiler.register_metaprogram("Format", std::rc::Rc::new(Format));
    compiler.register_metaprogram("Typedef", std::rc::Rc::new(Typedef::new(&prods)));
    compiler.register_metaprogram(
        "maya.util.Comprehension",
        std::rc::Rc::new(Comprehension),
    );
    compiler.register_metaprogram("Comprehension", std::rc::Rc::new(Comprehension));
}

/// A compiler with the macro library pre-registered.
pub fn compiler_with_macros() -> Compiler {
    let c = Compiler::new();
    install(&c);
    c
}
