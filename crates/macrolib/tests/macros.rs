//! `assert`, `format`, and Figure 3's `typedef` (local Mayans, E4).

use maya_macrolib::compiler_with_macros;

fn run(src: &str) -> String {
    let c = compiler_with_macros();
    match c.compile_and_run("Main.maya", src, "Main") {
        Ok(out) => out,
        Err(e) => panic!("compile/run failed: {} @ {:?}", e.message, e.span),
    }
}

#[test]
fn assert_passes_and_fails_with_source_text() {
    let out = run(r#"
        class Main {
            static void main() {
                use Assert;
                int x = 2;
                assert(x + x == 4);
                System.out.println("ok");
                try {
                    assert(x * x == 5);
                } catch (RuntimeException e) {
                    System.out.println(e.getMessage());
                }
            }
        }
    "#);
    assert_eq!(out, "ok\nassertion failed: (x * x) == 5\n");
}

#[test]
fn assert_is_scoped() {
    let src = r#"
        class Main {
            static void main() {
                assert(true);
            }
        }
    "#;
    let c = compiler_with_macros();
    assert!(c.compile_and_run("Main.maya", src, "Main").is_err());
}

#[test]
fn format_expands_to_concatenation() {
    let out = run(r#"
        class Main {
            static void main() {
                use Format;
                int n = 3;
                String s = format("n=%s and n+1=%s!", n, n + 1);
                System.out.println(s);
            }
        }
    "#);
    assert_eq!(out, "n=3 and n+1=4!\n");
}

#[test]
fn format_arity_is_checked_at_compile_time() {
    let src = r#"
        class Main {
            static void main() {
                use Format;
                System.out.println(format("%s %s", 1));
            }
        }
    "#;
    let c = compiler_with_macros();
    let err = c.compile_and_run("Main.maya", src, "Main").unwrap_err();
    assert!(err.message.contains("placeholder"), "{}", err.message);
}

#[test]
fn format_requires_a_literal() {
    let src = r#"
        class Main {
            static void main() {
                use Format;
                String f = "%s";
                System.out.println(format(f, 1));
            }
        }
    "#;
    let c = compiler_with_macros();
    assert!(c.compile_and_run("Main.maya", src, "Main").is_err());
}

#[test]
fn e4_typedef_aliases_a_class_locally() {
    // Figure 3: typedef defines an alternate name for a class within a
    // block of statements, via a local Mayan closed over var/val.
    let out = run(r#"
        import java.util.*;
        class Main {
            static void main() {
                use Typedef;
                typedef (Table = java.util.Hashtable) {
                    Table t = new Table();
                    t.put("k", "v");
                    System.out.println(t.get("k"));
                    System.out.println(t instanceof Hashtable);
                }
            }
        }
    "#);
    assert_eq!(out, "v\ntrue\n");
}

#[test]
fn e4_typedef_scope_ends_with_the_block() {
    let src = r#"
        import java.util.*;
        class Main {
            static void main() {
                use Typedef;
                typedef (Table = java.util.Hashtable) {
                    Table t = new Table();
                }
                Table t2 = new Table();
            }
        }
    "#;
    let c = compiler_with_macros();
    assert!(
        c.compile_and_run("Main.maya", src, "Main").is_err(),
        "the alias must not escape the typedef block"
    );
}

#[test]
fn macros_compose() {
    let out = run(r#"
        import java.util.*;
        class Main {
            static void main() {
                use Foreach;
                use Assert;
                use Format;
                Vector v = new Vector();
                v.addElement("a");
                v.addElement("b");
                assert(v.size() == 2);
                v.elements().foreach(String st) {
                    System.out.println(format("item: %s", st));
                }
            }
        }
    "#);
    assert_eq!(out, "item: a\nitem: b\n");
}

#[test]
fn comprehension_builds_collections() {
    let out = run(r#"
        import java.util.*;
        class Main {
            static void main() {
                use Comprehension;
                use Foreach;
                Vector numbers = new Vector();
                numbers.addElement("1");
                numbers.addElement("2");
                numbers.addElement("3");
                Vector doubled = new Vector();
                into(doubled, s + s each String s : numbers);
                doubled.elements().foreach(String d) {
                    System.out.println(d);
                }
            }
        }
    "#);
    assert_eq!(out, "11\n22\n33\n");
}
