//! E1–E3: the paper's `foreach` — expansion shape, type-directed selection
//! of the optimized variant, hygiene, and end-to-end behaviour.

use maya_ast::{normalize_generated_names, pretty_node};
use maya_core::Compiler;
use maya_macrolib::compiler_with_macros;

fn run(src: &str) -> String {
    let c = compiler_with_macros();
    match c.compile_and_run("Main.maya", src, "Main") {
        Ok(out) => out,
        Err(e) => panic!("compile/run failed: {} @ {:?}", e.message, e.span),
    }
}

/// The pretty-printed, α-normalized body of `Main.main` after compilation.
fn expanded_main(c: &Compiler) -> String {
    let classes = c.classes();
    let id = classes.by_fqcn_str("Main").expect("class Main");
    let info = classes.info(id);
    let info = info.borrow();
    let m = info
        .methods
        .iter()
        .find(|m| m.name.as_str() == "main")
        .expect("method main");
    let node = m
        .body
        .as_ref()
        .expect("main has a body")
        .forced_node()
        .expect("body forced by compile()");
    normalize_generated_names(&pretty_node(&node))
}

/// Paper §3's first example: foreach over a Hashtable's keys.
const HASHTABLE_FOREACH: &str = r#"
    import java.util.*;
    class Main {
        static void main() {
            Hashtable h = new Hashtable();
            h.put("a", "1");
            h.put("b", "2");
            use EForEach;
            h.keys().foreach(String st) {
                System.out.println(st + " = " + h.get(st));
            }
        }
    }
"#;

#[test]
fn e1_hashtable_foreach_runs() {
    assert_eq!(run(HASHTABLE_FOREACH), "a = 1\nb = 2\n");
}

#[test]
fn e1_expansion_matches_figure() {
    // §3: the use expands to a for-loop over a hygienic Enumeration
    // variable, declaring the user's variable and casting nextElement().
    let c = compiler_with_macros();
    c.add_source("Main.maya", HASHTABLE_FOREACH).unwrap();
    c.compile().unwrap();
    let body = expanded_main(&c);
    assert!(
        body.contains("for (java.util.Enumeration g$1 = h.keys(); g$1.hasMoreElements(); )"),
        "missing enumeration loop in:\n{body}"
    );
    assert!(body.contains("String st;"), "missing declaration in:\n{body}");
    assert!(
        body.contains("st = ((java.lang.String) g$1.nextElement());"),
        "missing cast assignment in:\n{body}"
    );
    assert!(
        body.contains("System.out.println"),
        "user body missing in:\n{body}"
    );
}

#[test]
fn e2_vector_foreach_selects_optimized_variant() {
    // §3/§4.4: `v.elements().foreach` on maya.util.Vector picks VForEach —
    // dispatch on substructure (a call to elements()) *and* the receiver's
    // static type.
    let src = r#"
        class Main {
            static void main() {
                maya.util.Vector v = new maya.util.Vector();
                v.addElement("x");
                v.addElement("y");
                use Foreach;
                v.elements().foreach(String st) {
                    System.out.println(st);
                }
            }
        }
    "#;
    let c = compiler_with_macros();
    c.add_source("Main.maya", src).unwrap();
    c.compile().unwrap();
    let body = expanded_main(&c);
    assert!(
        body.contains("getElementData()"),
        "VForEach's allocation-free expansion not selected:\n{body}"
    );
    assert!(
        !body.contains("hasMoreElements"),
        "EForEach used despite more specific VForEach:\n{body}"
    );
    assert_eq!(c.run_main("Main").unwrap(), "x\ny\n");
}

#[test]
fn e2_plain_vector_uses_eforeach() {
    // java.util.Vector (not maya.util.Vector): VForEach's static-type
    // specializer does not match, EForEach does.
    let src = r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("a");
                use Foreach;
                v.elements().foreach(String st) {
                    System.out.println(st);
                }
            }
        }
    "#;
    let c = compiler_with_macros();
    c.add_source("Main.maya", src).unwrap();
    c.compile().unwrap();
    let body = expanded_main(&c);
    assert!(body.contains("hasMoreElements"), "expected EForEach:\n{body}");
    assert_eq!(c.run_main("Main").unwrap(), "a\n");
}

#[test]
fn array_foreach() {
    let out = run(r#"
        class Main {
            static void main() {
                int[] a = new int[4];
                for (int i = 0; i < 4; i++) { a[i] = i * 10; }
                use Foreach;
                a.foreach(int x) {
                    System.out.println(x);
                }
            }
        }
    "#);
    assert_eq!(out, "0\n10\n20\n30\n");
}

#[test]
fn hygiene_user_enumvar_is_not_captured() {
    // §4.3: the template's enumVar must not interfere with the user's.
    let out = run(r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("z");
                String enumVar = "mine";
                use Foreach;
                v.elements().foreach(String st) {
                    System.out.println(enumVar + " " + st);
                }
                System.out.println(enumVar);
            }
        }
    "#);
    assert_eq!(out, "mine z\nmine\n");
}

#[test]
fn foreach_requires_an_import() {
    // Mayans are lexically scoped: without `use`, the production is not in
    // the grammar and the call-with-block shape is a syntax error.
    let src = r#"
        import java.util.*;
        class Main {
            static void main() {
                Hashtable h = new Hashtable();
                h.keys().foreach(String st) {
                    System.out.println(st);
                }
            }
        }
    "#;
    let c = compiler_with_macros();
    assert!(c.compile_and_run("Main.maya", src, "Main").is_err());
}

#[test]
fn foreach_is_not_a_reserved_word() {
    // A method named foreach still works, even with the import in scope.
    let out = run(r#"
        class Helper {
            static int foreach(int x) { return x + 1; }
        }
        class Main {
            static void main() {
                use Foreach;
                System.out.println(Helper.foreach(41));
            }
        }
    "#);
    assert_eq!(out, "42\n");
}

#[test]
fn import_scope_is_lexical() {
    // The import in one method does not leak into another.
    let src = r#"
        import java.util.*;
        class Main {
            static void one() {
                Vector v = new Vector();
                use Foreach;
                v.elements().foreach(String st) { System.out.println(st); }
            }
            static void two() {
                Vector v = new Vector();
                v.elements().foreach(String st) { System.out.println(st); }
            }
            static void main() { one(); }
        }
    "#;
    let c = compiler_with_macros();
    assert!(
        c.compile_and_run("Main.maya", src, "Main").is_err(),
        "method two() must not see one()'s import"
    );
}

#[test]
fn paper_showem_example_verbatim() {
    // §3.3's showEm, modulo our runner: the use directive inside a method
    // body scopes the translation to that body only.
    let out = run(r#"
        import java.util.*;
        class Main {
            static void showEm(Enumeration e) {
                use EForEach;
                e.foreach(Object o) {
                    System.out.println(o);
                }
            }
            static void main() {
                Vector v = new Vector();
                v.addElement("one");
                v.addElement("two");
                showEm(v.elements());
            }
        }
    "#);
    assert_eq!(out, "one\ntwo\n");
}

#[test]
fn foreach_on_parameter_types_uses_static_dispatch() {
    // The receiver is a *parameter* — its static type (Enumeration) drives
    // the dispatch even though the dynamic value is a VectorEnumeration.
    let src = r#"
        import java.util.*;
        class Main {
            static void dump(Enumeration e) {
                use Foreach;
                e.foreach(String s) { System.out.println(s); }
            }
            static void main() {
                Vector v = new Vector();
                v.addElement("param");
                dump(v.elements());
            }
        }
    "#;
    let c = compiler_with_macros();
    c.add_source("Main.maya", src).unwrap();
    c.compile().unwrap();
    assert_eq!(c.run_main("Main").unwrap(), "param\n");
}
