//! The mayac command-line driver.

use std::process::Command;

fn mayac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mayac"))
}

fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mayac-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p
}

#[test]
fn compiles_and_runs_a_file() {
    let f = write_temp(
        "hello.maya",
        r#"class Main { static void main() { System.out.println("cli ok"); } }"#,
    );
    let out = mayac().arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "cli ok\n");
}

#[test]
fn use_option_imports_globally() {
    // The paper's -use command-line option (§3.3): the macro is available
    // without a use directive in the source.
    let f = write_temp(
        "glob.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("via -use");
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
        "#,
    );
    let out = mayac().arg("-use").arg("Foreach").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "via -use\n");
}

#[test]
fn expand_prints_expansions() {
    let f = write_temp(
        "exp.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                use Foreach;
                v.elements().foreach(String s) { System.out.println(s); }
            }
        }
        "#,
    );
    let out = mayac().arg("--expand").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hasMoreElements"), "{stdout}");
}

#[test]
fn dump_bytecode_disassembles_methods() {
    let f = write_temp(
        "bc.maya",
        r#"
        class Main {
            static int add(int a, int b) { return a + b; }
            static void main() {
                int s = 0;
                for (int i = 0; i < 5; i++) { s = add(s, i); }
                System.out.println(s);
            }
        }
        "#,
    );
    let out = mayac().arg("--dump-bytecode").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Program output precedes the disassembly.
    assert!(stdout.starts_with("10
"), "{stdout}");
    assert!(stdout.contains("--- bytecode Main.main ---"), "{stdout}");
    assert!(stdout.contains("--- bytecode Main.add ---"), "{stdout}");
    // Register/header shape of the listing.
    assert!(stdout.contains("params=2"), "{stdout}");
    assert!(stdout.contains("ret_null"), "{stdout}");

    // `--dump-bytecode=METHOD` filters to one method.
    let out = mayac().arg("--dump-bytecode=add").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--- bytecode Main.add ---"), "{stdout}");
    assert!(!stdout.contains("--- bytecode Main.main ---"), "{stdout}");
}

#[test]
fn errors_exit_nonzero_with_message() {
    let f = write_temp("bad.maya", "class Main { static void main() { int x = ; } }");
    let out = mayac().arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mayac:"), "{stderr}");
}

#[test]
fn main_class_selection() {
    let f = write_temp(
        "other.maya",
        r#"class App { static void main() { System.out.println("app"); } }"#,
    );
    let out = mayac().arg("--main").arg("App").arg(&f).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "app\n");
}

// ---- observability flags -----------------------------------------------------

const HELLO: &str = r#"class Main { static void main() { System.out.println("obs"); } }"#;

#[test]
fn successful_run_has_clean_stderr() {
    let f = write_temp("clean.maya", HELLO);
    let out = mayac().arg(&f).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stderr), "", "stderr must be silent");
}

#[test]
fn time_passes_prints_phase_table() {
    let f = write_temp("tp.maya", HELLO);
    let out = mayac().arg("--time-passes").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Program output stays on stdout, the table on stderr.
    assert_eq!(String::from_utf8_lossy(&out.stdout), "obs\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in ["phase", "parse", "dispatch", "interp", "total (wall)"] {
        assert!(stderr.contains(needle), "missing {needle:?} in:\n{stderr}");
    }
}

#[test]
fn stats_prints_json_to_stderr() {
    let f = write_temp("st.maya", HELLO);
    let out = mayac().arg("--stats").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "obs\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"schema\": \"maya-telemetry/1\""), "{stderr}");
    assert!(maya::telemetry::json_counter(&stderr, "tokens_lexed").unwrap() > 0);
    assert!(maya::telemetry::json_counter(&stderr, "parser_reductions").unwrap() > 0);
}

#[test]
fn stats_writes_file() {
    let f = write_temp("stf.maya", HELLO);
    let json_path = write_temp("stats-out.json", "");
    let out = mayac()
        .arg(format!("--stats={}", json_path.display()))
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stderr), "", "file mode keeps stderr clean");
    let doc = std::fs::read_to_string(&json_path).unwrap();
    assert!(doc.contains("\"schema\": \"maya-telemetry/1\""));
    assert!(maya::telemetry::json_counter(&doc, "interp_calls").unwrap() > 0);
}

#[test]
fn stats_shows_laziness_on_the_example_workload() {
    // The shipped example workload imports two source Mayans but only uses
    // one; the unused Mayan's body must never be forced (paper §4).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let ext = root.join("examples/maya/eforeach_ext.maya");
    let app = root.join("examples/maya/eforeach_app.maya");
    let out = mayac().arg("--stats").arg(&ext).arg(&app).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let created = maya::telemetry::json_counter(&stderr, "lazy_nodes_created").unwrap();
    let forced = maya::telemetry::json_counter(&stderr, "lazy_nodes_forced").unwrap();
    assert!(
        forced < created,
        "expected strictly lazy compile: forced={forced} created={created}"
    );
}

#[test]
fn trace_expansion_streams_events() {
    let f = write_temp(
        "tr.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("t");
                use Foreach;
                v.elements().foreach(String s) { System.out.println(s); }
            }
        }
        "#,
    );
    let out = mayac().arg("--trace-expansion").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[dispatch]"), "{stderr}");
    assert!(stderr.contains("[import] Foreach"), "{stderr}");
    assert!(stderr.contains("reduced by Mayan"), "{stderr}");
}

#[test]
fn trace_expansion_filter_narrows_output() {
    let f = write_temp(
        "trf.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                use Foreach;
                v.elements().foreach(String s) { System.out.println(s); }
            }
        }
        "#,
    );
    let all = mayac().arg("--trace-expansion").arg(&f).output().unwrap();
    let filtered = mayac().arg("--trace-expansion=import").arg(&f).output().unwrap();
    assert!(all.status.success() && filtered.status.success());
    let all_lines = all.stderr.iter().filter(|b| **b == b'\n').count();
    let filtered_stderr = String::from_utf8_lossy(&filtered.stderr);
    let filtered_lines = filtered_stderr.lines().count();
    assert!(filtered_lines > 0, "filter must keep matching events");
    assert!(filtered_lines < all_lines, "filter must drop non-matching events");
    for line in filtered_stderr.lines() {
        assert!(line.contains("import"), "{line}");
    }
}

/// Parses a `--trace-out` file and returns its traceEvents array,
/// validating the fields every Chrome trace viewer requires.
fn read_trace(path: &std::path::Path) -> Vec<maya::core::json::Json> {
    use maya::core::json::{parse_json, Json};
    let text = std::fs::read_to_string(path).expect("trace file written");
    let doc = parse_json(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .to_vec();
    for e in &events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"), "complete events only");
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ts").is_some() && e.get("dur").is_some());
        assert!(e.get("pid").and_then(Json::as_u64).is_some());
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
    }
    events
}

fn trace_names(events: &[maya::core::json::Json]) -> Vec<String> {
    use maya::core::json::Json;
    events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str).map(str::to_owned))
        .collect()
}

#[test]
fn trace_out_writes_chrome_trace() {
    let f = write_temp("trace.maya", HELLO);
    let trace = f.parent().unwrap().join("trace-out/pipeline.json");
    let out = mayac()
        .arg(format!("--trace-out={}", trace.display()))
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "obs\n");
    assert_eq!(String::from_utf8_lossy(&out.stderr), "", "trace mode keeps stderr clean");
    let events = read_trace(&trace);
    let names = trace_names(&events);
    for want in ["lex_file", "parse", "interp"] {
        assert!(names.iter().any(|n| n == want), "missing {want:?} in {names:?}");
    }
}

#[test]
fn trace_out_merges_worker_threads_under_jobs() {
    // Two files lexed on two workers: the merged trace must still carry
    // one lex_file event per file (satellite: absorb splices span trees).
    let a = write_temp(
        "jobs_a.maya",
        r#"class Helper { static int twice(int n) { return n * 2; } }"#,
    );
    let b = write_temp(
        "jobs_b.maya",
        r#"class Main { static void main() { System.out.println(Helper.twice(21)); } }"#,
    );
    let trace = a.parent().unwrap().join("trace-jobs.json");
    let out = mayac()
        .arg("--jobs=2")
        .arg(format!("--trace-out={}", trace.display()))
        .arg(&a)
        .arg(&b)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "42\n");
    let events = read_trace(&trace);
    let lexes = trace_names(&events).iter().filter(|n| *n == "lex_file").count();
    assert_eq!(lexes, 2, "one lex_file event per input file");
}

#[test]
fn time_passes_tree_prints_nested_spans() {
    let f = write_temp("tree.maya", HELLO);
    let out = mayac().arg("--time-passes=tree").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "obs\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in ["span", "calls", "total", "self", "total (wall)"] {
        assert!(stderr.contains(needle), "missing {needle:?} in:\n{stderr}");
    }
    // Nesting shows as two-space indentation under a parent span.
    assert!(
        stderr.lines().any(|l| l.starts_with("  ") && !l.trim().is_empty()),
        "tree mode must indent child spans:\n{stderr}"
    );
}

#[test]
fn profile_interp_reports_hot_methods() {
    let f = write_temp(
        "prof.maya",
        r#"
        class Main {
            static int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
            static void main() { System.out.println(fib(12)); }
        }
        "#,
    );
    let out = mayac().arg("--profile-interp=5").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "144\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("interpreter profile (top 5)"), "{stderr}");
    assert!(stderr.contains("Main.fib/1"), "{stderr}");
    assert!(stderr.contains("call sites (inline caches)"), "{stderr}");
    assert!(stderr.contains("hot binary-op pairs"), "{stderr}");
}

#[test]
fn bad_flags_error_cleanly() {
    let cases: &[&[&str]] = &[
        &["--stats=", "x.maya"],
        &["--bogus", "x.maya"],
        &["-use"],
        &["--main"],
        &["--trace-out=", "x.maya"],
        &["--time-passes=bogus", "x.maya"],
        &["--profile-interp=0", "x.maya"],
        &[],
    ];
    for args in cases {
        let out = mayac().args(*args).output().unwrap();
        assert!(!out.status.success(), "args {args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("mayac:"), "args {args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn errors_carry_source_locations() {
    let f = write_temp("loc.maya", "class Main { static void main() { int x = ; } }");
    let out = mayac().arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // file:line:col rendering via the source map.
    assert!(stderr.contains("loc.maya:1:"), "{stderr}");
}

#[test]
fn stats_file_creates_missing_parent_dirs() {
    let f = write_temp(
        "statdir.maya",
        r#"class Main { static void main() { System.out.println("s"); } }"#,
    );
    let stats = f
        .parent()
        .unwrap()
        .join("deep/nested/dirs")
        .join("stats.json");
    let out = mayac()
        .arg(format!("--stats={}", stats.display()))
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body = std::fs::read_to_string(&stats).expect("stats file written under created dirs");
    assert!(body.contains("\"counters\""), "{body}");
}

#[test]
fn table_cache_creates_missing_parent_dirs() {
    let f = write_temp(
        "cachedir.maya",
        r#"class Main { static void main() { System.out.println("c"); } }"#,
    );
    let cache = f.parent().unwrap().join("cache/goes/here");
    let out = mayac()
        .arg(format!("--table-cache={}", cache.display()))
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(cache.is_dir(), "--table-cache must create the directory tree");
    let entries = std::fs::read_dir(&cache).unwrap().count();
    assert!(entries >= 1, "at least one LALR table should be cached on disk");
}

#[test]
fn mayad_shutdown_drains_inflight_requests_and_cleans_up() {
    use maya::core::json::{parse_json, Json};
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::UnixStream;

    let dir = std::env::temp_dir().join(format!("mayad-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("p.maya"),
        r#"class Main { static void main() { System.out.println("drained"); } }"#,
    )
    .unwrap();
    let sock = dir.join("mayad.sock");
    let stats = dir.join("stats/out.json");
    let mut child = Command::new(env!("CARGO_BIN_EXE_mayad"))
        .current_dir(&dir)
        .arg(format!("--socket={}", sock.display()))
        .arg(format!("--stats={}", stats.display()))
        .arg("--workers=2")
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let mut conn_a = None;
    for _ in 0..400 {
        if let Ok(s) = UnixStream::connect(&sock) {
            conn_a = Some(s);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let mut conn_a = conn_a.expect("mayad did not come up");

    // Connection A pipelines a slow request plus a compile and does NOT
    // read the replies yet.
    conn_a
        .write_all(b"{\"cmd\":\"sleep\",\"ms\":500}\n{\"files\":[\"p.maya\"]}\n")
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));

    // Connection B orders a shutdown while A's requests are in flight.
    let mut conn_b = UnixStream::connect(&sock).unwrap();
    conn_b.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
    let mut bye = String::new();
    BufReader::new(conn_b).read_line(&mut bye).unwrap();
    assert!(bye.contains("\"bye\""), "shutdown must be acknowledged: {bye}");

    // Shutdown drains: A still receives both real replies, in order.
    let mut reader = BufReader::new(conn_a);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let slept = parse_json(&line).unwrap();
    assert_eq!(slept.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    assert_eq!(slept.get("slept_ms").and_then(Json::as_u64), Some(500), "{line}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    let compiled = parse_json(&line).unwrap();
    assert_eq!(compiled.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    assert_eq!(compiled.get("success").and_then(Json::as_bool), Some(true), "{line}");
    assert_eq!(compiled.get("stdout").and_then(Json::as_str), Some("drained\n"), "{line}");

    // Clean exit: success status, socket removed, stats file written.
    let status = child.wait().unwrap();
    assert!(status.success(), "mayad must exit zero after shutdown");
    assert!(!sock.exists(), "socket file must be removed on shutdown");
    let doc = std::fs::read_to_string(&stats).expect("stats file written under created dirs");
    let parsed = parse_json(&doc).expect("stats file must be valid JSON");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("maya-telemetry/1"),
        "{doc}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_flag_is_accepted_in_usage() {
    // `--watch` never exits on its own, so only pin that the usage string
    // advertises it (a bad flag prints usage and fails).
    let out = mayac().arg("--definitely-bogus").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--watch"), "usage must mention --watch: {stderr}");
}

#[test]
fn watch_survives_delete_and_detects_recreation() {
    use std::io::Read as _;
    use std::sync::{Arc, Mutex};

    let dir = std::env::temp_dir().join(format!("mayac-watch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("watched.maya");
    std::fs::write(&f, r#"class Main { static void main() { System.out.println("one"); } }"#)
        .unwrap();

    let mut child = mayac()
        .current_dir(&dir)
        .arg("--watch")
        .arg("watched.maya")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // Drain both pipes into shared buffers so the child never blocks.
    let collect = |mut pipe: Box<dyn std::io::Read + Send>| {
        let buf = Arc::new(Mutex::new(String::new()));
        let b = buf.clone();
        std::thread::spawn(move || {
            let mut chunk = [0u8; 1024];
            while let Ok(n) = pipe.read(&mut chunk) {
                if n == 0 {
                    break;
                }
                b.lock().unwrap().push_str(&String::from_utf8_lossy(&chunk[..n]));
            }
        });
        buf
    };
    let stdout = collect(Box::new(child.stdout.take().unwrap()));
    let stderr = collect(Box::new(child.stderr.take().unwrap()));
    let wait_for = |buf: &Arc<Mutex<String>>, needle: &str, secs: u64| {
        for _ in 0..secs * 20 {
            if buf.lock().unwrap().contains(needle) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!(
            "timed out waiting for {needle:?}\n-- stdout --\n{}\n-- stderr --\n{}",
            stdout.lock().unwrap(),
            stderr.lock().unwrap()
        );
    };

    // Round 1: the initial build runs the program.
    wait_for(&stdout, "one", 20);
    wait_for(&stderr, "round 1: ok", 20);

    // Delete the file and leave it deleted: after the grace window the
    // watcher says so and rebuilds without it (a diagnostic, not a hang
    // or an exit).
    std::fs::remove_file(&f).unwrap();
    wait_for(&stderr, "disappeared and did not come back", 20);
    wait_for(&stderr, "round 2: failed", 20);

    // Re-create the file (new inode): the watcher notices and rebuilds.
    std::fs::write(&f, r#"class Main { static void main() { System.out.println("two"); } }"#)
        .unwrap();
    wait_for(&stdout, "two", 20);

    let _ = child.kill();
    let _ = child.wait();
}
