//! The mayac command-line driver.

use std::process::Command;

fn mayac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mayac"))
}

fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mayac-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p
}

#[test]
fn compiles_and_runs_a_file() {
    let f = write_temp(
        "hello.maya",
        r#"class Main { static void main() { System.out.println("cli ok"); } }"#,
    );
    let out = mayac().arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "cli ok\n");
}

#[test]
fn use_option_imports_globally() {
    // The paper's -use command-line option (§3.3): the macro is available
    // without a use directive in the source.
    let f = write_temp(
        "glob.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("via -use");
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
        "#,
    );
    let out = mayac().arg("-use").arg("Foreach").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "via -use\n");
}

#[test]
fn expand_prints_expansions() {
    let f = write_temp(
        "exp.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                use Foreach;
                v.elements().foreach(String s) { System.out.println(s); }
            }
        }
        "#,
    );
    let out = mayac().arg("--expand").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hasMoreElements"), "{stdout}");
}

#[test]
fn errors_exit_nonzero_with_message() {
    let f = write_temp("bad.maya", "class Main { static void main() { int x = ; } }");
    let out = mayac().arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mayac:"), "{stderr}");
}

#[test]
fn main_class_selection() {
    let f = write_temp(
        "other.maya",
        r#"class App { static void main() { System.out.println("app"); } }"#,
    );
    let out = mayac().arg("--main").arg("App").arg(&f).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "app\n");
}

// ---- observability flags -----------------------------------------------------

const HELLO: &str = r#"class Main { static void main() { System.out.println("obs"); } }"#;

#[test]
fn successful_run_has_clean_stderr() {
    let f = write_temp("clean.maya", HELLO);
    let out = mayac().arg(&f).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stderr), "", "stderr must be silent");
}

#[test]
fn time_passes_prints_phase_table() {
    let f = write_temp("tp.maya", HELLO);
    let out = mayac().arg("--time-passes").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Program output stays on stdout, the table on stderr.
    assert_eq!(String::from_utf8_lossy(&out.stdout), "obs\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in ["phase", "parse", "dispatch", "interp", "total (wall)"] {
        assert!(stderr.contains(needle), "missing {needle:?} in:\n{stderr}");
    }
}

#[test]
fn stats_prints_json_to_stderr() {
    let f = write_temp("st.maya", HELLO);
    let out = mayac().arg("--stats").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "obs\n");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"schema\": \"maya-telemetry/1\""), "{stderr}");
    assert!(maya::telemetry::json_counter(&stderr, "tokens_lexed").unwrap() > 0);
    assert!(maya::telemetry::json_counter(&stderr, "parser_reductions").unwrap() > 0);
}

#[test]
fn stats_writes_file() {
    let f = write_temp("stf.maya", HELLO);
    let json_path = write_temp("stats-out.json", "");
    let out = mayac()
        .arg(format!("--stats={}", json_path.display()))
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stderr), "", "file mode keeps stderr clean");
    let doc = std::fs::read_to_string(&json_path).unwrap();
    assert!(doc.contains("\"schema\": \"maya-telemetry/1\""));
    assert!(maya::telemetry::json_counter(&doc, "interp_calls").unwrap() > 0);
}

#[test]
fn stats_shows_laziness_on_the_example_workload() {
    // The shipped example workload imports two source Mayans but only uses
    // one; the unused Mayan's body must never be forced (paper §4).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let ext = root.join("examples/maya/eforeach_ext.maya");
    let app = root.join("examples/maya/eforeach_app.maya");
    let out = mayac().arg("--stats").arg(&ext).arg(&app).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let created = maya::telemetry::json_counter(&stderr, "lazy_nodes_created").unwrap();
    let forced = maya::telemetry::json_counter(&stderr, "lazy_nodes_forced").unwrap();
    assert!(
        forced < created,
        "expected strictly lazy compile: forced={forced} created={created}"
    );
}

#[test]
fn trace_expansion_streams_events() {
    let f = write_temp(
        "tr.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("t");
                use Foreach;
                v.elements().foreach(String s) { System.out.println(s); }
            }
        }
        "#,
    );
    let out = mayac().arg("--trace-expansion").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[dispatch]"), "{stderr}");
    assert!(stderr.contains("[import] Foreach"), "{stderr}");
    assert!(stderr.contains("reduced by Mayan"), "{stderr}");
}

#[test]
fn trace_expansion_filter_narrows_output() {
    let f = write_temp(
        "trf.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                use Foreach;
                v.elements().foreach(String s) { System.out.println(s); }
            }
        }
        "#,
    );
    let all = mayac().arg("--trace-expansion").arg(&f).output().unwrap();
    let filtered = mayac().arg("--trace-expansion=import").arg(&f).output().unwrap();
    assert!(all.status.success() && filtered.status.success());
    let all_lines = all.stderr.iter().filter(|b| **b == b'\n').count();
    let filtered_stderr = String::from_utf8_lossy(&filtered.stderr);
    let filtered_lines = filtered_stderr.lines().count();
    assert!(filtered_lines > 0, "filter must keep matching events");
    assert!(filtered_lines < all_lines, "filter must drop non-matching events");
    for line in filtered_stderr.lines() {
        assert!(line.contains("import"), "{line}");
    }
}

#[test]
fn bad_flags_error_cleanly() {
    let cases: &[&[&str]] = &[
        &["--stats=", "x.maya"],
        &["--bogus", "x.maya"],
        &["-use"],
        &["--main"],
        &[],
    ];
    for args in cases {
        let out = mayac().args(*args).output().unwrap();
        assert!(!out.status.success(), "args {args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("mayac:"), "args {args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn errors_carry_source_locations() {
    let f = write_temp("loc.maya", "class Main { static void main() { int x = ; } }");
    let out = mayac().arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // file:line:col rendering via the source map.
    assert!(stderr.contains("loc.maya:1:"), "{stderr}");
}

#[test]
fn stats_file_creates_missing_parent_dirs() {
    let f = write_temp(
        "statdir.maya",
        r#"class Main { static void main() { System.out.println("s"); } }"#,
    );
    let stats = f
        .parent()
        .unwrap()
        .join("deep/nested/dirs")
        .join("stats.json");
    let out = mayac()
        .arg(format!("--stats={}", stats.display()))
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body = std::fs::read_to_string(&stats).expect("stats file written under created dirs");
    assert!(body.contains("\"counters\""), "{body}");
}

#[test]
fn table_cache_creates_missing_parent_dirs() {
    let f = write_temp(
        "cachedir.maya",
        r#"class Main { static void main() { System.out.println("c"); } }"#,
    );
    let cache = f.parent().unwrap().join("cache/goes/here");
    let out = mayac()
        .arg(format!("--table-cache={}", cache.display()))
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(cache.is_dir(), "--table-cache must create the directory tree");
    let entries = std::fs::read_dir(&cache).unwrap().count();
    assert!(entries >= 1, "at least one LALR table should be cached on disk");
}

#[test]
fn watch_flag_is_accepted_in_usage() {
    // `--watch` never exits on its own, so only pin that the usage string
    // advertises it (a bad flag prints usage and fails).
    let out = mayac().arg("--definitely-bogus").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--watch"), "usage must mention --watch: {stderr}");
}
