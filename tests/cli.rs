//! The mayac command-line driver.

use std::process::Command;

fn mayac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mayac"))
}

fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mayac-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p
}

#[test]
fn compiles_and_runs_a_file() {
    let f = write_temp(
        "hello.maya",
        r#"class Main { static void main() { System.out.println("cli ok"); } }"#,
    );
    let out = mayac().arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "cli ok\n");
}

#[test]
fn use_option_imports_globally() {
    // The paper's -use command-line option (§3.3): the macro is available
    // without a use directive in the source.
    let f = write_temp(
        "glob.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("via -use");
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
        "#,
    );
    let out = mayac().arg("-use").arg("Foreach").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "via -use\n");
}

#[test]
fn expand_prints_expansions() {
    let f = write_temp(
        "exp.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                use Foreach;
                v.elements().foreach(String s) { System.out.println(s); }
            }
        }
        "#,
    );
    let out = mayac().arg("--expand").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hasMoreElements"), "{stdout}");
}

#[test]
fn errors_exit_nonzero_with_message() {
    let f = write_temp("bad.maya", "class Main { static void main() { int x = ; } }");
    let out = mayac().arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mayac:"), "{stderr}");
}

#[test]
fn main_class_selection() {
    let f = write_temp(
        "other.maya",
        r#"class App { static void main() { System.out.println("app"); } }"#,
    );
    let out = mayac().arg("--main").arg("App").arg(&f).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "app\n");
}
