//! Extensions compose: the macro library and MultiJava in one compilation,
//! plus a source-level Mayan on top.

use maya::Compiler;

fn full_compiler() -> Compiler {
    let c = Compiler::new();
    maya::macrolib::install(&c);
    maya::multijava::install(&c);
    c
}

#[test]
fn macrolib_and_multijava_together() {
    let c = full_compiler();
    let out = c
        .compile_and_run(
            "Main.maya",
            r#"
            import java.util.*;
            use MultiJava;
            class Event { String tag() { return "event"; } }
            class Click extends Event { String tag() { return "click"; } }
            class Handler {
                String on(Event e) { return "ignored " + e.tag(); }
                String on(Event@Click e) { return "handled " + e.tag(); }
            }
            class Main {
                static void main() {
                    use Foreach;
                    use Assert;
                    Vector events = new Vector();
                    events.addElement(new Click());
                    events.addElement(new Event());
                    Handler h = new Handler();
                    assert(events.size() == 2);
                    events.elements().foreach(Event e) {
                        System.out.println(h.on(e));
                    }
                }
            }
            "#,
            "Main",
        )
        .unwrap();
    assert_eq!(out, "handled click\nignored event\n");
}

#[test]
fn source_extension_composes_with_native_ones() {
    let c = full_compiler();
    c.add_source(
        "Repeat.maya",
        r#"
        abstract Statement syntax(repeat(Expression) lazy(BraceTree, BlockStmts));

        Statement syntax
        Repeat(repeat(Expression n) lazy(BraceTree, BlockStmts) body)
        {
            return new Statement {
                for (int counter = 0; counter < $n; counter++) {
                    $body
                }
            };
        }
        "#,
    )
    .unwrap();
    c.add_source(
        "Main.maya",
        r#"
        class Main {
            static void main() {
                use Repeat;
                use Format;
                int hits = 0;
                repeat (3) {
                    hits += 1;
                    System.out.println(format("hit %s", hits));
                }
            }
        }
        "#,
    )
    .unwrap();
    c.compile().unwrap();
    assert_eq!(c.run_main("Main").unwrap(), "hit 1\nhit 2\nhit 3\n");
}

#[test]
fn use_inside_class_body_scopes_over_members() {
    let c = full_compiler();
    let out = c
        .compile_and_run(
            "Main.maya",
            r#"
            import java.util.*;
            class Main {
                use Foreach;
                static void dump(Vector v) {
                    v.elements().foreach(String s) {
                        System.out.println(s);
                    }
                }
                static void main() {
                    Vector v = new Vector();
                    v.addElement("scoped");
                    dump(v);
                }
            }
            "#,
            "Main",
        )
        .unwrap();
    assert_eq!(out, "scoped\n");
}

#[test]
fn top_level_use_scopes_over_following_classes() {
    let c = full_compiler();
    let out = c
        .compile_and_run(
            "Main.maya",
            r#"
            import java.util.*;
            use Foreach;
            class Helper {
                static void dump(Vector v) {
                    v.elements().foreach(String s) {
                        System.out.println("h:" + s);
                    }
                }
            }
            class Main {
                static void main() {
                    Vector v = new Vector();
                    v.addElement("x");
                    Helper.dump(v);
                }
            }
            "#,
            "Main",
        )
        .unwrap();
    assert_eq!(out, "h:x\n");
}
