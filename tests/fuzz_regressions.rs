//! Replays every minimized case under `tests/corpus/regressions/` —
//! divergences the fuzzer once found and that were then fixed — through
//! the full oracle battery: no panic may escape, and the cold batch,
//! warm replay, legacy tree walker, `--jobs=4`, and post-edit outcomes
//! must all be byte-identical. A case that starts diverging again is a
//! regression of the original fix.

use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::rc::Rc;

use maya::{CompileOptions, Compiler, Outcome, RequestOpts, Session};

fn installer(lowered: bool) -> Rc<dyn Fn(&Compiler)> {
    Rc::new(move |c: &Compiler| {
        maya::macrolib::install(c);
        maya::multijava::install(c);
        if !lowered {
            c.interp().set_lowering(false);
        }
    })
}

fn session(lowered: bool, jobs: usize) -> Session {
    let opts = CompileOptions {
        echo_output: false,
        jobs,
        max_expand_depth: 50,
        expand_fuel: 500_000,
        interp_step_limit: 500_000,
        interp_stack_limit: 64,
        ..Default::default()
    };
    Session::new(opts, Some(installer(lowered)))
}

fn sig(o: &Outcome) -> (bool, String, String) {
    (o.success, o.stdout.clone(), o.stderr.clone())
}

#[test]
fn committed_regression_cases_no_longer_diverge() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/regressions");
    assert!(dir.is_dir(), "regression corpus directory missing");
    let req = RequestOpts::default();

    let mut cases = 0usize;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let case_dir = entry.unwrap().path();
        if !case_dir.is_dir() {
            continue;
        }
        let mut names: Vec<String> = std::fs::read_dir(&case_dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                name.ends_with(".maya").then_some(name)
            })
            .collect();
        names.sort();
        assert!(!names.is_empty(), "{}: no sources", case_dir.display());
        let sources: Vec<(String, String)> = names
            .iter()
            .map(|n| (n.clone(), std::fs::read_to_string(case_dir.join(n)).unwrap()))
            .collect();
        let label = case_dir.file_name().unwrap().to_string_lossy().into_owned();
        cases += 1;

        // No panic may escape any oracle run, and every run must agree
        // with the cold baseline.
        let runs = maya::core::catch_ice(AssertUnwindSafe(|| {
            let cold = session(true, 1).compile_sources(&sources, &req);
            let legacy = session(false, 1).compile_sources(&sources, &req);
            let jobs4 = session(true, 4).compile_sources(&sources, &req);
            let mut warm = session(true, 1);
            warm.compile_sources(&sources, &req);
            let replay = warm.compile_sources(&sources, &req);
            let mut edited = sources.clone();
            edited.last_mut().unwrap().1.push_str("\nclass ZZFuzzEdit { }\n");
            warm.compile_sources(&edited, &req);
            let back = warm.compile_sources(&sources, &req);
            (cold, legacy, jobs4, replay, back)
        }));
        let (cold, legacy, jobs4, replay, back) =
            runs.unwrap_or_else(|m| panic!("{label}: panic escaped the driver: {m}"));
        let want = sig(&cold);
        assert_eq!(want, sig(&legacy), "{label}: legacy walker diverged again");
        assert_eq!(want, sig(&jobs4), "{label}: --jobs=4 diverged again");
        assert_eq!(want, sig(&replay), "{label}: warm replay diverged again");
        assert_eq!(want, sig(&back), "{label}: post-edit revert diverged again");
    }
    println!("replayed {cases} regression cases");
}
