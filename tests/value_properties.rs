//! Property tests for the compact tagged `Value` representation.
//!
//! The interpreter stores small ints and longs inline in a 16-byte tagged
//! `Value` and interns string literals; the bytecode VM tier adds its own
//! constant preloading and superinstruction fusion on top. These tests pin
//! the observable semantics: boundary integer arithmetic (i64 wrap-around,
//! `MIN / -1`, `MIN % -1`, int→long promotion) and interned-string
//! equality/concatenation must be **bit-for-bit identical** across all
//! three execution tiers, and must match host-computed expectations.
//!
//! Random programs come from a deterministic xorshift PRNG (the build
//! container has no registry access, so `proptest` is unavailable); seeds
//! are fixed, so failures reproduce exactly.

use maya::{CompileOptions, Compiler};

/// (name, lowering, bytecode) — the three execution tiers.
const TIERS: [(&str, bool, bool); 3] =
    [("legacy", false, false), ("lowered", true, false), ("bytecode", true, true)];

/// Runs `src` in-process through one tier; `Err` carries the full error
/// rendering so diagnosed/thrown outcomes are compared too.
fn run_tier(src: &str, lowering: bool, bytecode: bool) -> Result<String, String> {
    let c = Compiler::with_options(CompileOptions {
        echo_output: false,
        jobs: 1,
        ..Default::default()
    });
    c.interp().set_lowering(lowering);
    c.interp().set_bytecode(bytecode);
    c.add_source("Main.maya", src).map_err(|e| e.to_string())?;
    c.compile().map_err(|e| e.to_string())?;
    c.run_main("Main").map_err(|e| e.to_string())
}

/// Runs `src` through every tier and asserts the outcomes are identical;
/// returns the agreed outcome.
fn tiers_agree(label: &str, src: &str) -> Result<String, String> {
    let baseline = run_tier(src, TIERS[0].1, TIERS[0].2);
    for (name, lowering, bytecode) in &TIERS[1..] {
        let out = run_tier(src, *lowering, *bytecode);
        assert_eq!(
            out, baseline,
            "{label}: {name} diverged from legacy\n--- program ---\n{src}"
        );
    }
    baseline
}

/// Boundary long/int arithmetic with host-checked answers. Every printed
/// line is an in-language comparison against the expected value, so the
/// assertion is independent of number formatting.
#[test]
fn boundary_arithmetic_matches_host_on_all_tiers() {
    // i64::MIN is spelled MAX - MAX - MAX - 1 style because a bare
    // -9223372036854775808L literal need not parse (Java special-cases it).
    let src = r#"
class Main {
    static void main() {
        long max = 9223372036854775807L;
        long min = -9223372036854775807L - 1L;
        long m1 = 0L - 1L;
        System.out.println(min / m1 == min);      // wraps, Java semantics
        System.out.println(min % m1 == 0L);
        System.out.println(max + 1L == min);
        System.out.println(min - 1L == max);
        System.out.println(min * m1 == min);
        System.out.println(max * 2L == 0L - 2L);
        System.out.println((min >> 1) * 2L == min);

        int imax = 2147483647;
        int imin = -2147483647 - 1;
        int i1 = 0 - 1;
        System.out.println(imin / i1 == imin);
        System.out.println(imin % i1 == 0);
        System.out.println(imax + 1 == imin);
        System.out.println(imin - 1 == imax);
        System.out.println(imin * i1 == imin);

        // int→long promotion: the same expression that wraps as int is
        // exact once one operand is long.
        System.out.println(imax + 1L == 2147483648L);
        System.out.println(imin - 1L == -2147483649L);
        long wide = imax;
        System.out.println(wide * 4L == 8589934588L);
    }
}
"#;
    let out = tiers_agree("boundary arithmetic", src).expect("program runs");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 15, "unexpected output:\n{out}");
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(*line, "true", "comparison {i} failed:\n{out}");
    }
}

/// Division and remainder by zero must throw identically on every tier.
#[test]
fn division_by_zero_throws_identically() {
    for body in [
        "long z = 1L / (5L - 5L); System.out.println(z);",
        "long z = 1L % (5L - 5L); System.out.println(z);",
        "int z = 7 / (3 - 3); System.out.println(z);",
        "int z = 7 % (3 - 3); System.out.println(z);",
    ] {
        let src = format!("class Main {{ static void main() {{ {body} }} }}");
        let out = tiers_agree("div by zero", &src);
        let err = out.expect_err("division by zero must not succeed");
        assert!(err.contains("ArithmeticException"), "unexpected error: {err}");
    }
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Literal pool biased toward representation boundaries: values around
/// i32/i64 extremes, -1 (the div/rem wrap case), and small tagged ints.
const LONG_POOL: [&str; 10] = [
    "0L",
    "1L",
    "-1L",
    "2L",
    "-3L",
    "2147483647L",
    "-2147483648L",
    "9223372036854775807L",
    "-9223372036854775807L - 1L",
    "1000000007L",
];

/// Random straight-line long arithmetic threaded through mutable locals
/// and a counted loop, so the lowered tier resolves slots and the bytecode
/// tier compiles, fuses, and preloads constants — then every tier must
/// print the same variable dump (or throw the same exception).
#[test]
fn random_long_arithmetic_identical_across_tiers() {
    const VARS: usize = 6;
    const STMTS: usize = 10;
    for seed in 0..20u64 {
        let mut rng = Rng::new(seed + 1);
        let mut body = String::new();
        for v in 0..VARS {
            let init = LONG_POOL[rng.below(LONG_POOL.len())];
            body.push_str(&format!("        long v{v} = {init};\n"));
        }
        body.push_str("        for (int i = 0; i < 4; i = i + 1) {\n");
        for _ in 0..STMTS {
            let dst = rng.below(VARS);
            let a = rng.below(VARS);
            let op = ["+", "-", "*", "/", "%"][rng.below(5)];
            // Divisors come from the pool (possibly zero or -1 on
            // purpose): a thrown ArithmeticException is a valid outcome,
            // it just has to be the same one on every tier.
            let b = if op == "/" || op == "%" {
                format!("({})", LONG_POOL[rng.below(LONG_POOL.len())])
            } else {
                format!("v{}", rng.below(VARS))
            };
            body.push_str(&format!("            v{dst} = v{a} {op} {b};\n"));
        }
        body.push_str("        }\n");
        for v in 0..VARS {
            body.push_str(&format!("        System.out.println(v{v});\n"));
        }
        let src = format!("class Main {{\n    static void main() {{\n{body}    }}\n}}");
        tiers_agree(&format!("random long arithmetic (seed {seed})"), &src);
    }
}

/// Interned-string behaviour: literals, concatenation (including numeric
/// operands), equality, and `.equals` must agree bit-for-bit across tiers
/// and match the host-computed strings.
#[test]
fn interned_string_concat_and_equality_identical_across_tiers() {
    let src = r#"
class Main {
    static String glue(String a, String b) { return a + ":" + b; }

    static void main() {
        String lit = "alpha";
        String same = "alpha";
        String built = "al" + "pha";
        System.out.println(lit.equals(same));
        System.out.println(lit.equals(built));
        System.out.println(lit == same);
        System.out.println(lit == built);

        String acc = "";
        for (int i = 0; i < 5; i = i + 1) {
            acc = glue(acc, "x" + i);
        }
        System.out.println(acc);
        System.out.println(acc.length());
        System.out.println(acc.equals(":x0:x1:x2:x3:x4"));

        long big = 9223372036854775807L;
        System.out.println("max=" + big);
        System.out.println("sum=" + (big + 1L));
        System.out.println("mix=" + 1 + 2 + "!" );
    }
}
"#;
    let out = tiers_agree("interned strings", src).expect("program runs");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 10, "unexpected output:\n{out}");
    // Value equality of the contents is tier-independent ground truth;
    // `==` identity lines only have to agree across tiers (asserted by
    // tiers_agree) and are not pinned here.
    assert_eq!(lines[0], "true");
    assert_eq!(lines[1], "true");
    assert_eq!(lines[4], ":x0:x1:x2:x3:x4");
    assert_eq!(lines[5], "15");
    assert_eq!(lines[6], "true");
    assert_eq!(lines[7], "max=9223372036854775807");
    assert_eq!(lines[8], "sum=-9223372036854775808");
    assert_eq!(lines[9], "mix=12!");
}

/// Random concat/equality programs: a pool of literals (some repeated, so
/// interning paths are hit) combined by concatenation and compared with
/// `.equals` — identical output required on every tier.
#[test]
fn random_string_programs_identical_across_tiers() {
    const POOL: [&str; 6] = ["\"a\"", "\"b\"", "\"a\"", "\"long-ish literal\"", "\"\"", "\"b\""];
    for seed in 0..12u64 {
        let mut rng = Rng::new(seed.wrapping_mul(77) + 5);
        let mut body = String::new();
        for v in 0..4 {
            body.push_str(&format!("        String s{v} = {};\n", POOL[rng.below(POOL.len())]));
        }
        for _ in 0..6 {
            let dst = rng.below(4);
            let a = rng.below(4);
            match rng.below(3) {
                0 => body.push_str(&format!("        s{dst} = s{dst} + s{a};\n")),
                1 => body.push_str(&format!(
                    "        s{dst} = s{dst} + {};\n",
                    POOL[rng.below(POOL.len())]
                )),
                _ => body.push_str(&format!("        s{dst} = s{a} + {};\n", rng.below(100))),
            }
        }
        for v in 0..4 {
            body.push_str(&format!("        System.out.println(s{v});\n"));
            body.push_str(&format!("        System.out.println(s{v}.equals(s{}));\n", (v + 1) % 4));
        }
        let src = format!("class Main {{\n    static void main() {{\n{body}    }}\n}}");
        tiers_agree(&format!("random strings (seed {seed})"), &src);
    }
}
