//! E9 — dispatch semantics at the user level: symmetric ambiguity, lexical
//! tie-breaking, and nextRewrite layering (paper §4.4).

use maya::ast::{Expr, ExprKind, Lit, Node, NodeKind};
use maya::dispatch::{
    Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param, Specializer,
};
use maya::lexer::sym;
use maya::Compiler;
use std::rc::Rc;

/// An extension that overrides the base translation of string literals,
/// deferring to it with nextRewrite and then transforming the result —
/// macro layering on a *base* production.
struct Shout;

impl MetaProgram for Shout {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = env
            .grammar()
            .productions()
            .iter()
            .enumerate()
            .find_map(|(i, p)| {
                use maya::grammar::{Sym, Terminal};
                match p.rhs.as_slice() {
                    [Sym::T(Terminal::Tok(maya::lexer::TokenKind::StringLit))] => {
                        Some(maya::grammar::ProdId(i as u32))
                    }
                    _ => None,
                }
            })
            .expect("string literal production");
        env.import_mayan(Mayan::new(
            "Shout",
            prod,
            vec![Param::plain(NodeKind::TokenNode)],
            Rc::new(|_b: &Bindings, ctx: &mut dyn ExpandCtx| {
                let node = ctx.next_rewrite()?;
                match node {
                    Node::Expr(Expr {
                        kind: ExprKind::Literal(Lit::Str(s)),
                        span,
                    }) => Ok(Node::Expr(Expr::new(
                        span,
                        ExprKind::Literal(Lit::Str(sym(&s.as_str().to_uppercase()))),
                    ))),
                    other => Ok(other),
                }
            }),
        ));
        Ok(())
    }

    fn name(&self) -> &str {
        "Shout"
    }
}

#[test]
fn lexical_tie_breaking_overrides_base_semantics() {
    // The imported Mayan is equally specific to the built-in one, so the
    // later import wins and reinterprets base syntax — "lexical
    // tie-breaking allows MultiJava to transparently change the translation
    // of base Java syntax" (§5.2).
    let c = Compiler::new();
    c.register_metaprogram("Shout", Rc::new(Shout));
    let out = c
        .compile_and_run(
            "Main.maya",
            r#"
            class Main {
                static void main() {
                    use Shout;
                    System.out.println("quiet please");
                }
            }
            "#,
            "Main",
        )
        .unwrap();
    assert_eq!(out, "QUIET PLEASE\n");
}

#[test]
fn tie_breaking_is_scoped() {
    let c = Compiler::new();
    c.register_metaprogram("Shout", Rc::new(Shout));
    let out = c
        .compile_and_run(
            "Main.maya",
            r#"
            class Main {
                static void loud() {
                    use Shout;
                    System.out.println("inside");
                }
                static void main() {
                    loud();
                    System.out.println("outside");
                }
            }
            "#,
            "Main",
        )
        .unwrap();
    assert_eq!(out, "INSIDE\noutside\n");
}

#[test]
fn symmetric_ambiguity_errors_at_dispatch() {
    // Exercised directly through the dispatcher (unit-level coverage lives
    // in maya-dispatch; this asserts the END-USER visible error text).
    use maya::dispatch::order_applicable;
    use maya::types::{ClassTable, Type};
    let ct = ClassTable::bootstrap();
    let string = Type::Class(ct.by_fqcn_str("java.lang.String").unwrap());
    let object = Type::Class(ct.by_fqcn_str("java.lang.Object").unwrap());
    let m = |name: &str, a: Specializer, b: Specializer| {
        Mayan::new(
            name,
            maya::grammar::ProdId(0),
            vec![
                Param::plain(NodeKind::Expression).with_spec(a),
                Param::plain(NodeKind::Expression).with_spec(b),
            ],
            Rc::new(|_, _| Ok(Node::Unit)),
        )
    };
    let mut env = maya::dispatch::DispatchEnv::new().extend();
    env.import(m(
        "FirstSpecific",
        Specializer::StaticType(string.clone()),
        Specializer::None,
    ));
    env.import(m(
        "SecondSpecific",
        Specializer::None,
        Specializer::StaticType(string.clone()),
    ));
    let env = env.finish();
    let args = vec![
        Node::from(Expr::str_lit("a")),
        Node::from(Expr::str_lit("b")),
    ];
    let err = order_applicable(
        &env,
        &ct,
        maya::grammar::ProdId(0),
        "p",
        &args,
        &mut |_| Some(string.clone()),
        maya::lexer::Span::DUMMY,
    )
    .unwrap_err();
    assert!(err.message.contains("ambiguous"), "{}", err.message);
    let _ = object;
}
