//! The persistent compilation cache (`--cache-dir`): every artifact kind
//! round-trips through real `mayac` processes, corrupt and
//! future-versioned entries are silently rebuilt, `mayac cache
//! stats|gc|clear` maintain the directory, and four concurrent processes
//! can hammer one store without corrupting it or each other's output.

use std::path::{Path, PathBuf};
use std::process::Command;

use maya::core::store::{ArtifactStore, Kind};

fn mayac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mayac"))
}

/// A per-test scratch directory (removed and recreated on entry).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maya-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A program whose main body is worth lowering (loop + calls), so a run
/// persists all four artifact kinds: tables, lex, outcome, and bodies.
const LOOPY: &str = r#"class Main {
    static int triple(int n) { return n * 3; }
    static void main() {
        int sum = 0;
        for (int i = 0; i < 5; i = i + 1) { sum = sum + triple(i); }
        System.out.println(sum);
    }
}
"#;

fn run_mayac(file: &Path, cache: &Path) -> (bool, Vec<u8>, Vec<u8>) {
    let out = mayac()
        .arg(format!("--cache-dir={}", cache.display()))
        .arg(file)
        .env_remove("MAYA_CACHE_DIR")
        .output()
        .unwrap();
    (out.status.success(), out.stdout, out.stderr)
}

fn entries_with_ext(cache: &Path, ext: &str) -> Vec<PathBuf> {
    std::fs::read_dir(cache)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|e| e.to_str()) == Some(ext)).then_some(p)
        })
        .collect()
}

#[test]
fn every_artifact_kind_round_trips_through_real_processes() {
    let dir = scratch("kinds");
    let cache = dir.join("cache");
    let file = dir.join("loopy.maya");
    std::fs::write(&file, LOOPY).unwrap();

    let cold = run_mayac(&file, &cache);
    assert!(cold.0, "{}", String::from_utf8_lossy(&cold.2));
    assert_eq!(cold.1, b"30\n");
    for kind in Kind::ALL {
        assert!(
            !entries_with_ext(&cache, kind.ext()).is_empty(),
            "a run must persist at least one {} artifact",
            kind.label()
        );
    }

    // A second cold process hydrates from the store, byte-identical.
    let warm = run_mayac(&file, &cache);
    assert_eq!(warm, cold, "warm-store run must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_bit_flipped_entries_are_silently_rebuilt() {
    let dir = scratch("corrupt");
    let cache = dir.join("cache");
    let file = dir.join("loopy.maya");
    std::fs::write(&file, LOOPY).unwrap();
    let cold = run_mayac(&file, &cache);
    assert!(cold.0);

    // Truncate every entry to half its size.
    for p in std::fs::read_dir(&cache).unwrap().map(|e| e.unwrap().path()) {
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
    }
    let after_truncation = run_mayac(&file, &cache);
    assert_eq!(after_truncation, cold, "truncated entries must be rebuilt silently");

    // Flip one payload bit in every (freshly rewritten) entry.
    for p in std::fs::read_dir(&cache).unwrap().map(|e| e.unwrap().path()) {
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
    }
    let after_flip = run_mayac(&file, &cache);
    assert_eq!(after_flip, cold, "bit-flipped entries must be rebuilt silently");

    // The rebuild repaired the store: a further run serves from it again.
    let repaired = run_mayac(&file, &cache);
    assert_eq!(repaired, cold);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mirrors the store's checksum so the test can re-seal an entry after
/// editing its header (isolating the version check from the checksum).
fn reseal(bytes: &mut Vec<u8>) {
    bytes.truncate(bytes.len() - 8);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes.iter() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let sum = h.to_le_bytes();
    bytes.extend_from_slice(&sum);
}

#[test]
fn future_format_version_is_silently_invalidated() {
    let dir = scratch("version");
    let cache = dir.join("cache");
    let file = dir.join("loopy.maya");
    std::fs::write(&file, LOOPY).unwrap();
    let cold = run_mayac(&file, &cache);
    assert!(cold.0);

    // Rewrite every entry as if a future mayac (format version + 1) had
    // written it, with a *valid* checksum: the version field alone must
    // make this process treat the entry as a miss and rebuild.
    for p in std::fs::read_dir(&cache).unwrap().map(|e| e.unwrap().path()) {
        let mut bytes = std::fs::read(&p).unwrap();
        let ver = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        bytes[8..12].copy_from_slice(&(ver + 1).to_le_bytes());
        reseal(&mut bytes);
        std::fs::write(&p, &bytes).unwrap();
    }
    let rebuilt = run_mayac(&file, &cache);
    assert_eq!(rebuilt, cold, "future-versioned entries must rebuild silently");

    // ... and the rewrite downgraded them back to the current version.
    for p in std::fs::read_dir(&cache).unwrap().map(|e| e.unwrap().path()) {
        let bytes = std::fs::read(&p).unwrap();
        assert_eq!(&bytes[..8], b"MAYASTOR");
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_subcommands_report_gc_and_clear_the_store() {
    let dir = scratch("subcommands");
    let cache = dir.join("cache");
    // Oversize the store deterministically: 8 payloads of ~400 KiB.
    let store = ArtifactStore::open(&cache, None).unwrap();
    for i in 0..8u8 {
        store.save(Kind::Lex, u128::from(i) + 1, &vec![i; 400 * 1024]);
    }
    drop(store);

    let stats = mayac()
        .args(["cache", "stats", &format!("--cache-dir={}", cache.display())])
        .output()
        .unwrap();
    assert!(stats.status.success(), "{}", String::from_utf8_lossy(&stats.stderr));
    let text = String::from_utf8_lossy(&stats.stdout).to_string();
    for label in ["tables", "lex", "outcome", "body", "total"] {
        assert!(text.contains(label), "stats must list {label}: {text}");
    }
    assert!(text.contains("8 entries"), "stats must count the 8 lex entries: {text}");

    // GC to a 1 MB cap: the directory must shrink under the cap (evicting
    // oldest-first) but keep at least one entry.
    let gc = mayac()
        .args([
            "cache",
            "gc",
            &format!("--cache-dir={}", cache.display()),
            "--cache-max-mb=1",
        ])
        .output()
        .unwrap();
    assert!(gc.status.success(), "{}", String::from_utf8_lossy(&gc.stderr));
    let total: u64 = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    assert!(total <= 1024 * 1024, "gc must enforce the cap, left {total} bytes");
    assert!(total > 0, "gc must not empty a store that fits entries under the cap");

    let clear = mayac()
        .args(["cache", "clear", &format!("--cache-dir={}", cache.display())])
        .output()
        .unwrap();
    assert!(clear.status.success());
    let left = std::fs::read_dir(&cache).unwrap().count();
    assert_eq!(left, 0, "clear must empty the store");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn automatic_gc_keeps_the_store_under_cache_max_mb() {
    let dir = scratch("autogc");
    let cache = dir.join("cache");
    // Pre-fill ~4 MB, then open with a 1 MB cap and trigger one save: the
    // automatic sweep must pull the directory back under the cap.
    let filler = ArtifactStore::open(&cache, None).unwrap();
    for i in 0..10u8 {
        filler.save(Kind::Body, u128::from(i) + 1, &vec![i; 400 * 1024]);
    }
    drop(filler);

    let capped = ArtifactStore::open(&cache, Some(1)).unwrap();
    capped.save(Kind::Lex, 0xfeed, &[1, 2, 3]);
    let total: u64 = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    assert!(
        total <= 1024 * 1024,
        "a save past --cache-max-mb must trigger the automatic sweep, left {total} bytes"
    );
    assert!(
        capped.load(Kind::Lex, 0xfeed).is_some(),
        "the just-written entry should survive the sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn four_concurrent_processes_share_one_store() {
    let dir = scratch("stress");
    let cache = dir.join("cache");

    // Four distinct programs plus one shared by everybody, so the
    // processes race on both disjoint and identical keys.
    let shared = dir.join("shared.maya");
    std::fs::write(&shared, LOOPY).unwrap();
    let files: Vec<(PathBuf, String)> = (0..4)
        .map(|i| {
            let f = dir.join(format!("p{i}.maya"));
            std::fs::write(
                &f,
                format!(
                    "class Main {{ static void main() {{ System.out.println(\"proc {i}\"); }} }}"
                ),
            )
            .unwrap();
            (f, format!("proc {i}\n"))
        })
        .collect();

    let threads: Vec<_> = files
        .into_iter()
        .map(|(file, expect)| {
            let cache = cache.clone();
            let shared = shared.clone();
            std::thread::spawn(move || {
                for round in 0..3 {
                    let (ok, stdout, stderr) = run_mayac(&file, &cache);
                    assert!(ok, "round {round}: {}", String::from_utf8_lossy(&stderr));
                    assert_eq!(stdout, expect.as_bytes(), "round {round}");
                    let (ok, stdout, stderr) = run_mayac(&shared, &cache);
                    assert!(ok, "round {round}: {}", String::from_utf8_lossy(&stderr));
                    assert_eq!(stdout, b"30\n", "round {round}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // The racing writers left a coherent store: a fresh process still
    // hydrates the shared program from it.
    let (ok, stdout, _) = run_mayac(&shared, &cache);
    assert!(ok);
    assert_eq!(stdout, b"30\n");
    let _ = std::fs::remove_dir_all(&dir);
}
