//! Differential testing of the lowered fast runtime.
//!
//! Every program in `tests/corpus/` is executed twice through `mayac`: once
//! with the default (lowered, slot-resolved, inline-cached) interpreter and
//! once with `MAYA_NO_LOWER=1`, which pins the legacy tree-walking path.
//! Stdout, stderr, and the exit status must be byte-identical — the fast
//! runtime is an optimization, never a semantic change.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

struct Directives {
    args: Vec<String>,
}

fn parse_directives(src: &str) -> Directives {
    let mut args = Vec::new();
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("//") else { break };
        if let Some(a) = rest.trim().strip_prefix("mayac:") {
            args = a.split_whitespace().map(str::to_string).collect();
        }
    }
    Directives { args }
}

fn run(cwd: &Path, d: &Directives, file: &str, lowering: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mayac"));
    cmd.current_dir(cwd).args(&d.args).arg(file);
    // The variable is set on the child only; the test process environment
    // is never mutated.
    cmd.env("MAYA_NO_LOWER", if lowering { "0" } else { "1" });
    cmd.output().unwrap()
}

/// One test over the whole corpus (not one per program) so the report shows
/// every divergence at once and the corpus never partially runs.
#[test]
fn lowered_and_legacy_interpreters_agree() {
    let dir = corpus_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.ends_with(".maya").then_some(name)
        })
        .collect();
    names.sort();
    assert!(names.len() >= 25, "corpus shrank ({} programs)", names.len());

    let mut failures = Vec::new();
    for name in &names {
        let src = std::fs::read_to_string(dir.join(name)).unwrap();
        let d = parse_directives(&src);
        let fast = run(&dir, &d, name, true);
        let legacy = run(&dir, &d, name, false);
        if fast.status.code() != legacy.status.code() {
            failures.push(format!(
                "{name}: exit status diverged (lowered {:?}, legacy {:?})",
                fast.status.code(),
                legacy.status.code()
            ));
        }
        for (channel, a, b) in [
            ("stdout", &fast.stdout, &legacy.stdout),
            ("stderr", &fast.stderr, &legacy.stderr),
        ] {
            if a != b {
                failures.push(format!(
                    "{name}: {channel} diverged between lowered and legacy\n\
                     --- lowered ---\n{}\n--- legacy ---\n{}",
                    String::from_utf8_lossy(a),
                    String::from_utf8_lossy(b)
                ));
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n======\n"));
}
