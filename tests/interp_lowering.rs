//! Differential testing of the fast runtimes.
//!
//! Every program in `tests/corpus/` is executed through `mayac` once per
//! execution tier:
//!
//! * **legacy** — `MAYA_NO_LOWER=1`: the tree-walking interpreter;
//! * **lowered** — `MAYA_NO_BYTECODE=1`: slot-resolved, inline-cached
//!   lowered execution on the tree walker;
//! * **bytecode** — the default: lowered bodies compiled to flat register
//!   bytecode with polymorphic inline caches and superinstructions.
//!
//! Stdout, stderr, and the exit status must be byte-identical across all
//! three — each tier is an optimization, never a semantic change.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

struct Directives {
    args: Vec<String>,
}

fn parse_directives(src: &str) -> Directives {
    let mut args = Vec::new();
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("//") else { break };
        if let Some(a) = rest.trim().strip_prefix("mayac:") {
            args = a.split_whitespace().map(str::to_string).collect();
        }
    }
    Directives { args }
}

#[derive(Clone, Copy)]
enum Tier {
    Legacy,
    Lowered,
    Bytecode,
}

impl Tier {
    fn name(self) -> &'static str {
        match self {
            Tier::Legacy => "legacy",
            Tier::Lowered => "lowered",
            Tier::Bytecode => "bytecode",
        }
    }
}

fn run(cwd: &Path, d: &Directives, file: &str, tier: Tier) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mayac"));
    cmd.current_dir(cwd).args(&d.args).arg(file);
    // The variables are set on the child only; the test process environment
    // is never mutated.
    let (no_lower, no_bc) = match tier {
        Tier::Legacy => ("1", "1"),
        Tier::Lowered => ("0", "1"),
        Tier::Bytecode => ("0", "0"),
    };
    cmd.env("MAYA_NO_LOWER", no_lower);
    cmd.env("MAYA_NO_BYTECODE", no_bc);
    cmd.output().unwrap()
}

/// One test over the whole corpus (not one per program) so the report shows
/// every divergence at once and the corpus never partially runs.
#[test]
fn all_three_tiers_agree() {
    let dir = corpus_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.ends_with(".maya").then_some(name)
        })
        .collect();
    names.sort();
    assert!(names.len() >= 25, "corpus shrank ({} programs)", names.len());

    let mut failures = Vec::new();
    for name in &names {
        let src = std::fs::read_to_string(dir.join(name)).unwrap();
        let d = parse_directives(&src);
        let baseline = run(&dir, &d, name, Tier::Legacy);
        for tier in [Tier::Lowered, Tier::Bytecode] {
            let fast = run(&dir, &d, name, tier);
            if fast.status.code() != baseline.status.code() {
                failures.push(format!(
                    "{name}: exit status diverged ({} {:?}, legacy {:?})",
                    tier.name(),
                    fast.status.code(),
                    baseline.status.code()
                ));
            }
            for (channel, a, b) in [
                ("stdout", &fast.stdout, &baseline.stdout),
                ("stderr", &fast.stderr, &baseline.stderr),
            ] {
                if a != b {
                    failures.push(format!(
                        "{name}: {channel} diverged between {} and legacy\n\
                         --- {} ---\n{}\n--- legacy ---\n{}",
                        tier.name(),
                        tier.name(),
                        String::from_utf8_lossy(a),
                        String::from_utf8_lossy(b)
                    ));
                }
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n======\n"));
}
