//! The fast-path caches, end to end: LALR table reuse (in-process and
//! on-disk), mid-pipeline invalidation, corruption tolerance, and the
//! `--jobs` determinism guarantee.
//!
//! The table cache and the dispatch index are thread-local, and `cargo
//! test` runs every `#[test]` on its own thread, so these tests cannot
//! observe each other's cache state.

use maya::telemetry::{self, Counter};
use maya::Compiler;
use std::process::Command;

const HELLO: &str = r#"class Main { static void main() { System.out.println("ok"); } }"#;

fn example(name: &str) -> String {
    let p = format!("{}/examples/maya/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{p}: {e}"))
}

/// Compiles and runs the eforeach extension + application pair.
fn compile_extension_pair() {
    let c = Compiler::new();
    c.add_source("eforeach_ext.maya", &example("eforeach_ext.maya")).unwrap();
    c.add_source("eforeach_app.maya", &example("eforeach_app.maya")).unwrap();
    c.compile().unwrap();
    c.run_main("Main").unwrap();
}

fn counters(f: impl FnOnce()) -> impl Fn(Counter) -> u64 {
    let s = telemetry::Session::start(telemetry::Config::default());
    f();
    let r = s.finish();
    move |c| r.counter(c)
}

#[test]
fn table_cache_reuses_tables_across_compilers() {
    maya::grammar::set_table_cache_enabled(true);
    maya::grammar::clear_table_cache();

    let cold = counters(compile_extension_pair);
    assert!(cold(Counter::TablesBuilt) > 0, "cold run must build tables");
    // (The cold run may already record hits: a grammar demanded twice
    // within one compilation is served from the memo the second time.)
    assert!(cold(Counter::TableCacheMisses) > 0, "cold run must miss");

    let warm = counters(compile_extension_pair);
    assert_eq!(warm(Counter::TablesBuilt), 0, "warm run must reuse every table");
    assert!(warm(Counter::TableCacheHits) > 0);
    assert_eq!(warm(Counter::TableCacheMisses), 0);
}

/// A mid-pipeline grammar extension changes the content hash, so the
/// extended grammar misses (and is built) even when the base grammar hits.
#[test]
fn table_cache_misses_on_a_new_grammar_mid_pipeline() {
    maya::grammar::set_table_cache_enabled(true);
    maya::grammar::clear_table_cache();

    // Warm the cache with the base grammar only.
    let base = counters(|| {
        let c = Compiler::new();
        c.add_source("Main.maya", HELLO).unwrap();
        c.compile().unwrap();
    });
    assert!(base(Counter::TablesBuilt) > 0);

    // The extension pair starts from the cached base grammar but must
    // still build tables for the extended grammar it creates mid-run.
    let ext = counters(compile_extension_pair);
    assert!(ext(Counter::TableCacheHits) > 0, "the base grammar is already cached");
    assert!(ext(Counter::TableCacheMisses) > 0, "the extended grammar is new");
    assert!(ext(Counter::TablesBuilt) > 0, "the extended grammar must be built");
}

/// The dispatch index stays sound while the environment changes mid-file
/// (`use` imports new Mayans), and switching it off round-trips: the
/// output is identical with and without the index.
#[test]
fn dispatch_index_preserves_output_across_env_changes() {
    let run = || {
        let c = Compiler::new();
        c.add_source("eforeach_ext.maya", &example("eforeach_ext.maya")).unwrap();
        c.add_source("eforeach_app.maya", &example("eforeach_app.maya")).unwrap();
        c.compile().unwrap();
        c.run_main("Main").unwrap()
    };

    maya::dispatch::set_dispatch_index_enabled(true);
    let s = telemetry::Session::start(telemetry::Config::default());
    let indexed = run();
    let r = s.finish();
    assert!(r.counter(Counter::DispatchIndexHits) > 0, "the index must actually engage");

    maya::dispatch::set_dispatch_index_enabled(false);
    let s = telemetry::Session::start(telemetry::Config::default());
    let linear = run();
    let r = s.finish();
    assert_eq!(r.counter(Counter::DispatchIndexHits), 0);
    assert_eq!(r.counter(Counter::DispatchIndexMisses), 0);
    maya::dispatch::set_dispatch_index_enabled(true);

    assert_eq!(indexed, linear, "the index must never change program output");
}

#[test]
fn corrupted_disk_cache_is_ignored_and_rebuilt() {
    let dir = std::env::temp_dir().join(format!("maya-tblcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    maya::grammar::set_table_cache_enabled(true);
    let store = maya::core::store::ArtifactStore::open(&dir, None).unwrap();
    maya::core::store::install_thread(Some(store));
    maya::grammar::clear_table_cache();

    // First run populates the directory.
    let cold = counters(compile_extension_pair);
    assert!(cold(Counter::TablesBuilt) > 0);
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
    assert!(!files.is_empty(), "the disk cache must be written");

    // Clear the in-process memo: the next run must come from disk.
    maya::grammar::clear_table_cache();
    let disk = counters(compile_extension_pair);
    assert_eq!(disk(Counter::TablesBuilt), 0, "a clean disk cache serves every table");

    // Corrupt every cache file; the run must silently rebuild, not fail.
    for f in &files {
        std::fs::write(f, b"not a table cache").unwrap();
    }
    maya::grammar::clear_table_cache();
    let corrupt = counters(compile_extension_pair);
    assert!(corrupt(Counter::TablesBuilt) > 0, "corrupt entries must be rebuilt");

    // And the rebuild repaired the disk cache in passing.
    maya::grammar::clear_table_cache();
    let repaired = counters(compile_extension_pair);
    assert_eq!(repaired(Counter::TablesBuilt), 0, "the rewrite must be readable again");

    maya::core::store::install_thread(None);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- --jobs determinism ------------------------------------------------------

fn mayac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mayac"))
}

fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("maya-perf-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p
}

fn run_with_jobs(files: &[&std::path::Path], jobs: &str) -> (bool, Vec<u8>, Vec<u8>) {
    let out = mayac().arg(jobs).args(files).output().unwrap();
    (out.status.success(), out.stdout, out.stderr)
}

#[test]
fn jobs_do_not_change_output_or_diagnostics() {
    // Success case: a multi-file program.
    let a = write_temp("ok_helper.maya", "class Helper { static int n() { return 41; } }");
    let b = write_temp(
        "ok_main.maya",
        r#"class Main { static void main() { System.out.println(Helper.n() + 1); } }"#,
    );
    let one = run_with_jobs(&[&a, &b], "--jobs=1");
    let four = run_with_jobs(&[&a, &b], "--jobs=4");
    assert!(one.0, "{}", String::from_utf8_lossy(&one.2));
    assert_eq!(one, four, "--jobs must not change a successful run");
    assert_eq!(String::from_utf8_lossy(&one.1), "42\n");

    // Failure case: lex errors in two files must come out in file order,
    // byte-identically, at any worker count.
    let bad1 = write_temp("bad1.maya", "class A { int x = \x01; }");
    let bad2 = write_temp("bad2.maya", "class B { int y = \x02; }");
    let one = run_with_jobs(&[&bad1, &bad2, &b], "--jobs=1");
    let four = run_with_jobs(&[&bad1, &bad2, &b], "--jobs=4");
    assert!(!one.0);
    assert_eq!(one, four, "--jobs must not change diagnostics");
    let stderr = String::from_utf8_lossy(&one.2);
    let p1 = stderr.find("bad1.maya").expect("bad1 diagnosed");
    let p2 = stderr.find("bad2.maya").expect("bad2 diagnosed");
    assert!(p1 < p2, "diagnostics must stay in file order:\n{stderr}");
}
