//! Property tests over the full pipeline: random arithmetic programs must
//! evaluate to the same value the host computes.

use maya::Compiler;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum E {
    N(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (0i32..100).prop_map(E::N);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

impl E {
    fn eval(&self) -> i64 {
        match self {
            E::N(n) => *n as i64,
            E::Add(a, b) => (a.eval() as i32).wrapping_add(b.eval() as i32) as i64,
            E::Sub(a, b) => (a.eval() as i32).wrapping_sub(b.eval() as i32) as i64,
            E::Mul(a, b) => (a.eval() as i32).wrapping_mul(b.eval() as i32) as i64,
        }
    }

    fn source(&self) -> String {
        match self {
            E::N(n) => n.to_string(),
            E::Add(a, b) => format!("({} + {})", a.source(), b.source()),
            E::Sub(a, b) => format!("({} - {})", a.source(), b.source()),
            E::Mul(a, b) => format!("({} * {})", a.source(), b.source()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_arithmetic_agrees_with_host(e in arb_expr()) {
        let src = format!(
            "class Main {{ static void main() {{ int r = {}; System.out.println(r); }} }}",
            e.source()
        );
        let c = Compiler::new();
        let out = c.compile_and_run("Main.maya", &src, "Main").unwrap();
        prop_assert_eq!(out.trim().parse::<i64>().unwrap(), e.eval() as i32 as i64);
    }
}
