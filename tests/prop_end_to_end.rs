//! Property-style tests over the full pipeline: random arithmetic programs
//! must evaluate to the same value the host computes.
//!
//! Expression trees come from a deterministic xorshift PRNG (no registry
//! access in the build container, so `proptest` is unavailable); seeds are
//! fixed, so failures reproduce exactly.

use maya::Compiler;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone)]
enum E {
    N(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
}

fn arb_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.below(4) == 0 {
        return E::N(rng.below(100) as i32);
    }
    let a = Box::new(arb_expr(rng, depth - 1));
    let b = Box::new(arb_expr(rng, depth - 1));
    match rng.below(3) {
        0 => E::Add(a, b),
        1 => E::Sub(a, b),
        _ => E::Mul(a, b),
    }
}

impl E {
    fn eval(&self) -> i64 {
        match self {
            E::N(n) => *n as i64,
            E::Add(a, b) => (a.eval() as i32).wrapping_add(b.eval() as i32) as i64,
            E::Sub(a, b) => (a.eval() as i32).wrapping_sub(b.eval() as i32) as i64,
            E::Mul(a, b) => (a.eval() as i32).wrapping_mul(b.eval() as i32) as i64,
        }
    }

    fn source(&self) -> String {
        match self {
            E::N(n) => n.to_string(),
            E::Add(a, b) => format!("({} + {})", a.source(), b.source()),
            E::Sub(a, b) => format!("({} - {})", a.source(), b.source()),
            E::Mul(a, b) => format!("({} * {})", a.source(), b.source()),
        }
    }
}

#[test]
fn random_arithmetic_agrees_with_host() {
    for seed in 0..12u64 {
        let mut rng = Rng::new(seed);
        let e = arb_expr(&mut rng, 4);
        let src = format!(
            "class Main {{ static void main() {{ int r = {}; System.out.println(r); }} }}",
            e.source()
        );
        let c = Compiler::new();
        let out = c.compile_and_run("Main.maya", &src, "Main").unwrap();
        assert_eq!(
            out.trim().parse::<i64>().unwrap(),
            e.eval() as i32 as i64,
            "seed {seed} expr {}",
            e.source()
        );
    }
}
