//! Conformance corpus: every program under `tests/corpus/` is pinned to
//! golden stdout/stderr snapshots, and the warm compile-server path is
//! differentially tested against cold `mayac` on the same inputs.
//!
//! Regenerate the goldens with `MAYA_BLESS=1 cargo test --test conformance`.
//!
//! Corpus directives (leading `//` comment lines of each `.maya` file):
//!
//! - `// mayac: <args>`  — extra command-line arguments for the run
//! - `// status: fail`   — the program is expected to exit non-zero
//! - `// noedit`         — skip the append-edit differential steps (used
//!   for programs whose diagnostics span to end-of-file)

use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

use maya::core::json::{parse_json, Json};
use maya::telemetry::json_string;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_programs(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.ends_with(".maya").then_some(name)
        })
        .collect();
    names.sort();
    assert!(
        names.len() >= 25,
        "conformance corpus shrank below 25 programs ({} found)",
        names.len()
    );
    names
}

#[derive(Default)]
struct Directives {
    args: Vec<String>,
    expect_fail: bool,
    noedit: bool,
}

fn parse_directives(src: &str) -> Directives {
    let mut d = Directives::default();
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("//") else { break };
        let rest = rest.trim();
        if let Some(args) = rest.strip_prefix("mayac:") {
            d.args = args.split_whitespace().map(str::to_string).collect();
        } else if rest == "status: fail" {
            d.expect_fail = true;
        } else if rest == "noedit" {
            d.noedit = true;
        }
    }
    d
}

fn run_mayac(cwd: &Path, d: &Directives, file: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mayac"))
        .current_dir(cwd)
        .args(&d.args)
        .arg(file)
        .output()
        .unwrap()
}

/// Golden runner: each corpus program's stdout and stderr must match its
/// checked-in `NAME.stdout` / `NAME.stderr` snapshot (a missing snapshot
/// means "empty"), and its exit status must match the `status:` directive.
#[test]
fn corpus_matches_goldens() {
    let dir = corpus_dir();
    let bless = std::env::var("MAYA_BLESS").is_ok();
    let mut failures = Vec::new();
    for name in corpus_programs(&dir) {
        let src = std::fs::read_to_string(dir.join(&name)).unwrap();
        let d = parse_directives(&src);
        let out = run_mayac(&dir, &d, &name);
        if out.status.success() == d.expect_fail {
            failures.push(format!(
                "{name}: expected {} but got exit status {:?}\nstderr:\n{}",
                if d.expect_fail { "failure" } else { "success" },
                out.status.code(),
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        let stem = name.trim_end_matches(".maya");
        for (channel, bytes) in [("stdout", &out.stdout), ("stderr", &out.stderr)] {
            let golden = dir.join(format!("{stem}.{channel}"));
            if bless {
                if bytes.is_empty() {
                    let _ = std::fs::remove_file(&golden);
                } else {
                    std::fs::write(&golden, bytes).unwrap();
                }
                continue;
            }
            let expected = std::fs::read(&golden).unwrap_or_default();
            if expected != **bytes {
                failures.push(format!(
                    "{name}: {channel} drifted from golden {stem}.{channel}\n\
                     --- expected ---\n{}\n--- actual ---\n{}",
                    String::from_utf8_lossy(&expected),
                    String::from_utf8_lossy(bytes)
                ));
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n======\n"));
}

/// A mayad instance serving a scratch directory, shut down on drop.
struct Mayad {
    child: Child,
    sock: PathBuf,
}

impl Mayad {
    fn start(cwd: &Path) -> Mayad {
        let sock = cwd.join("mayad.sock");
        let child = Command::new(env!("CARGO_BIN_EXE_mayad"))
            .current_dir(cwd)
            .arg(format!("--socket={}", sock.display()))
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        for _ in 0..400 {
            if UnixStream::connect(&sock).is_ok() {
                return Mayad { child, sock };
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        panic!("mayad did not come up on {}", sock.display());
    }

    fn request(&self, line: &str) -> Json {
        let mut s = UnixStream::connect(&self.sock).unwrap();
        s.write_all(line.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(s).read_line(&mut reply).unwrap();
        let parsed = parse_json(&reply).unwrap();
        assert_eq!(
            parsed.get("ok").and_then(Json::as_bool),
            Some(true),
            "server error for {line}: {reply}"
        );
        parsed
    }
}

impl Drop for Mayad {
    fn drop(&mut self) {
        if UnixStream::connect(&self.sock)
            .and_then(|mut s| s.write_all(b"{\"cmd\":\"shutdown\"}\n"))
            .is_ok()
        {
            let _ = self.child.wait();
        } else {
            let _ = self.child.kill();
        }
    }
}

/// Translate a corpus directive line into a mayad compile request.
fn request_line(file: &str, d: &Directives) -> String {
    let mut expand = false;
    let mut error_format = "human";
    let mut max_errors = 20u64;
    let mut uses = Vec::new();
    let mut it = d.args.iter();
    while let Some(a) = it.next() {
        if a == "--expand" {
            expand = true;
        } else if let Some(fmt) = a.strip_prefix("--error-format=") {
            error_format = if fmt == "json" { "json" } else { "human" };
        } else if let Some(n) = a.strip_prefix("--max-errors=") {
            max_errors = n.parse().unwrap();
        } else if a == "-use" {
            uses.push(json_string(it.next().expect("-use needs a value")));
        } else {
            panic!("corpus directive arg {a:?} has no mayad protocol mapping");
        }
    }
    format!(
        "{{\"files\":[{}],\"expand\":{expand},\"error_format\":{},\
         \"max_errors\":{max_errors},\"uses\":[{}]}}",
        json_string(file),
        json_string(error_format),
        uses.join(",")
    )
}

fn assert_matches_cold(name: &str, step: &str, warm: &Json, cold: &Output) {
    assert_eq!(
        warm.get("stdout").and_then(Json::as_str).unwrap(),
        String::from_utf8_lossy(&cold.stdout),
        "{name}: warm {step} stdout differs from cold mayac"
    );
    assert_eq!(
        warm.get("stderr").and_then(Json::as_str).unwrap(),
        String::from_utf8_lossy(&cold.stderr),
        "{name}: warm {step} stderr differs from cold mayac"
    );
    assert_eq!(
        warm.get("success").and_then(Json::as_bool).unwrap(),
        cold.status.success(),
        "{name}: warm {step} success flag differs from cold mayac exit status"
    );
}

/// Pool determinism: the whole conformance corpus compiled through
/// in-process worker pools of 1, 2, and 8 workers produces byte-identical
/// reply strings. Every program is its own client with a three-step
/// schedule (compile, identical re-request, real edit); the steps of all
/// clients are submitted interleaved so larger pools genuinely serve
/// clients concurrently, while per-client order — the determinism
/// contract — must hold at every pool size.
#[test]
fn corpus_deterministic_across_pool_sizes() {
    use maya::core::service::{CompilePool, PoolConfig, PoolRequest};
    use maya::core::{ErrorFormat, RequestOpts};
    use std::sync::Arc;

    let dir = corpus_dir();
    let mut cases = Vec::new();
    for name in corpus_programs(&dir) {
        let src = std::fs::read_to_string(dir.join(&name)).unwrap();
        let d = parse_directives(&src);
        let mut opts = RequestOpts::default();
        let mut it = d.args.iter();
        while let Some(a) = it.next() {
            if a == "--expand" {
                opts.expand = true;
            } else if let Some(fmt) = a.strip_prefix("--error-format=") {
                opts.error_format =
                    if fmt == "json" { ErrorFormat::Json } else { ErrorFormat::Human };
            } else if let Some(n) = a.strip_prefix("--max-errors=") {
                opts.max_errors = n.parse().unwrap();
            } else if a == "-use" {
                opts.uses.push(it.next().expect("-use needs a value").clone());
            } else {
                panic!("corpus directive arg {a:?} has no RequestOpts mapping");
            }
        }
        let steps = [
            src.clone(),
            src.clone(),
            format!("{src}\nclass ZZTouched {{ }}\n"),
        ];
        cases.push((name, steps, opts));
    }

    let run = |workers: usize| -> Vec<Vec<String>> {
        let pool = CompilePool::start(PoolConfig {
            workers,
            queue_cap: 4 * cases.len(),
            installer: Some(Arc::new(|c| {
                maya::macrolib::install(c);
                maya::multijava::install(c);
            })),
            ..PoolConfig::default()
        });
        let mut pending: Vec<Vec<std::sync::mpsc::Receiver<String>>> =
            cases.iter().map(|_| Vec::new()).collect();
        for step in 0..3 {
            for (i, (name, steps, opts)) in cases.iter().enumerate() {
                let req = PoolRequest::Sources {
                    sources: vec![(name.clone(), steps[step].clone())],
                    opts: opts.clone(),
                };
                pending[i].push(pool.submit(name, req));
            }
        }
        let replies = pending
            .into_iter()
            .map(|rxs| rxs.into_iter().map(|rx| rx.recv().unwrap()).collect())
            .collect();
        pool.shutdown();
        replies
    };

    let golden = run(1);
    for (i, (name, ..)) in cases.iter().enumerate() {
        for (step, reply) in golden[i].iter().enumerate() {
            let parsed = parse_json(reply).unwrap();
            assert_eq!(
                parsed.get("ok").and_then(Json::as_bool),
                Some(true),
                "{name}: step {step} was refused by the single-worker pool: {reply}"
            );
        }
        let reuse = parse_json(&golden[i][1]).unwrap();
        assert_eq!(
            reuse.get("full_reuse").and_then(Json::as_bool),
            Some(true),
            "{name}: identical re-request through the pool was not a full reuse"
        );
    }
    for workers in [2usize, 8] {
        let got = run(workers);
        for (i, (name, ..)) in cases.iter().enumerate() {
            assert_eq!(
                golden[i], got[i],
                "{name}: {workers}-worker pool replies diverge from the single-worker pool"
            );
        }
    }
}

/// Differential pinning: for every corpus program the warm server output is
/// byte-identical to cold `mayac`; an identical re-request is a full reuse;
/// touching the file without changing it rebuilds nothing; a token-identical
/// edit (trailing comment) still rebuilds nothing; a real edit recompiles
/// and again matches a cold run on the edited source.
#[test]
fn corpus_cold_warm_differential() {
    let corpus = corpus_dir();
    let scratch = std::env::temp_dir().join(format!("maya-conf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let server = Mayad::start(&scratch);

    for name in corpus_programs(&corpus) {
        let src = std::fs::read_to_string(corpus.join(&name)).unwrap();
        let d = parse_directives(&src);
        let local = scratch.join(&name);
        std::fs::write(&local, &src).unwrap();
        let req = request_line(&name, &d);

        // Cold reference vs first warm-server compile.
        let cold = run_mayac(&scratch, &d, &name);
        let warm = server.request(&req);
        assert_matches_cold(&name, "first", &warm, &cold);

        // Identical request: everything is reused, output unchanged.
        let again = server.request(&req);
        assert_matches_cold(&name, "reuse", &again, &cold);
        assert_eq!(
            again.get("full_reuse").and_then(Json::as_bool),
            Some(true),
            "{name}: identical second request was not a full reuse"
        );

        // Touch without change: same bytes rewritten, nothing rebuilds.
        std::fs::write(&local, &src).unwrap();
        let touched = server.request(&req);
        assert_matches_cold(&name, "touch", &touched, &cold);
        assert_eq!(
            touched.get("full_reuse").and_then(Json::as_bool),
            Some(true),
            "{name}: touch-without-change triggered a rebuild"
        );

        if d.noedit {
            continue;
        }

        // Trailing comment: bytes change but the token stream does not, so
        // the server detects zero changed files and reuses everything.
        std::fs::write(&local, format!("{src}\n// warmed over\n")).unwrap();
        let commented = server.request(&req);
        assert_matches_cold(&name, "comment-edit", &commented, &cold);
        assert_eq!(
            commented.get("full_reuse").and_then(Json::as_bool),
            Some(true),
            "{name}: token-identical comment edit triggered a rebuild"
        );

        // Real edit: the server recompiles and must match a fresh cold run
        // on the edited source byte-for-byte.
        let edited = format!("{src}\nclass ZZTouched {{ }}\n");
        std::fs::write(&local, &edited).unwrap();
        let cold_edited = run_mayac(&scratch, &d, &name);
        let recompiled = server.request(&req);
        assert_matches_cold(&name, "real-edit", &recompiled, &cold_edited);
        assert_eq!(
            recompiled.get("full_reuse").and_then(Json::as_bool),
            Some(false),
            "{name}: real edit was wrongly treated as a full reuse"
        );
        assert!(
            recompiled.get("files_recompiled").and_then(Json::as_u64).unwrap() >= 1,
            "{name}: real edit recompiled no files"
        );
    }

    drop(server);
    let _ = std::fs::remove_dir_all(&scratch);
}
