//! The compile server: mayad's NDJSON protocol over a unix socket, and the
//! incremental session's invalidation cone — editing one file of an import
//! chain recompiles exactly that file and its downstream dependents, pinned
//! by the `incr_*` telemetry counters.

use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use maya::core::json::{parse_json, Json};
use maya::telemetry::{self, Counter};
use maya::{CompileOptions, RequestOpts, Session};

// ---- mayad protocol ----------------------------------------------------------

struct Mayad {
    child: Child,
    sock: PathBuf,
}

impl Mayad {
    fn start(extra: &[String]) -> Mayad {
        Mayad::start_env(extra, &[])
    }

    fn start_env(extra: &[String], envs: &[(&str, &str)]) -> Mayad {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mayad-test-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("srv.sock");
        let _ = std::fs::remove_file(&sock);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_mayad"));
        cmd.current_dir(&dir)
            .arg(format!("--socket={}", sock.display()))
            .args(extra)
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let child = cmd.spawn().unwrap();
        for _ in 0..400 {
            if UnixStream::connect(&sock).is_ok() {
                return Mayad { child, sock };
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        panic!("mayad did not come up");
    }

    fn raw_request(&self, line: &str) -> Json {
        let mut s = UnixStream::connect(&self.sock).unwrap();
        s.write_all(line.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(s).read_line(&mut reply).unwrap();
        parse_json(&reply).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"))
    }

    fn dir(&self) -> &std::path::Path {
        self.sock.parent().unwrap()
    }
}

impl Drop for Mayad {
    fn drop(&mut self) {
        if UnixStream::connect(&self.sock)
            .and_then(|mut s| s.write_all(b"{\"cmd\":\"shutdown\"}\n"))
            .is_ok()
        {
            let _ = self.child.wait();
        } else {
            let _ = self.child.kill();
        }
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

#[test]
fn mayad_protocol_round_trip() {
    let srv = Mayad::start(&["--max-inflight=2".to_owned()]);

    // ping
    let pong = srv.raw_request(r#"{"cmd":"ping"}"#);
    assert!(ok(&pong) && pong.get("pong").and_then(Json::as_bool) == Some(true));

    // malformed JSON and protocol violations are error replies, not hangs
    for bad in [
        "{not json",
        r#"{"cmd":"frobnicate"}"#,
        r#"{"no_files": true}"#,
        r#"{"files": []}"#,
        r#"{"files": [7]}"#,
        r#"{"files": ["x.maya"], "max_errors": 0}"#,
        r#"{"files": ["x.maya"], "error_format": "xml"}"#,
    ] {
        let resp = srv.raw_request(bad);
        assert!(!ok(&resp), "expected error reply for {bad}: {resp:?}");
        assert!(resp.get("error").and_then(Json::as_str).is_some());
    }

    // a compile of a missing file fails gracefully with a diagnostic
    let resp = srv.raw_request(r#"{"files": ["absent.maya"]}"#);
    assert!(ok(&resp));
    assert_eq!(resp.get("success").and_then(Json::as_bool), Some(false));
    assert!(resp
        .get("stderr")
        .and_then(Json::as_str)
        .unwrap()
        .contains("cannot read absent.maya"));

    // a real compile, twice: second is a full reuse
    std::fs::write(
        srv.dir().join("hello.maya"),
        r#"class Main { static void main() { System.out.println("srv"); } }"#,
    )
    .unwrap();
    let first = srv.raw_request(r#"{"files": ["hello.maya"]}"#);
    assert!(ok(&first));
    assert_eq!(first.get("stdout").and_then(Json::as_str), Some("srv\n"));
    assert_eq!(first.get("full_reuse").and_then(Json::as_bool), Some(false));
    let second = srv.raw_request(r#"{"files": ["hello.maya"]}"#);
    assert_eq!(second.get("stdout").and_then(Json::as_str), Some("srv\n"));
    assert_eq!(second.get("full_reuse").and_then(Json::as_bool), Some(true));

    // stats reflect the traffic and the retained LALR table memo
    let stats = srv.raw_request(r#"{"cmd":"stats"}"#);
    assert!(ok(&stats));
    let s = stats.get("stats").unwrap();
    assert!(s.get("requests").and_then(Json::as_u64).unwrap() >= 3);
    assert_eq!(s.get("full_reuses").and_then(Json::as_u64), Some(1));
    assert!(s.get("table_memo").and_then(Json::as_u64).unwrap() >= 1);

    fn num(v: Option<&Json>) -> f64 {
        match v {
            Some(Json::Num(n)) => *n,
            other => panic!("expected a number, got {other:?}"),
        }
    }

    // Latency: every compile request lands one sample; the percentile
    // ladder is monotone and every bucket interval is well-formed.
    let lat = s.get("latency").expect("latency object");
    let count = lat.get("count").and_then(Json::as_u64).unwrap();
    assert!(count >= 3, "3 compile requests served, latency count = {count}");
    let p50 = num(lat.get("p50_ms"));
    let p95 = num(lat.get("p95_ms"));
    let p99 = num(lat.get("p99_ms"));
    let max = num(lat.get("max_ms"));
    assert!(num(lat.get("mean_ms")) > 0.0);
    assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99 && p99 <= max, "{p50} {p95} {p99} {max}");
    let buckets = lat.get("buckets").and_then(Json::as_arr).expect("buckets array");
    assert!(!buckets.is_empty());
    let mut in_buckets = 0;
    for b in buckets {
        assert!(num(b.get("lo_ms")) <= num(b.get("hi_ms")));
        in_buckets += b.get("count").and_then(Json::as_u64).unwrap();
    }
    assert_eq!(in_buckets, count, "bucket counts must sum to the sample count");

    // Per-phase breakdown aggregated across requests.
    let phases = s.get("phases").expect("phases object");
    for p in ["lex", "parse", "interp"] {
        let ph = phases.get(p).unwrap_or_else(|| panic!("phase {p} missing"));
        assert!(ph.get("calls").and_then(Json::as_u64).unwrap() > 0);
        assert!(num(ph.get("ms")) >= 0.0);
    }

    // Uniform cache gauges; the LALR memo saw real traffic.
    let caches = s.get("caches").expect("caches object");
    for c in [
        "lalr_memo",
        "force_cache",
        "unit_cache",
        "class_body_cache",
        "lower_store",
        "dispatch_memo",
    ] {
        let g = caches.get(c).unwrap_or_else(|| panic!("cache {c} missing"));
        for k in ["hits", "misses", "size", "evictions"] {
            assert!(g.get(k).and_then(Json::as_u64).is_some(), "{c}.{k}");
        }
        let ratio = num(g.get("hit_ratio"));
        assert!((0.0..=1.0).contains(&ratio), "{c} hit_ratio {ratio}");
    }
    let lalr = caches.get("lalr_memo").unwrap();
    assert!(
        lalr.get("hits").and_then(Json::as_u64).unwrap()
            + lalr.get("misses").and_then(Json::as_u64).unwrap()
            >= 1,
        "LALR memo must have seen traffic"
    );
    assert!(lalr.get("size").and_then(Json::as_u64).unwrap() >= 1);
}

// ---- invalidation cone -------------------------------------------------------

/// a.maya declares the `TickA` extension; b.maya imports it and declares
/// `TickB`; c.maya imports `TickB` and holds `Main`. The dependency chain
/// is a <- b <- c.
fn chain_sources(b_label: &str, c_label: &str) -> Vec<(String, String)> {
    let a = r#"
        abstract Statement syntax(ticka(Expression) lazy(BraceTree, BlockStmts));

        Statement syntax
        TickA(ticka(Expression n) lazy(BraceTree, BlockStmts) body)
        {
            return new Statement {
                for (int ia = 0; ia < $n; ia++) { $body }
            };
        }
    "#
    .to_owned();
    let b = format!(
        r#"
        abstract Statement syntax(tickb(Expression) lazy(BraceTree, BlockStmts));

        Statement syntax
        TickB(tickb(Expression n) lazy(BraceTree, BlockStmts) body)
        {{
            return new Statement {{
                for (int ib = 0; ib < $n; ib++) {{ $body }}
            }};
        }}

        class Bee {{
            static void poke() {{
                use TickA;
                ticka (2) {{ System.out.println("{b_label}"); }}
            }}
        }}
    "#
    );
    let c = format!(
        r#"
        class Main {{
            static void main() {{
                Bee.poke();
                use TickB;
                tickb (2) {{ System.out.println("{c_label}"); }}
            }}
        }}
    "#
    );
    vec![
        ("a.maya".to_owned(), a),
        ("b.maya".to_owned(), b),
        ("c.maya".to_owned(), c),
    ]
}

#[test]
fn invalidation_cone_recompiles_exact_dependents() {
    let mut session = Session::new(CompileOptions::default(), None);
    let opts = RequestOpts::default();

    let cold = session.compile_sources(&chain_sources("bee", "sea"), &opts);
    assert!(cold.success, "cold chain compile failed:\n{}", cold.stderr);
    assert_eq!(cold.stdout, "bee\nbee\nsea\nsea\n");

    // Edit the middle file: b itself and its dependent c recompile; a, which
    // b depends on but which depends on nothing changed, is reused.
    let t = telemetry::Session::start(telemetry::Config::default());
    let edited = session.compile_sources(&chain_sources("buzz", "sea"), &opts);
    let r = t.finish();
    assert!(edited.success, "{}", edited.stderr);
    assert_eq!(edited.stdout, "buzz\nbuzz\nsea\nsea\n");
    assert!(!edited.full_reuse);
    assert_eq!(
        (edited.files_changed, edited.files_recompiled, edited.files_reused),
        (1, 2, 1),
        "editing b.maya must recompile exactly {{b, c}} and reuse a"
    );
    assert_eq!(r.counter(Counter::IncrFilesChanged), 1);
    assert_eq!(r.counter(Counter::IncrFilesRecompiled), 2);
    assert_eq!(r.counter(Counter::IncrFilesReused), 1);
    assert_eq!(r.counter(Counter::IncrFullReuses), 0);

    // Edit the leaf: only c recompiles.
    let t = telemetry::Session::start(telemetry::Config::default());
    let leaf = session.compile_sources(&chain_sources("buzz", "surf"), &opts);
    let r = t.finish();
    assert_eq!(leaf.stdout, "buzz\nbuzz\nsurf\nsurf\n");
    assert_eq!(
        (leaf.files_changed, leaf.files_recompiled, leaf.files_reused),
        (1, 1, 2),
        "editing c.maya must recompile only c"
    );
    assert_eq!(r.counter(Counter::IncrFilesRecompiled), 1);

    // Edit the root: the whole cone (a, b, c) recompiles.
    let mut rooted = chain_sources("buzz", "surf");
    rooted[0].1.push_str("\n// root tweak forcing a token change\nclass ARoot { }\n");
    let root = session.compile_sources(&rooted, &opts);
    assert_eq!(root.stdout, "buzz\nbuzz\nsurf\nsurf\n");
    assert_eq!(
        (root.files_changed, root.files_recompiled, root.files_reused),
        (1, 3, 0),
        "editing a.maya must recompile the full downstream cone"
    );

    // Comment-only edit: the token stream is unchanged, so the whole
    // compilation is reused without recompiling anything.
    let t = telemetry::Session::start(telemetry::Config::default());
    let mut commented = rooted.clone();
    commented[1].1.push_str("\n// harmless trailing comment\n");
    let reused = session.compile_sources(&commented, &opts);
    let r = t.finish();
    assert!(reused.full_reuse, "comment-only edit must be a full reuse");
    assert_eq!(reused.stdout, root.stdout);
    assert_eq!(reused.stderr, root.stderr);
    assert_eq!(r.counter(Counter::IncrFullReuses), 1);
    assert_eq!(r.counter(Counter::IncrFilesRecompiled), 0);

    let stats = session.stats();
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.full_reuses, 1);
}

// ---- request crash isolation -------------------------------------------------

/// A request that panics outside the per-file compile sandbox must come
/// back as a JSON error reply — and the server must keep serving. The
/// `server` fault site injects exactly such a panic on the next compile
/// request; control requests are untouched.
#[test]
fn panicking_request_is_isolated_and_server_survives() {
    let srv = Mayad::start_env(&[], &[("MAYA_FAULTS", "server:panic")]);

    std::fs::write(
        srv.dir().join("ok.maya"),
        r#"class Main { static void main() { System.out.println("alive"); } }"#,
    )
    .unwrap();

    // First compile request trips the armed fault and panics in the
    // request handler. The client still gets a structured error reply.
    let hit = srv.raw_request(r#"{"files": ["ok.maya"]}"#);
    assert!(!ok(&hit), "panicked request must be an error reply: {hit:?}");
    let msg = hit.get("error").and_then(Json::as_str).unwrap();
    assert!(
        msg.contains("request panicked (isolated)"),
        "error should name the isolated panic: {msg:?}"
    );

    // The server survived: control requests and fresh compiles work.
    let pong = srv.raw_request(r#"{"cmd":"ping"}"#);
    assert!(ok(&pong) && pong.get("pong").and_then(Json::as_bool) == Some(true));
    let resp = srv.raw_request(r#"{"files": ["ok.maya"]}"#);
    assert!(ok(&resp), "server must keep compiling after isolation: {resp:?}");
    assert_eq!(resp.get("success").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("stdout").and_then(Json::as_str), Some("alive\n"));
}
