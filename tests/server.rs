//! The compile server: mayad's NDJSON protocol over a unix socket, and the
//! incremental session's invalidation cone — editing one file of an import
//! chain recompiles exactly that file and its downstream dependents, pinned
//! by the `incr_*` telemetry counters.

use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use maya::core::json::{parse_json, Json};
use maya::telemetry::{self, Counter};
use maya::{CompileOptions, RequestOpts, Session};

// ---- mayad protocol ----------------------------------------------------------

struct Mayad {
    child: Child,
    sock: PathBuf,
}

impl Mayad {
    fn start(extra: &[String]) -> Mayad {
        Mayad::start_env(extra, &[])
    }

    fn start_env(extra: &[String], envs: &[(&str, &str)]) -> Mayad {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mayad-test-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("srv.sock");
        let _ = std::fs::remove_file(&sock);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_mayad"));
        cmd.current_dir(&dir)
            .arg(format!("--socket={}", sock.display()))
            .args(extra)
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let child = cmd.spawn().unwrap();
        for _ in 0..400 {
            if UnixStream::connect(&sock).is_ok() {
                return Mayad { child, sock };
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        panic!("mayad did not come up");
    }

    fn raw_request(&self, line: &str) -> Json {
        let mut s = UnixStream::connect(&self.sock).unwrap();
        s.write_all(line.as_bytes()).unwrap();
        s.write_all(b"\n").unwrap();
        let mut reply = String::new();
        BufReader::new(s).read_line(&mut reply).unwrap();
        parse_json(&reply).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"))
    }

    fn dir(&self) -> &std::path::Path {
        self.sock.parent().unwrap()
    }
}

impl Drop for Mayad {
    fn drop(&mut self) {
        if UnixStream::connect(&self.sock)
            .and_then(|mut s| s.write_all(b"{\"cmd\":\"shutdown\"}\n"))
            .is_ok()
        {
            let _ = self.child.wait();
        } else {
            let _ = self.child.kill();
        }
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

#[test]
fn mayad_protocol_round_trip() {
    let srv = Mayad::start(&["--max-inflight=2".to_owned()]);

    // ping
    let pong = srv.raw_request(r#"{"cmd":"ping"}"#);
    assert!(ok(&pong) && pong.get("pong").and_then(Json::as_bool) == Some(true));

    // malformed JSON and protocol violations are error replies, not hangs
    for bad in [
        "{not json",
        r#"{"cmd":"frobnicate"}"#,
        r#"{"no_files": true}"#,
        r#"{"files": []}"#,
        r#"{"files": [7]}"#,
        r#"{"files": ["x.maya"], "max_errors": 0}"#,
        r#"{"files": ["x.maya"], "error_format": "xml"}"#,
    ] {
        let resp = srv.raw_request(bad);
        assert!(!ok(&resp), "expected error reply for {bad}: {resp:?}");
        assert!(resp.get("error").and_then(Json::as_str).is_some());
    }

    // a compile of a missing file fails gracefully with a diagnostic
    let resp = srv.raw_request(r#"{"files": ["absent.maya"]}"#);
    assert!(ok(&resp));
    assert_eq!(resp.get("success").and_then(Json::as_bool), Some(false));
    assert!(resp
        .get("stderr")
        .and_then(Json::as_str)
        .unwrap()
        .contains("cannot read absent.maya"));

    // a real compile, twice: second is a full reuse
    std::fs::write(
        srv.dir().join("hello.maya"),
        r#"class Main { static void main() { System.out.println("srv"); } }"#,
    )
    .unwrap();
    let first = srv.raw_request(r#"{"files": ["hello.maya"]}"#);
    assert!(ok(&first));
    assert_eq!(first.get("stdout").and_then(Json::as_str), Some("srv\n"));
    assert_eq!(first.get("full_reuse").and_then(Json::as_bool), Some(false));
    let second = srv.raw_request(r#"{"files": ["hello.maya"]}"#);
    assert_eq!(second.get("stdout").and_then(Json::as_str), Some("srv\n"));
    assert_eq!(second.get("full_reuse").and_then(Json::as_bool), Some(true));

    // stats reflect the traffic and the retained LALR table memo
    let stats = srv.raw_request(r#"{"cmd":"stats"}"#);
    assert!(ok(&stats));
    let s = stats.get("stats").unwrap();
    assert!(s.get("requests").and_then(Json::as_u64).unwrap() >= 3);
    assert_eq!(s.get("full_reuses").and_then(Json::as_u64), Some(1));
    assert!(s.get("table_memo").and_then(Json::as_u64).unwrap() >= 1);

    fn num(v: Option<&Json>) -> f64 {
        match v {
            Some(Json::Num(n)) => *n,
            other => panic!("expected a number, got {other:?}"),
        }
    }

    // Latency: every compile request lands one sample; the percentile
    // ladder is monotone and every bucket interval is well-formed.
    let lat = s.get("latency").expect("latency object");
    let count = lat.get("count").and_then(Json::as_u64).unwrap();
    assert!(count >= 3, "3 compile requests served, latency count = {count}");
    let p50 = num(lat.get("p50_ms"));
    let p95 = num(lat.get("p95_ms"));
    let p99 = num(lat.get("p99_ms"));
    let max = num(lat.get("max_ms"));
    assert!(num(lat.get("mean_ms")) > 0.0);
    assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99 && p99 <= max, "{p50} {p95} {p99} {max}");
    let buckets = lat.get("buckets").and_then(Json::as_arr).expect("buckets array");
    assert!(!buckets.is_empty());
    let mut in_buckets = 0;
    for b in buckets {
        assert!(num(b.get("lo_ms")) <= num(b.get("hi_ms")));
        in_buckets += b.get("count").and_then(Json::as_u64).unwrap();
    }
    assert_eq!(in_buckets, count, "bucket counts must sum to the sample count");

    // Per-phase breakdown aggregated across requests.
    let phases = s.get("phases").expect("phases object");
    for p in ["lex", "parse", "interp"] {
        let ph = phases.get(p).unwrap_or_else(|| panic!("phase {p} missing"));
        assert!(ph.get("calls").and_then(Json::as_u64).unwrap() > 0);
        assert!(num(ph.get("ms")) >= 0.0);
    }

    // Uniform cache gauges; the LALR memo saw real traffic.
    let caches = s.get("caches").expect("caches object");
    for c in [
        "lalr_memo",
        "force_cache",
        "unit_cache",
        "class_body_cache",
        "lower_store",
        "dispatch_memo",
        "lex_share",
    ] {
        let g = caches.get(c).unwrap_or_else(|| panic!("cache {c} missing"));
        for k in ["hits", "misses", "size", "evictions"] {
            assert!(g.get(k).and_then(Json::as_u64).is_some(), "{c}.{k}");
        }
        let ratio = num(g.get("hit_ratio"));
        assert!((0.0..=1.0).contains(&ratio), "{c} hit_ratio {ratio}");
    }
    let lalr = caches.get("lalr_memo").unwrap();
    assert!(
        lalr.get("hits").and_then(Json::as_u64).unwrap()
            + lalr.get("misses").and_then(Json::as_u64).unwrap()
            >= 1,
        "LALR memo must have seen traffic"
    );
    assert!(lalr.get("size").and_then(Json::as_u64).unwrap() >= 1);
}

// ---- invalidation cone -------------------------------------------------------

/// a.maya declares the `TickA` extension; b.maya imports it and declares
/// `TickB`; c.maya imports `TickB` and holds `Main`. The dependency chain
/// is a <- b <- c.
fn chain_sources(b_label: &str, c_label: &str) -> Vec<(String, String)> {
    let a = r#"
        abstract Statement syntax(ticka(Expression) lazy(BraceTree, BlockStmts));

        Statement syntax
        TickA(ticka(Expression n) lazy(BraceTree, BlockStmts) body)
        {
            return new Statement {
                for (int ia = 0; ia < $n; ia++) { $body }
            };
        }
    "#
    .to_owned();
    let b = format!(
        r#"
        abstract Statement syntax(tickb(Expression) lazy(BraceTree, BlockStmts));

        Statement syntax
        TickB(tickb(Expression n) lazy(BraceTree, BlockStmts) body)
        {{
            return new Statement {{
                for (int ib = 0; ib < $n; ib++) {{ $body }}
            }};
        }}

        class Bee {{
            static void poke() {{
                use TickA;
                ticka (2) {{ System.out.println("{b_label}"); }}
            }}
        }}
    "#
    );
    let c = format!(
        r#"
        class Main {{
            static void main() {{
                Bee.poke();
                use TickB;
                tickb (2) {{ System.out.println("{c_label}"); }}
            }}
        }}
    "#
    );
    vec![
        ("a.maya".to_owned(), a),
        ("b.maya".to_owned(), b),
        ("c.maya".to_owned(), c),
    ]
}

#[test]
fn invalidation_cone_recompiles_exact_dependents() {
    let mut session = Session::new(CompileOptions::default(), None);
    let opts = RequestOpts::default();

    let cold = session.compile_sources(&chain_sources("bee", "sea"), &opts);
    assert!(cold.success, "cold chain compile failed:\n{}", cold.stderr);
    assert_eq!(cold.stdout, "bee\nbee\nsea\nsea\n");

    // Edit the middle file: b itself and its dependent c recompile; a, which
    // b depends on but which depends on nothing changed, is reused.
    let t = telemetry::Session::start(telemetry::Config::default());
    let edited = session.compile_sources(&chain_sources("buzz", "sea"), &opts);
    let r = t.finish();
    assert!(edited.success, "{}", edited.stderr);
    assert_eq!(edited.stdout, "buzz\nbuzz\nsea\nsea\n");
    assert!(!edited.full_reuse);
    assert_eq!(
        (edited.files_changed, edited.files_recompiled, edited.files_reused),
        (1, 2, 1),
        "editing b.maya must recompile exactly {{b, c}} and reuse a"
    );
    assert_eq!(r.counter(Counter::IncrFilesChanged), 1);
    assert_eq!(r.counter(Counter::IncrFilesRecompiled), 2);
    assert_eq!(r.counter(Counter::IncrFilesReused), 1);
    assert_eq!(r.counter(Counter::IncrFullReuses), 0);

    // Edit the leaf: only c recompiles.
    let t = telemetry::Session::start(telemetry::Config::default());
    let leaf = session.compile_sources(&chain_sources("buzz", "surf"), &opts);
    let r = t.finish();
    assert_eq!(leaf.stdout, "buzz\nbuzz\nsurf\nsurf\n");
    assert_eq!(
        (leaf.files_changed, leaf.files_recompiled, leaf.files_reused),
        (1, 1, 2),
        "editing c.maya must recompile only c"
    );
    assert_eq!(r.counter(Counter::IncrFilesRecompiled), 1);

    // Edit the root: the whole cone (a, b, c) recompiles.
    let mut rooted = chain_sources("buzz", "surf");
    rooted[0].1.push_str("\n// root tweak forcing a token change\nclass ARoot { }\n");
    let root = session.compile_sources(&rooted, &opts);
    assert_eq!(root.stdout, "buzz\nbuzz\nsurf\nsurf\n");
    assert_eq!(
        (root.files_changed, root.files_recompiled, root.files_reused),
        (1, 3, 0),
        "editing a.maya must recompile the full downstream cone"
    );

    // Comment-only edit: the token stream is unchanged, so the whole
    // compilation is reused without recompiling anything.
    let t = telemetry::Session::start(telemetry::Config::default());
    let mut commented = rooted.clone();
    commented[1].1.push_str("\n// harmless trailing comment\n");
    let reused = session.compile_sources(&commented, &opts);
    let r = t.finish();
    assert!(reused.full_reuse, "comment-only edit must be a full reuse");
    assert_eq!(reused.stdout, root.stdout);
    assert_eq!(reused.stderr, root.stderr);
    assert_eq!(r.counter(Counter::IncrFullReuses), 1);
    assert_eq!(r.counter(Counter::IncrFilesRecompiled), 0);

    let stats = session.stats();
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.full_reuses, 1);
}

// ---- request crash isolation -------------------------------------------------

/// A request that panics outside the per-file compile sandbox must come
/// back as a JSON error reply — and the server must keep serving. The
/// `server` fault site injects exactly such a panic on the next compile
/// request; control requests are untouched.
#[test]
fn panicking_request_is_isolated_and_server_survives() {
    let srv = Mayad::start_env(&[], &[("MAYA_FAULTS", "server:panic")]);

    std::fs::write(
        srv.dir().join("ok.maya"),
        r#"class Main { static void main() { System.out.println("alive"); } }"#,
    )
    .unwrap();

    // First compile request trips the armed fault and panics in the
    // request handler. The client still gets a structured error reply.
    let hit = srv.raw_request(r#"{"files": ["ok.maya"]}"#);
    assert!(!ok(&hit), "panicked request must be an error reply: {hit:?}");
    let msg = hit.get("error").and_then(Json::as_str).unwrap();
    assert!(
        msg.contains("request panicked (isolated)"),
        "error should name the isolated panic: {msg:?}"
    );

    // The server survived: control requests and fresh compiles work.
    let pong = srv.raw_request(r#"{"cmd":"ping"}"#);
    assert!(ok(&pong) && pong.get("pong").and_then(Json::as_bool) == Some(true));
    let resp = srv.raw_request(r#"{"files": ["ok.maya"]}"#);
    assert!(ok(&resp), "server must keep compiling after isolation: {resp:?}");
    assert_eq!(resp.get("success").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("stdout").and_then(Json::as_str), Some("alive\n"));
}

/// The same isolation holds with a worker pool: the fault panics one
/// worker's request, that client gets the error reply, and every other
/// client (pinned to other workers or the same one) keeps compiling.
#[test]
fn panicking_request_is_isolated_with_worker_pool() {
    let srv = Mayad::start_env(
        &["--workers=4".to_owned()],
        &[("MAYA_FAULTS", "server:panic")],
    );

    std::fs::write(
        srv.dir().join("ok.maya"),
        r#"class Main { static void main() { System.out.println("alive"); } }"#,
    )
    .unwrap();

    // Client "a" trips the once-per-process fault.
    let hit = srv.raw_request(r#"{"files": ["ok.maya"], "client": "a"}"#);
    assert!(!ok(&hit), "panicked request must be an error reply: {hit:?}");
    assert!(hit
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("request panicked (isolated)"));

    // Other clients — routed to other workers — are untouched, and the
    // client whose session was reset recovers on its next request.
    for client in ["b", "c", "d", "a"] {
        let resp = srv.raw_request(&format!(
            r#"{{"files": ["ok.maya"], "client": "{client}"}}"#
        ));
        assert!(ok(&resp), "client {client} after isolation: {resp:?}");
        assert_eq!(resp.get("stdout").and_then(Json::as_str), Some("alive\n"));
    }
}

// ---- worker-pool concurrency -------------------------------------------------

/// A pipelined connection: write many request lines before reading any
/// reply. Replies must come back in request order.
struct Pipelined {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Pipelined {
    fn connect(srv: &Mayad) -> Pipelined {
        let stream = UnixStream::connect(&srv.sock).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Pipelined { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        parse_json(&reply).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"))
    }
}

/// Replies on one connection arrive in request order even when the
/// requests are pipelined (sent without waiting), mixing instant error
/// replies with real compiles.
#[test]
fn pipelined_replies_preserve_request_order() {
    let srv = Mayad::start(&["--workers=4".to_owned(), "--max-inflight=16".to_owned()]);
    std::fs::write(
        srv.dir().join("p.maya"),
        r#"class Main { static void main() { System.out.println("p"); } }"#,
    )
    .unwrap();

    let mut conn = Pipelined::connect(&srv);
    for i in 0..10 {
        if i % 3 == 0 {
            conn.send(r#"{"files": ["p.maya"]}"#);
        } else {
            // The error reply names the unknown cmd, tagging the reply
            // with its request index.
            conn.send(&format!(r#"{{"cmd":"frob{i}"}}"#));
        }
    }
    for i in 0..10 {
        let reply = conn.recv();
        if i % 3 == 0 {
            assert!(ok(&reply), "request {i}: {reply:?}");
            assert_eq!(reply.get("stdout").and_then(Json::as_str), Some("p\n"));
        } else {
            let msg = reply.get("error").and_then(Json::as_str).unwrap();
            assert!(
                msg.contains(&format!("frob{i}")),
                "reply {i} out of order: {msg:?}"
            );
        }
    }
}

/// The concurrency stress test: 32 clients, each issuing 50 mixed
/// requests (compile / edit / revert / stats / ping), against an 8-worker
/// server — and the exact same schedule against a single-worker server.
/// Every deterministic reply must match the single-worker golden
/// byte-for-byte, and each client's replies must arrive in its own
/// request order (proved by the per-step expected program output).
#[test]
fn worker_pool_stress_matches_single_worker_golden() {
    const CLIENTS: usize = 32;
    const STEPS: usize = 50;

    /// Runs the full schedule against one server; returns, per client,
    /// the raw reply line of every deterministic request (compiles and
    /// pings) in order. Stats replies carry timings and are validated
    /// structurally instead of collected.
    fn run_schedule(workers: usize) -> Vec<Vec<String>> {
        let srv = Mayad::start(&[format!("--workers={workers}")]);
        let mut out: Vec<Vec<String>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for client in 0..CLIENTS {
                let srv = &srv;
                handles.push(scope.spawn(move || {
                    let file = format!("c{client}.maya");
                    let path = srv.dir().join(&file);
                    let mut replies = Vec::new();
                    for step in 0..STEPS {
                        match step % 10 {
                            // stats: nondeterministic timings — check shape only
                            7 => {
                                let mut s = UnixStream::connect(&srv.sock).unwrap();
                                let req =
                                    format!("{{\"cmd\":\"stats\", \"client\": \"c{client}\"}}\n");
                                s.write_all(req.as_bytes()).unwrap();
                                let mut reply = String::new();
                                BufReader::new(s).read_line(&mut reply).unwrap();
                                let v = parse_json(&reply).unwrap();
                                assert!(ok(&v), "stats failed: {reply:?}");
                                assert!(v.get("stats").and_then(|s| s.get("latency")).is_some());
                            }
                            3 => {
                                let mut s = UnixStream::connect(&srv.sock).unwrap();
                                let req =
                                    format!("{{\"cmd\":\"ping\", \"client\": \"c{client}\"}}\n");
                                s.write_all(req.as_bytes()).unwrap();
                                let mut reply = String::new();
                                BufReader::new(s).read_line(&mut reply).unwrap();
                                replies.push(reply);
                            }
                            // compile; every 4th step edits, every other 4th
                            // reverts, so the session sees real invalidation
                            // traffic with full reuses in between
                            m => {
                                let label = if m % 4 == 0 { "a" } else { "b" };
                                if m % 2 == 0 {
                                    std::fs::write(
                                        &path,
                                        format!(
                                            "class Main {{ static void main() {{ System.out.println(\"c{client}:{label}\"); }} }}"
                                        ),
                                    )
                                    .unwrap();
                                }
                                let mut s = UnixStream::connect(&srv.sock).unwrap();
                                let req = format!(
                                    "{{\"files\": [\"{file}\"], \"client\": \"c{client}\"}}\n"
                                );
                                s.write_all(req.as_bytes()).unwrap();
                                let mut reply = String::new();
                                BufReader::new(s).read_line(&mut reply).unwrap();
                                let v = parse_json(&reply).unwrap();
                                // Reply order == request order: the output
                                // must be this step's expected label.
                                let expect = if m % 4 == 0 || (m % 2 == 1 && (m - 1) % 4 == 0) {
                                    format!("c{client}:a\n")
                                } else {
                                    format!("c{client}:b\n")
                                };
                                assert_eq!(
                                    v.get("stdout").and_then(Json::as_str),
                                    Some(expect.as_str()),
                                    "client {client} step {step}: {reply:?}"
                                );
                                replies.push(reply);
                            }
                        }
                    }
                    replies
                }));
            }
            for h in handles {
                out.push(h.join().unwrap());
            }
        });
        out
    }

    let golden = run_schedule(1);
    let pooled = run_schedule(8);
    assert_eq!(golden.len(), pooled.len());
    for (client, (g, p)) in golden.iter().zip(&pooled).enumerate() {
        assert_eq!(
            g, p,
            "client {client}: pool-of-8 replies must match pool-of-1 byte-for-byte"
        );
    }
}

// ---- quotas and backpressure -------------------------------------------------

/// Exceeding the per-client in-flight quota is a structured JSON refusal
/// delivered in order — and the connection stays usable afterwards.
#[test]
fn inflight_quota_refuses_excess_and_connection_survives() {
    let srv = Mayad::start(&["--workers=1".to_owned(), "--max-inflight=1".to_owned()]);
    let mut conn = Pipelined::connect(&srv);

    // The sleep occupies the client's single in-flight slot; the second
    // request is refused immediately (but replies stay ordered).
    conn.send(r#"{"cmd":"sleep","ms":400}"#);
    conn.send(r#"{"cmd":"ping"}"#);
    let first = conn.recv();
    assert!(ok(&first), "{first:?}");
    assert_eq!(first.get("slept_ms").and_then(Json::as_u64), Some(400));
    let second = conn.recv();
    assert!(!ok(&second), "over-quota request must be refused: {second:?}");
    assert_eq!(
        second.get("quota").and_then(Json::as_str),
        Some("max_inflight"),
        "{second:?}"
    );

    // Same connection, after the refusal: back to normal service.
    conn.send(r#"{"cmd":"ping"}"#);
    let pong = conn.recv();
    assert!(ok(&pong) && pong.get("pong").and_then(Json::as_bool) == Some(true));
}

/// An oversized request line is refused with the request-size quota and
/// the connection keeps working.
#[test]
fn request_size_quota_refuses_oversized_lines() {
    let srv = Mayad::start(&["--max-request-bytes=1024".to_owned()]);
    let mut conn = Pipelined::connect(&srv);

    let big = format!(
        r#"{{"files": ["x.maya"], "main": "{}"}}"#,
        "M".repeat(2000)
    );
    conn.send(&big);
    let refused = conn.recv();
    assert!(!ok(&refused), "{refused:?}");
    assert_eq!(
        refused.get("quota").and_then(Json::as_str),
        Some("request_bytes"),
        "{refused:?}"
    );

    conn.send(r#"{"cmd":"ping"}"#);
    let pong = conn.recv();
    assert!(ok(&pong) && pong.get("pong").and_then(Json::as_bool) == Some(true));
}

/// Queue saturation answers "overloaded" within a bounded time instead of
/// hanging the client: with one worker held busy and a one-slot queue,
/// excess requests are refused while the earlier ones still complete.
#[test]
fn saturated_queue_replies_overloaded_within_bounded_time() {
    let srv = Mayad::start(&[
        "--workers=1".to_owned(),
        "--queue-cap=1".to_owned(),
        "--max-inflight=32".to_owned(),
    ]);
    let mut conn = Pipelined::connect(&srv);

    let start = std::time::Instant::now();
    // #1 occupies the worker, #2 the queue slot; #3 finds the queue full
    // for longer than the bounded wait and is refused. (#1 sleeps past
    // #3's whole wait window, so the refusal is deterministic.)
    for _ in 0..3 {
        conn.send(r#"{"cmd":"sleep","ms":700}"#);
    }
    let r1 = conn.recv();
    let r2 = conn.recv();
    let r3 = conn.recv();
    assert!(ok(&r1) && ok(&r2), "{r1:?} {r2:?}");
    assert!(!ok(&r3), "request 3 must be refused: {r3:?}");
    assert_eq!(
        r3.get("overloaded").and_then(Json::as_bool),
        Some(true),
        "{r3:?}"
    );
    assert!(
        start.elapsed() < std::time::Duration::from_secs(8),
        "overload must be bounded, took {:?}",
        start.elapsed()
    );

    // The server is healthy once the backlog clears.
    conn.send(r#"{"cmd":"ping"}"#);
    let pong = conn.recv();
    assert!(ok(&pong) && pong.get("pong").and_then(Json::as_bool) == Some(true));
}

// ---- persistent artifact store ----------------------------------------------

/// `mayad --cache-dir`: a daemon persists artifacts to the store, and a
/// *restarted* daemon (fresh process, same cache directory) starts warm —
/// its first request hydrates from the store, byte-identical to the cold
/// run, with the `store_*` gauges showing the hits.
#[test]
fn restarted_mayad_starts_warm_from_cache_dir() {
    let cache = std::env::temp_dir().join(format!("mayad-restart-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let flags = vec![format!("--cache-dir={}", cache.display())];
    let src = r#"class Main { static void main() { System.out.println("warmth"); } }"#;

    let cold = {
        let srv = Mayad::start(&flags);
        std::fs::write(srv.dir().join("warm.maya"), src).unwrap();
        let r = srv.raw_request(r#"{"files": ["warm.maya"]}"#);
        assert!(ok(&r), "{r:?}");
        assert_eq!(r.get("success").and_then(Json::as_bool), Some(true));
        r.get("stdout").and_then(Json::as_str).unwrap().to_owned()
        // Drop: clean shutdown; the artifacts must outlive the process.
    };
    assert_eq!(cold, "warmth\n");
    let persisted = std::fs::read_dir(&cache).unwrap().count();
    assert!(persisted > 0, "the first daemon must leave artifacts behind");

    // Same request (same file name and content, different cwd and
    // process) against a restarted daemon: byte-identical, via the store.
    let srv = Mayad::start(&flags);
    std::fs::write(srv.dir().join("warm.maya"), src).unwrap();
    let r = srv.raw_request(r#"{"files": ["warm.maya"]}"#);
    assert!(ok(&r), "{r:?}");
    assert_eq!(r.get("stdout").and_then(Json::as_str), Some(cold.as_str()));

    let stats = srv.raw_request(r#"{"cmd":"stats"}"#);
    let caches = stats.get("stats").unwrap().get("caches").unwrap();
    let hits = |name: &str| {
        caches.get(name).and_then(|c| c.get("hits")).and_then(Json::as_u64).unwrap_or(0)
    };
    assert!(
        hits("store_outcome") >= 1,
        "the restarted daemon must hydrate the request outcome from the store: {stats:?}"
    );
    drop(srv);
    let _ = std::fs::remove_dir_all(&cache);
}
