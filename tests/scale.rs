//! Scale sanity: the pipeline handles programs far larger than the paper's
//! examples.

use maya::Compiler;
use std::fmt::Write as _;

#[test]
fn forty_classes_with_cross_references() {
    let mut src = String::new();
    for i in 0..40 {
        let _ = writeln!(src, "class C{i} {{");
        let _ = writeln!(src, "    int id() {{ return {i}; }}");
        if i > 0 {
            let _ = writeln!(
                src,
                "    int chained() {{ return new C{}().id() + id(); }}",
                i - 1
            );
        }
        for m in 0..8 {
            let _ = writeln!(
                src,
                "    int m{m}(int a) {{ int t = a * {m} + id(); return t - a; }}"
            );
        }
        let _ = writeln!(src, "}}");
    }
    let _ = writeln!(
        src,
        "class Main {{ static void main() {{ System.out.println(new C39().chained()); }} }}"
    );
    let c = Compiler::new();
    let out = c.compile_and_run("Big.maya", &src, "Main").unwrap();
    assert_eq!(out, "77\n"); // 38 + 39
}

#[test]
fn deeply_nested_expressions_parse_and_run() {
    let mut expr = String::from("1");
    for i in 2..=60 {
        expr = format!("({expr} + {i})");
    }
    let src = format!(
        "class Main {{ static void main() {{ System.out.println({expr}); }} }}"
    );
    let c = Compiler::new();
    let out = c.compile_and_run("Deep.maya", &src, "Main").unwrap();
    assert_eq!(out.trim().parse::<i32>().unwrap(), (1..=60).sum::<i32>());
}

#[test]
fn many_macro_expansions_in_one_method() {
    let mut body = String::new();
    for i in 0..25 {
        let _ = writeln!(body, "v{i}.elements().foreach(String s{i}) {{ total += 1; }}");
    }
    let mut decls = String::new();
    for i in 0..25 {
        let _ = writeln!(decls, "Vector v{i} = new Vector(); v{i}.addElement(\"x\");");
    }
    let src = format!(
        r#"
        import java.util.*;
        class Main {{
            static void main() {{
                int total = 0;
                {decls}
                use Foreach;
                {body}
                System.out.println(total);
            }}
        }}
        "#
    );
    let c = maya::macrolib::compiler_with_macros();
    let out = c.compile_and_run("Many.maya", &src, "Main").unwrap();
    assert_eq!(out, "25\n");
}
