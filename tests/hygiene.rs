//! E8 — static hygiene and referential transparency (paper §4.3).

use maya::macrolib::compiler_with_macros;
use maya::Compiler;

fn run(src: &str) -> String {
    let c = compiler_with_macros();
    match c.compile_and_run("Main.maya", src, "Main") {
        Ok(out) => out,
        Err(e) => panic!("compile/run failed: {} @ {:?}", e.message, e.span),
    }
}

#[test]
fn template_locals_never_capture_user_variables() {
    // Nested foreach over two enumerations: two template instantiations,
    // each with its own fresh enumVar, plus a user enumVar in scope.
    let out = run(r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector outer = new Vector();
                outer.addElement("a");
                outer.addElement("b");
                Vector inner = new Vector();
                inner.addElement("1");
                inner.addElement("2");
                String enumVar = "user";
                use Foreach;
                outer.elements().foreach(String o) {
                    inner.elements().foreach(String i) {
                        System.out.println(enumVar + ":" + o + i);
                    }
                }
            }
        }
    "#);
    assert_eq!(out, "user:a1\nuser:a2\nuser:b1\nuser:b2\n");
}

#[test]
fn generated_names_are_unique_per_expansion() {
    use maya::ast::pretty_node;
    let c = compiler_with_macros();
    c.add_source(
        "Main.maya",
        r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                use Foreach;
                v.elements().foreach(String a) { System.out.println(a); }
                v.elements().foreach(String b) { System.out.println(b); }
            }
        }
    "#,
    )
    .unwrap();
    c.compile().unwrap();
    let classes = c.classes();
    let id = classes.by_fqcn_str("Main").unwrap();
    let info = classes.info(id);
    let info = info.borrow();
    let body = info.methods[0].body.as_ref().unwrap().forced_node().unwrap();
    let text = pretty_node(&body);
    // Each expansion gets a distinct fresh loop variable.
    let names: Vec<&str> = text
        .split(|c: char| !(c.is_alphanumeric() || c == '$' || c == '_'))
        .filter(|w| w.contains('$'))
        .collect();
    let mut uniq: Vec<&str> = names.clone();
    uniq.sort();
    uniq.dedup();
    assert!(uniq.len() >= 2, "expected ≥2 distinct fresh names in:\n{text}");
}

#[test]
fn referential_transparency_for_class_names() {
    // The expansion's `java.util.Enumeration` resolves even though the user
    // shadows `Enumeration` with a local class of the same simple name.
    let out = run(r#"
        import java.util.*;
        class Enumeration { }
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("ok");
                use Foreach;
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
    "#);
    assert_eq!(out, "ok\n");
}

#[test]
fn shadowed_qualified_names_are_rejected_in_user_code() {
    // Paper §4.3's example: a class named `java` makes java.lang.System
    // inaccessible by its qualified name — but the macro library's strict
    // references still work.
    let src = r#"
        class java { }
        class Main {
            static void main() {
                java.lang.System.out.println("nope");
            }
        }
    "#;
    let c = Compiler::new();
    assert!(c.compile_and_run("Main.maya", src, "Main").is_err());
}

#[test]
fn hygiene_can_be_broken_explicitly() {
    // Reference.makeExpr-produced direct references: the generated
    // assignment targets the user's variable by design (the foreach loop
    // variable st is the user's own binding).
    let out = run(r#"
        import java.util.*;
        class Main {
            static void main() {
                Vector v = new Vector();
                v.addElement("x");
                use Foreach;
                v.elements().foreach(String st) {
                    System.out.println(st);
                }
            }
        }
    "#);
    assert_eq!(out, "x\n");
}
