//! Multi-error diagnostics: golden CLI behavior for parser recovery,
//! `--max-errors`, `--error-format=json`, and `--deny-warnings`.

use std::process::Command;

fn mayac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mayac"))
}

fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mayac-diag-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p
}

/// Three independent syntax errors on lines 3, 4, and 5.
const THREE_ERRORS: &str = "class Main {\n\
                            \x20   static void main() {\n\
                            \x20       int x = ;\n\
                            \x20       int y = @;\n\
                            \x20       boolean b = $;\n\
                            \x20   }\n\
                            }\n";

#[test]
fn three_errors_are_all_reported_with_locations() {
    let f = write_temp("e3.maya", THREE_ERRORS);
    let out = mayac().arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    for line in ["e3.maya:3:", "e3.maya:4:", "e3.maya:5:"] {
        assert!(stderr.contains(line), "missing {line} in:\n{stderr}");
    }
    assert!(
        stderr.contains("aborting due to 3 previous errors"),
        "{stderr}"
    );
}

#[test]
fn max_errors_one_stops_after_the_first() {
    let f = write_temp("cap.maya", THREE_ERRORS);
    let out = mayac().arg("--max-errors=1").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cap.maya:3:"), "{stderr}");
    assert!(!stderr.contains("cap.maya:4:"), "{stderr}");
    assert!(!stderr.contains("cap.maya:5:"), "{stderr}");
    assert!(stderr.contains("aborting due to 1 previous error"), "{stderr}");
}

#[test]
fn json_format_reports_all_errors_with_locations() {
    let f = write_temp("j3.maya", THREE_ERRORS);
    let out = mayac().arg("--error-format=json").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("\"schema\": \"maya-diagnostics/1\""),
        "{stderr}"
    );
    assert!(stderr.contains("\"errors\": 3"), "{stderr}");
    for line in ["\"line\": 3,", "\"line\": 4,", "\"line\": 5,"] {
        assert!(stderr.contains(line), "missing {line} in:\n{stderr}");
    }
    assert!(stderr.contains("\"severity\": \"error\""), "{stderr}");
}

#[test]
fn recovery_spans_multiple_methods() {
    // Errors in two different members: member-boundary recovery must let
    // the second method's error surface too.
    let src = "class Main {\n\
               \x20   static void f() { int a = ; }\n\
               \x20   static void g() { int b = @; }\n\
               \x20   static void main() { }\n\
               }\n";
    let f = write_temp("mm.maya", src);
    let out = mayac().arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mm.maya:2:"), "{stderr}");
    assert!(stderr.contains("mm.maya:3:"), "{stderr}");
}

#[test]
fn deny_warnings_accepts_a_clean_program() {
    let f = write_temp(
        "dw.maya",
        r#"class Main { static void main() { System.out.println("dw"); } }"#,
    );
    let out = mayac().arg("--deny-warnings").arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "dw\n");
}

#[test]
fn bad_robustness_flag_values_error_cleanly() {
    for args in [
        &["--max-errors=0", "x.maya"][..],
        &["--max-errors=nope", "x.maya"][..],
        &["--error-format=yaml", "x.maya"][..],
    ] {
        let out = mayac().args(args).output().unwrap();
        assert!(!out.status.success(), "args {args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
}

#[test]
fn successful_run_stays_clean_under_json_format() {
    // No diagnostics → no JSON document: stderr stays empty on success.
    let f = write_temp(
        "cleanj.maya",
        r#"class Main { static void main() { System.out.println("cj"); } }"#,
    );
    let out = mayac().arg("--error-format=json").arg(&f).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stderr), "");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "cj\n");
}
