//! End-to-end telemetry: the counters must make the paper's cost model
//! observable through the public pipeline.

use maya::telemetry::{self, Counter, Phase};
use maya::Compiler;

/// An extension library with two source Mayans sharing one production.
const TWO_MAYAN_EXT: &str = r#"
    abstract Statement syntax(MethodName(Formal) lazy(BraceTree, BlockStmts));

    Statement syntax
    EForEach(Expression:java.util.Enumeration enumExp
             \. foreach(Formal var)
             lazy(BraceTree, BlockStmts) body)
    {
        StrictTypeName castType = StrictTypeName.make(var.getType());

        return new Statement {
            for (java.util.Enumeration enumVar = $enumExp;
                 enumVar.hasMoreElements(); ) {
                $(DeclStmt.make(var))
                $(Reference.makeExpr(var.getLocation()))
                    = ($castType) enumVar.nextElement();
                $body
            }
        };
    }

    Statement syntax
    UnusedLog(Expression:java.lang.String msg
              \. log(Formal var)
              lazy(BraceTree, BlockStmts) body)
    {
        return new Statement {
            { System.out.println($msg); $body }
        };
    }
"#;

const APP: &str = r#"
    import java.util.*;
    class Main {
        static void main() {
            Hashtable h = new Hashtable();
            h.put("k", "v");
            use EForEach;
            h.keys().foreach(String st) {
                System.out.println(st);
            }
        }
    }
"#;

/// The paper's laziness claim (§4), measured: the `UnusedLog` Mayan is
/// compiled into a lazy `expand` method body that is registered but never
/// fired, so compiling eagerly would parse strictly more nodes than the
/// lazy pipeline actually forces.
#[test]
fn unused_mayan_body_is_never_forced() {
    let s = telemetry::Session::start(telemetry::Config::default());
    let c = Compiler::new();
    c.add_source("Ext.maya", TWO_MAYAN_EXT).unwrap();
    c.add_source("Main.maya", APP).unwrap();
    c.compile().unwrap();
    let out = c.run_main("Main").unwrap();
    let r = s.finish();
    assert_eq!(out, "k\n");
    let created = r.counter(Counter::LazyNodesCreated);
    let forced = r.counter(Counter::LazyNodesForced);
    assert!(
        forced < created,
        "an unused Mayan body must stay unforced: forced={forced} created={created}"
    );
    // And never more forced than created, by construction.
    assert!(forced <= created);
}

/// The counters cover the whole pipeline on an ordinary compile.
#[test]
fn full_pipeline_counters_are_populated() {
    let s = telemetry::Session::start(telemetry::Config::default());
    let c = maya::macrolib::compiler_with_macros();
    let out = c
        .compile_and_run(
            "Main.maya",
            r#"
            import java.util.*;
            class Main {
                static void main() {
                    Vector v = new Vector();
                    v.addElement("x");
                    use Foreach;
                    v.elements().foreach(String st) { System.out.println(st); }
                }
            }
            "#,
            "Main",
        )
        .unwrap();
    let r = s.finish();
    assert_eq!(out, "x\n");
    for c in [
        Counter::TokensLexed,
        Counter::TokenTreesBuilt,
        Counter::FilesLexed,
        Counter::TablesBuilt,
        Counter::GrammarExtensions,
        Counter::ParserShifts,
        Counter::ParserReductions,
        Counter::LazyNodesCreated,
        Counter::LazyNodesForced,
        Counter::DispatchReductions,
        Counter::DispatchCandidates,
        Counter::DispatchTests,
        Counter::MayansFired,
        Counter::TemplatesCompiled,
        Counter::TemplatesInstantiated,
        Counter::HygieneRenames,
        Counter::InterpCalls,
    ] {
        assert!(r.counter(c) > 0, "counter {} must be non-zero", c.name());
    }
    // The type-narrowed foreach dispatch runs static-type tests.
    assert!(r.counter(Counter::DispatchTypeTests) > 0);
    for p in [Phase::Lex, Phase::Parse, Phase::Dispatch, Phase::Force, Phase::Interp] {
        assert!(r.phase_calls(p) > 0, "phase {} must be entered", p.name());
    }
}

/// Dispatch traces identify the winning Mayan and the work done to pick it.
#[test]
fn dispatch_trace_names_the_winner() {
    let s = telemetry::Session::start(telemetry::Config {
        capture_events: true,
        event_filter: Some("EForEach".into()),
        sink: None,
    });
    let c = Compiler::new();
    c.add_source("Ext.maya", TWO_MAYAN_EXT).unwrap();
    c.add_source("Main.maya", APP).unwrap();
    c.compile().unwrap();
    let r = s.finish();
    let dispatch = r
        .events
        .iter()
        .find(|e| e.kind == telemetry::TraceKind::Dispatch)
        .expect("a dispatch event naming EForEach");
    assert!(dispatch.detail.contains("reduced by Mayan `EForEach`"), "{}", dispatch.detail);
    assert!(dispatch.detail.contains("applicability test"), "{}", dispatch.detail);
}
