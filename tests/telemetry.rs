//! End-to-end telemetry: the counters must make the paper's cost model
//! observable through the public pipeline.

use maya::telemetry::{self, Counter, Phase};
use maya::Compiler;

/// An extension library with two source Mayans sharing one production.
const TWO_MAYAN_EXT: &str = r#"
    abstract Statement syntax(MethodName(Formal) lazy(BraceTree, BlockStmts));

    Statement syntax
    EForEach(Expression:java.util.Enumeration enumExp
             \. foreach(Formal var)
             lazy(BraceTree, BlockStmts) body)
    {
        StrictTypeName castType = StrictTypeName.make(var.getType());

        return new Statement {
            for (java.util.Enumeration enumVar = $enumExp;
                 enumVar.hasMoreElements(); ) {
                $(DeclStmt.make(var))
                $(Reference.makeExpr(var.getLocation()))
                    = ($castType) enumVar.nextElement();
                $body
            }
        };
    }

    Statement syntax
    UnusedLog(Expression:java.lang.String msg
              \. log(Formal var)
              lazy(BraceTree, BlockStmts) body)
    {
        return new Statement {
            { System.out.println($msg); $body }
        };
    }
"#;

const APP: &str = r#"
    import java.util.*;
    class Main {
        static void main() {
            Hashtable h = new Hashtable();
            h.put("k", "v");
            use EForEach;
            h.keys().foreach(String st) {
                System.out.println(st);
            }
        }
    }
"#;

/// The paper's laziness claim (§4), measured: the `UnusedLog` Mayan is
/// compiled into a lazy `expand` method body that is registered but never
/// fired, so compiling eagerly would parse strictly more nodes than the
/// lazy pipeline actually forces.
#[test]
fn unused_mayan_body_is_never_forced() {
    let s = telemetry::Session::start(telemetry::Config::default());
    let c = Compiler::new();
    c.add_source("Ext.maya", TWO_MAYAN_EXT).unwrap();
    c.add_source("Main.maya", APP).unwrap();
    c.compile().unwrap();
    let out = c.run_main("Main").unwrap();
    let r = s.finish();
    assert_eq!(out, "k\n");
    let created = r.counter(Counter::LazyNodesCreated);
    let forced = r.counter(Counter::LazyNodesForced);
    assert!(
        forced < created,
        "an unused Mayan body must stay unforced: forced={forced} created={created}"
    );
    // And never more forced than created, by construction.
    assert!(forced <= created);
}

/// The counters cover the whole pipeline on an ordinary compile.
#[test]
fn full_pipeline_counters_are_populated() {
    let s = telemetry::Session::start(telemetry::Config::default());
    let c = maya::macrolib::compiler_with_macros();
    let out = c
        .compile_and_run(
            "Main.maya",
            r#"
            import java.util.*;
            class Main {
                static void main() {
                    Vector v = new Vector();
                    v.addElement("x");
                    use Foreach;
                    v.elements().foreach(String st) { System.out.println(st); }
                }
            }
            "#,
            "Main",
        )
        .unwrap();
    let r = s.finish();
    assert_eq!(out, "x\n");
    for c in [
        Counter::TokensLexed,
        Counter::TokenTreesBuilt,
        Counter::FilesLexed,
        Counter::TablesBuilt,
        Counter::GrammarExtensions,
        Counter::ParserShifts,
        Counter::ParserReductions,
        Counter::LazyNodesCreated,
        Counter::LazyNodesForced,
        Counter::DispatchReductions,
        Counter::DispatchCandidates,
        Counter::DispatchTests,
        Counter::MayansFired,
        Counter::TemplatesCompiled,
        Counter::TemplatesInstantiated,
        Counter::HygieneRenames,
        Counter::InterpCalls,
    ] {
        assert!(r.counter(c) > 0, "counter {} must be non-zero", c.name());
    }
    // The type-narrowed foreach dispatch runs static-type tests.
    assert!(r.counter(Counter::DispatchTypeTests) > 0);
    for p in [Phase::Lex, Phase::Parse, Phase::Dispatch, Phase::Force, Phase::Interp] {
        assert!(r.phase_calls(p) > 0, "phase {} must be entered", p.name());
    }
}

/// With `capture_spans` on, the pipeline produces a well-formed span
/// forest: parents always open before their children (backward indices),
/// children lie inside their parent's interval, and every phase that ran
/// has a span.
#[test]
fn spans_nest_and_cover_phases() {
    let s = telemetry::Session::start(telemetry::Config {
        capture_spans: true,
        ..telemetry::Config::default()
    });
    let c = Compiler::new();
    c.add_source("Ext.maya", TWO_MAYAN_EXT).unwrap();
    c.add_source("Main.maya", APP).unwrap();
    c.compile().unwrap();
    let out = c.run_main("Main").unwrap();
    let r = s.finish();
    assert_eq!(out, "k\n");
    assert!(!r.spans.is_empty(), "span capture must record spans");

    let names: Vec<&str> = r.spans.iter().map(|sp| sp.name.as_ref()).collect();
    for want in ["lex", "parse", "dispatch", "interp", "lex_file"] {
        assert!(names.contains(&want), "missing span {want:?} in {names:?}");
    }
    // lex_file spans carry the source file name as an argument.
    let lex_file = r
        .spans
        .iter()
        .find(|sp| sp.name == "lex_file")
        .expect("lex_file span");
    assert!(
        lex_file.args.iter().any(|(k, v)| *k == "file" && v.contains(".maya")),
        "lex_file args: {:?}",
        lex_file.args
    );

    let mut saw_nested = false;
    for (i, sp) in r.spans.iter().enumerate() {
        if sp.parent == telemetry::NO_PARENT {
            continue;
        }
        saw_nested = true;
        let p = sp.parent as usize;
        assert!(p < i, "parent {p} of span {i} must open earlier");
        let parent = &r.spans[p];
        assert!(sp.start_ns >= parent.start_ns, "child starts inside parent");
        assert!(
            sp.start_ns + sp.dur_ns <= parent.start_ns + parent.dur_ns,
            "child {:?} ends inside parent {:?}",
            sp.name,
            parent.name
        );
    }
    assert!(saw_nested, "at least one span must nest");

    // Per-file lexing also lands in the lex_file_ns histogram.
    let h = r.hist("lex_file_ns").expect("lex_file_ns histogram");
    assert!(h.count() >= 2, "two files lexed, got {}", h.count());
}

/// The Chrome trace export is valid JSON with one complete ("X") event per
/// span, parseable by the repo's own JSON parser.
#[test]
fn chrome_trace_json_round_trips() {
    use maya::core::json::{parse_json, Json};

    let s = telemetry::Session::start(telemetry::Config {
        capture_spans: true,
        ..telemetry::Config::default()
    });
    let c = Compiler::new();
    c.add_source("Ext.maya", TWO_MAYAN_EXT).unwrap();
    c.add_source("Main.maya", APP).unwrap();
    c.compile().unwrap();
    let r = s.finish();

    let doc = parse_json(&r.chrome_trace_json()).expect("trace must parse");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), r.spans.len());
    for e in events {
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ts").is_some() && e.get("dur").is_some());
        assert!(e.get("pid").and_then(Json::as_u64).is_some());
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
    }
}

/// Dispatch traces identify the winning Mayan and the work done to pick it.
#[test]
fn dispatch_trace_names_the_winner() {
    let s = telemetry::Session::start(telemetry::Config {
        capture_events: true,
        event_filter: Some("EForEach".into()),
        ..telemetry::Config::default()
    });
    let c = Compiler::new();
    c.add_source("Ext.maya", TWO_MAYAN_EXT).unwrap();
    c.add_source("Main.maya", APP).unwrap();
    c.compile().unwrap();
    let r = s.finish();
    let dispatch = r
        .events
        .iter()
        .find(|e| e.kind == telemetry::TraceKind::Dispatch)
        .expect("a dispatch event naming EForEach");
    assert!(dispatch.detail.contains("reduced by Mayan `EForEach`"), "{}", dispatch.detail);
    assert!(dispatch.detail.contains("applicability test"), "{}", dispatch.detail);
}
