//! Fault injection and sandboxing: every induced failure — a panicking
//! Mayan, a runaway expansion, an import cycle, or a `MAYA_FAULTS`
//! injection in any phase — must become a located diagnostic and a clean
//! nonzero exit, never a process abort or a hang.

use maya::core::{Compiler, Diagnostics};
use maya::dispatch::{Bindings, DispatchError, ExpandCtx, ImportEnv, Mayan, MetaProgram, Param};
use maya::grammar::RhsItem;
use maya_ast::{Node, NodeKind};
use maya_lexer::TokenKind;
use std::cell::RefCell;
use std::process::Command;
use std::rc::Rc;

fn mayac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mayac"))
}

fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mayac-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, text).unwrap();
    p
}

/// Exercises every phase: lexing, parsing, dispatch (Foreach fires),
/// template instantiation, type checking, and the interpreter.
const FOREACH: &str = r#"
import java.util.*;
class Main {
    static void main() {
        Vector v = new Vector();
        v.addElement("x");
        use Foreach;
        v.elements().foreach(String s) { System.out.println(s); }
    }
}
"#;

// ---- MAYA_FAULTS: one induced fault per phase --------------------------------

#[test]
fn injected_panics_become_ice_diagnostics_in_every_phase() {
    let f = write_temp("faults.maya", FOREACH);
    for site in ["lex", "parse", "dispatch", "template", "type_check", "interp"] {
        let out = mayac()
            .env("MAYA_FAULTS", format!("{site}:panic"))
            .arg(&f)
            .output()
            .unwrap();
        // Exit code 1 — a diagnostic, not a signal/abort.
        assert_eq!(out.status.code(), Some(1), "site {site}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("internal compiler error"),
            "site {site}:\n{stderr}"
        );
        assert!(
            stderr.contains("this is a compiler bug, please report it"),
            "site {site}:\n{stderr}"
        );
        assert!(
            stderr.contains(&format!("injected fault at {site}")),
            "site {site}:\n{stderr}"
        );
    }
}

#[test]
fn injected_error_action_is_also_promoted_to_ice() {
    let f = write_temp("faulterr.maya", FOREACH);
    let out = mayac()
        .env("MAYA_FAULTS", "lex:error")
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("internal compiler error"), "{stderr}");
    assert!(stderr.contains("injected fault at lex"), "{stderr}");
}

#[test]
fn dispatch_loop_fault_trips_the_fuel_guard() {
    let f = write_temp("fuel.maya", FOREACH);
    let out = mayac()
        .env("MAYA_FAULTS", "dispatch:loop")
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("expansion fuel exhausted"), "{stderr}");
}

#[test]
fn unset_faults_leave_the_compiler_untouched() {
    let f = write_temp("nofault.maya", FOREACH);
    let out = mayac().arg(&f).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "x\n");
}

// ---- runaway self-expansion ---------------------------------------------------

#[test]
fn infinitely_self_expanding_mayan_is_a_located_diagnostic() {
    let ext = write_temp(
        "runaway_ext.maya",
        r#"
abstract Statement syntax(MethodName(Formal) lazy(BraceTree, BlockStmts));

Statement syntax
Runaway(Expression:java.lang.Object e
        \. runaway(Formal var)
        lazy(BraceTree, BlockStmts) body)
{
    return new Statement {
        $e.runaway(String z) { $body }
    };
}
"#,
    );
    let app = write_temp(
        "runaway_app.maya",
        r#"
class Main {
    static void main() {
        Object o = new Object();
        use Runaway;
        o.runaway(String s) { System.out.println(s); }
    }
}
"#,
    );
    let out = mayac().arg(&ext).arg(&app).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // A resource guard cuts the recursion and the diagnostic names the
    // Mayan and points at the expansion site.
    assert!(
        stderr.contains("error in expansion of Mayan Runaway"),
        "{stderr}"
    );
    assert!(stderr.contains("runaway_app.maya:"), "{stderr}");
}

// ---- panicking native Mayan ---------------------------------------------------

/// `boom;` — a statement Mayan whose expansion body panics.
struct PanickingMayan;

impl MetaProgram for PanickingMayan {
    fn run(&self, env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let prod = env.add_production(
            NodeKind::Statement,
            &[RhsItem::word("boom"), RhsItem::tok(TokenKind::Semi)],
        )?;
        let body = move |_b: &Bindings, _cx: &mut dyn ExpandCtx| -> Result<Node, DispatchError> {
            panic!("extension bug in Boom")
        };
        env.import_mayan(Mayan::new(
            "Boom",
            prod,
            vec![
                Param::plain(NodeKind::TokenNode),
                Param::plain(NodeKind::TokenNode),
            ],
            Rc::new(body),
        ));
        Ok(())
    }
}

#[test]
fn panicking_mayan_becomes_a_located_ice_diagnostic() {
    let c = Compiler::new();
    c.register_metaprogram("Boom", Rc::new(PanickingMayan));
    let diags = Diagnostics::new();
    assert!(c.add_source_diags(
        "Main.maya",
        "class Main { static void main() { use Boom; boom; } }",
        &diags,
    ));
    c.compile_diags(&diags);
    assert!(diags.should_fail());
    let ds = diags.diagnostics();
    let ice = ds
        .iter()
        .find(|d| d.ice)
        .unwrap_or_else(|| panic!("no ICE diagnostic in {ds:?}"));
    assert!(ice.message.contains("Mayan Boom panicked"), "{}", ice.message);
    assert!(ice.message.contains("extension bug in Boom"), "{}", ice.message);
    assert!(!ice.span.is_dummy(), "panic diagnostic must carry the site");
}

// ---- import cycles ------------------------------------------------------------

/// A metaprogram that re-imports itself through the compiler.
struct Cyclic {
    holder: Rc<RefCell<Option<Compiler>>>,
}

impl MetaProgram for Cyclic {
    fn run(&self, _env: &mut dyn ImportEnv) -> Result<(), DispatchError> {
        let guard = self.holder.borrow();
        let c = guard.as_ref().expect("compiler registered before use");
        c.use_globally("Cycle")
            .map(|_| ())
            .map_err(|e| DispatchError::new(e.message, e.span))
    }
}

#[test]
fn import_cycle_is_detected_and_reported() {
    let holder: Rc<RefCell<Option<Compiler>>> = Rc::new(RefCell::new(None));
    let c = Compiler::new();
    c.register_metaprogram(
        "Cycle",
        Rc::new(Cyclic {
            holder: holder.clone(),
        }),
    );
    let diags = Diagnostics::new();
    c.add_source_diags(
        "Main.maya",
        "class Main { static void main() { use Cycle; } }",
        &diags,
    );
    *holder.borrow_mut() = Some(c.clone());
    let c = holder.borrow().as_ref().unwrap().clone();
    c.compile_diags(&diags);
    assert!(diags.should_fail());
    let ds = diags.diagnostics();
    assert!(
        ds.iter().any(|d| d.message.contains("import cycle detected")),
        "{ds:?}"
    );
}

// ---- engine agreement under injected faults ----------------------------------

/// The conformance corpus through the walker-vs-lowered differential
/// oracle with a fault armed identically on both sides. The injected
/// failure changes the outcome — that is the point — but it must change
/// it *the same way* in both engines: identical success flag, stdout,
/// and stderr, or it is a silent engine divergence hiding behind the
/// fault. Programmatic arming (`faults::arm`) is thread-local and
/// `jobs=1` compiles run on the arming thread, so concurrent tests
/// cannot see each other's faults.
#[test]
fn corpus_engines_agree_under_injected_faults() {
    use maya::{CompileOptions, RequestOpts, Session};

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.ends_with(".maya").then_some(name)
        })
        .collect();
    names.sort();
    assert!(names.len() >= 25, "corpus shrank ({} programs)", names.len());

    let installer = |lowered: bool| -> Rc<dyn Fn(&Compiler)> {
        Rc::new(move |c: &Compiler| {
            maya::macrolib::install(c);
            maya::multijava::install(c);
            if !lowered {
                c.interp().set_lowering(false);
            }
        })
    };
    let opts = CompileOptions { echo_output: false, jobs: 1, ..Default::default() };
    let req = RequestOpts::default();

    let sites = ["lex", "parse", "dispatch", "template", "type_check", "interp"];
    for (i, name) in names.iter().enumerate() {
        // The interpreter-bound stress programs take seconds per run;
        // the faulted pass does not need them.
        if name.starts_with("interp_hot") {
            continue;
        }
        let src = std::fs::read_to_string(dir.join(name)).unwrap();
        let sources = vec![(name.clone(), src)];
        let spec = format!("{}:{}", sites[i % sites.len()], if i % 2 == 0 { "panic" } else { "error" });

        maya::core::faults::arm(&spec);
        let mut lowered = Session::new(opts.clone(), Some(installer(true)));
        let a = lowered.compile_sources(&sources, &req);

        maya::core::faults::arm(&spec);
        let mut legacy = Session::new(opts.clone(), Some(installer(false)));
        let b = legacy.compile_sources(&sources, &req);
        maya::core::faults::disarm();

        assert_eq!(
            (a.success, &a.stdout, &a.stderr),
            (b.success, &b.stdout, &b.stderr),
            "{name}: engines diverged under injected fault {spec}"
        );
    }
}
